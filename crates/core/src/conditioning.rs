//! The conditioning block (§3.3.2, Algorithm 1): decomposes on one
//! categorical variable, runs one child block per value as a multi-armed
//! bandit with round-robin warm-up and rising-bandit interval elimination.
//!
//! Granularity note: the paper's Algorithm 1 plays every arm `L` times per
//! `do_next!`. To keep the Volcano contract — one `do_next` ≈ one pipeline
//! evaluation — the warm-up and round-robin schedule here is *unrolled*:
//! each `do_next` plays exactly one arm, and elimination runs after every
//! completed round once each active arm has had `L` plays. The sequence of
//! arm plays and eliminations is identical to Algorithm 1's.

use crate::block::{Assignment, BestSolution, BuildingBlock, LossInterval};
use crate::eu::{eu_interval, eui};
use crate::evaluator::Evaluator;
use crate::spaces::SpaceDef;
use crate::Result;
use volcanoml_obs::{span, EventFields, Tracer};

/// One arm of the bandit.
struct Arm {
    /// Value of the conditioned variable this arm pins.
    value: usize,
    /// Child block solving the conditioned subspace.
    block: Box<dyn BuildingBlock>,
    /// Eliminated arms are never played again.
    active: bool,
    plays: usize,
}

/// Conditioning block: one child per value of a categorical variable.
pub struct ConditioningBlock {
    label: String,
    /// The conditioned variable's name (e.g. `algorithm`).
    var: String,
    arms: Vec<Arm>,
    /// Warm-up plays per arm before elimination starts (paper's `L`).
    pub warmup_plays: usize,
    /// When false, arms are never eliminated (plain round-robin MAB — the
    /// ablation baseline measured by the blocks-ablation bench).
    pub elimination_enabled: bool,
    /// Look-ahead horizon for EU intervals (paper's `K`).
    pub eu_horizon: usize,
    cursor: usize,
    evaluations: usize,
}

impl ConditioningBlock {
    /// Creates a conditioning block from `(value, child)` pairs.
    pub fn new(
        label: impl Into<String>,
        var: impl Into<String>,
        children: Vec<(usize, Box<dyn BuildingBlock>)>,
    ) -> ConditioningBlock {
        ConditioningBlock {
            label: label.into(),
            var: var.into(),
            arms: children
                .into_iter()
                .map(|(value, block)| Arm {
                    value,
                    block,
                    active: true,
                    plays: 0,
                })
                .collect(),
            // The paper sets L = 5 under second-scale budgets of hundreds
            // to thousands of evaluations; our scaled-down experiments run
            // ~30-100 evaluations, so the default warm-up is 3 plays per
            // arm. The field is public for paper-exact runs.
            warmup_plays: 3,
            elimination_enabled: true,
            eu_horizon: 20,
            cursor: 0,
            evaluations: 0,
        }
    }

    /// Number of arms still active.
    pub fn active_arms(&self) -> usize {
        self.arms.iter().filter(|a| a.active).count()
    }

    /// Values that have been eliminated so far.
    pub fn eliminated_values(&self) -> Vec<usize> {
        self.arms
            .iter()
            .filter(|a| !a.active)
            .map(|a| a.value)
            .collect()
    }

    /// Applies the elimination rule over all active arms, emitting one
    /// `eliminate` trace event (with the EU interval that lost) per
    /// eliminated arm.
    fn eliminate_dominated(&mut self, tracer: &Tracer) {
        let intervals: Vec<Option<LossInterval>> = self
            .arms
            .iter()
            .map(|a| {
                if a.active {
                    Some(a.block.expected_utility(self.eu_horizon))
                } else {
                    None
                }
            })
            .collect();
        // Never eliminate the last arm.
        for i in 0..self.arms.len() {
            if self.active_arms() <= 1 {
                break;
            }
            let Some(iv_i) = intervals[i] else { continue };
            let dominating = intervals
                .iter()
                .enumerate()
                .find(|(j, iv_j)| *j != i && iv_j.is_some_and(|iv_j| iv_i.dominated_by(&iv_j)));
            if let Some((j, _)) = dominating {
                self.arms[i].active = false;
                tracer.event(
                    "eliminate",
                    EventFields {
                        path: self.label.clone(),
                        arm: format!("{}={}", self.var, self.arms[i].value),
                        eu: Some((iv_i.optimistic, iv_i.pessimistic)),
                        detail: format!(
                            "dominated by {}={} after {} plays",
                            self.var, self.arms[j].value, self.arms[i].plays
                        ),
                        ..EventFields::default()
                    },
                );
            }
        }
    }

    /// Elimination after every completed round past warm-up.
    fn maybe_eliminate(&mut self, tracer: &Tracer) {
        let min_plays = self
            .arms
            .iter()
            .filter(|a| a.active)
            .map(|a| a.plays)
            .min()
            .unwrap_or(0);
        if self.elimination_enabled && min_plays >= self.warmup_plays {
            let round_complete = self.cursor.is_multiple_of(self.arms.len());
            if round_complete {
                self.eliminate_dominated(tracer);
            }
        }
    }

    /// Index of the next active arm in round-robin order.
    fn next_arm(&mut self) -> Option<usize> {
        let n = self.arms.len();
        for _ in 0..n {
            let i = self.cursor % n;
            self.cursor += 1;
            if self.arms[i].active {
                return Some(i);
            }
        }
        None
    }
}

impl BuildingBlock for ConditioningBlock {
    fn do_next(&mut self, evaluator: &Evaluator) -> Result<()> {
        let Some(i) = self.next_arm() else {
            return Ok(());
        };
        let tracer = evaluator.tracer();
        let arm_label = format!("{}={}", self.var, self.arms[i].value);
        let mut pull = span(&tracer, "pull", &self.label, &arm_label);
        pull.set_detail(format!("play {}", self.arms[i].plays + 1));
        self.arms[i].block.do_next(evaluator)?;
        self.arms[i].plays += 1;
        self.evaluations += 1;
        // Keep the pull span open: elimination decisions triggered by this
        // play are its children in the trace.
        self.maybe_eliminate(&tracer);
        Ok(())
    }

    /// Batch path: `k` plays are dealt to arms by the same round-robin
    /// schedule as `do_next`, then each arm receives its share as one child
    /// batch. Elimination runs once, after the whole batch, so a batch
    /// behaves like `k` serial plays followed by one elimination check.
    fn do_next_batch(
        &mut self,
        evaluator: &Evaluator,
        pool: &volcanoml_exec::ExecPool,
        k: usize,
    ) -> Result<()> {
        let tracer = evaluator.tracer();
        let mut shares: Vec<usize> = vec![0; self.arms.len()];
        for _ in 0..k {
            let Some(i) = self.next_arm() else { break };
            shares[i] += 1;
        }
        for (i, share) in shares.iter().enumerate() {
            if *share == 0 {
                continue;
            }
            let arm_label = format!("{}={}", self.var, self.arms[i].value);
            let mut pull = span(&tracer, "pull", &self.label, &arm_label);
            pull.set_detail(format!("batch share={share}"));
            self.arms[i].block.do_next_batch(evaluator, pool, *share)?;
            self.arms[i].plays += share;
            self.evaluations += share;
        }
        self.maybe_eliminate(&tracer);
        Ok(())
    }

    fn current_best(&self) -> Option<BestSolution> {
        self.arms
            .iter()
            .filter_map(|a| {
                a.block.current_best().map(|mut b| {
                    b.assignment
                        .entry(self.var.clone())
                        .or_insert(a.value as f64);
                    b
                })
            })
            .min_by(|a, b| a.loss.partial_cmp(&b.loss).unwrap_or(std::cmp::Ordering::Equal))
    }

    fn own_best(&self) -> Option<Assignment> {
        // Best arm's own variables plus the conditioned variable itself.
        let (arm, best) = self
            .arms
            .iter()
            .filter_map(|a| a.block.current_best().map(|b| (a, b)))
            .min_by(|x, y| {
                x.1.loss
                    .partial_cmp(&y.1.loss)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })?;
        let mut own = arm.block.own_best().unwrap_or_default();
        own.insert(self.var.clone(), arm.value as f64);
        let _ = best;
        Some(own)
    }

    fn expected_utility(&self, k: usize) -> LossInterval {
        // The block's potential is its best arm's potential.
        let mut best = LossInterval::unknown();
        let mut any = false;
        for a in self.arms.iter().filter(|a| a.active) {
            let iv = a.block.expected_utility(k);
            if !any || iv.optimistic < best.optimistic {
                best = LossInterval {
                    optimistic: iv.optimistic,
                    pessimistic: best.pessimistic.min(iv.pessimistic),
                };
                any = true;
            } else {
                best.pessimistic = best.pessimistic.min(iv.pessimistic);
            }
        }
        if any {
            best
        } else {
            eu_interval(&self.trajectory(), k, 0.0)
        }
    }

    fn expected_utility_improvement(&self) -> f64 {
        eui(&self.trajectory(), 4)
    }

    fn set_fixed(&mut self, fixed: &Assignment) {
        for arm in &mut self.arms {
            arm.block.set_fixed(fixed);
        }
    }

    fn set_cost_aware(&mut self, enabled: bool) {
        for arm in &mut self.arms {
            arm.block.set_cost_aware(enabled);
        }
    }

    /// Every arm's subtree grows — including eliminated arms, so that their
    /// captured state stays consistent with the live space.
    fn grow(&mut self, space: &SpaceDef, new_vars: &[String]) -> Result<()> {
        for arm in &mut self.arms {
            arm.block.grow(space, new_vars)?;
        }
        Ok(())
    }

    /// Space growth must wait for *every* surviving arm to plateau: a single
    /// still-improving (or not-yet-warmed-up, EUI = ∞) arm keeps the space
    /// fixed, so the maximum over active arms is the plateau signal.
    fn plateau_eui(&self) -> f64 {
        self.arms
            .iter()
            .filter(|a| a.active)
            .map(|a| a.block.plateau_eui())
            .fold(f64::NEG_INFINITY, f64::max)
    }

    fn trajectory(&self) -> Vec<f64> {
        // Interleave child trajectories in global evaluation order is not
        // recoverable; use the merged best-so-far over per-arm trajectories
        // (monotone, one entry per full-fidelity evaluation overall).
        let mut merged: Vec<f64> = Vec::new();
        let mut cursors: Vec<(usize, Vec<f64>)> = self
            .arms
            .iter()
            .map(|a| (0usize, a.block.trajectory()))
            .collect();
        let total: usize = cursors.iter().map(|(_, t)| t.len()).sum();
        let mut best = f64::INFINITY;
        // Round-robin merge approximates chronological order.
        let mut progressed = true;
        while merged.len() < total && progressed {
            progressed = false;
            for (cursor, traj) in &mut cursors {
                if *cursor < traj.len() {
                    best = best.min(traj[*cursor]);
                    *cursor += 1;
                    merged.push(best);
                    progressed = true;
                }
            }
        }
        merged
    }

    fn evaluations(&self) -> usize {
        self.evaluations
    }

    fn describe(&self, indent: usize, out: &mut String) {
        out.push_str(&" ".repeat(indent));
        out.push_str(&format!(
            "Conditioning[{}] on={} arms={} active={}\n",
            self.label,
            self.var,
            self.arms.len(),
            self.active_arms()
        ));
        for a in &self.arms {
            out.push_str(&" ".repeat(indent + 2));
            out.push_str(&format!(
                "value={} active={} plays={}\n",
                a.value, a.active, a.plays
            ));
            a.block.describe(indent + 4, out);
        }
    }

    fn capture_state(&self, path: &str, out: &mut Vec<String>) {
        out.push(format!(
            "{path} conditioning var={} cursor={} evaluations={}",
            self.var, self.cursor, self.evaluations
        ));
        for a in &self.arms {
            let child = format!("{path}/{}={}", self.var, a.value);
            let iv = a.block.expected_utility(self.eu_horizon);
            out.push(format!(
                "{child} arm active={} plays={} eu=[{:016x},{:016x}]",
                a.active,
                a.plays,
                iv.optimistic.to_bits(),
                iv.pessimistic.to_bits()
            ));
            a.block.capture_state(&child, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::joint::{JointBlock, JointEngine};
    use crate::spaces::{SpaceDef, SpaceTier};
    use volcanoml_data::synthetic::{make_classification, ClassificationSpec};
    use volcanoml_data::{Metric, Task};

    fn setup() -> (Evaluator, SpaceDef) {
        let space = SpaceDef::tiered(Task::Classification, SpaceTier::Small);
        let d = make_classification(
            &ClassificationSpec {
                n_samples: 260,
                n_features: 8,
                n_informative: 5,
                n_redundant: 0,
                n_classes: 2,
                class_sep: 1.2,
                flip_y: 0.03,
                weights: Vec::new(),
            },
            7,
        );
        let ev = Evaluator::new(space.clone(), &d, Metric::BalancedAccuracy, 0).unwrap();
        (ev, space)
    }

    fn algorithm_conditioning(space: &SpaceDef) -> ConditioningBlock {
        let children: Vec<(usize, Box<dyn BuildingBlock>)> = (0..space.algorithms.len())
            .map(|idx| {
                let mut fixed = Assignment::new();
                fixed.insert("algorithm".to_string(), idx as f64);
                let cs = space.compile_subspace(&space.var_names(), &fixed).unwrap();
                let block: Box<dyn BuildingBlock> = Box::new(JointBlock::new(
                    format!("alg={}", space.algorithms[idx].name()),
                    cs,
                    JointEngine::Bo,
                    fixed,
                    idx as u64,
                ));
                (idx, block)
            })
            .collect();
        ConditioningBlock::new("by-algorithm", "algorithm", children)
    }

    #[test]
    fn warmup_is_round_robin() {
        let (ev, space) = setup();
        let mut block = algorithm_conditioning(&space);
        let n = space.algorithms.len();
        for _ in 0..n * 2 {
            block.do_next(&ev).unwrap();
        }
        // After 2 full rounds every arm has exactly 2 plays.
        for a in &block.arms {
            assert_eq!(a.plays, 2);
        }
    }

    #[test]
    fn best_includes_conditioned_variable() {
        let (ev, space) = setup();
        let mut block = algorithm_conditioning(&space);
        for _ in 0..6 {
            block.do_next(&ev).unwrap();
        }
        let best = block.current_best().unwrap();
        assert!(best.assignment.contains_key("algorithm"));
        assert!(best.loss.is_finite());
    }

    #[test]
    fn last_arm_is_never_eliminated() {
        let (ev, space) = setup();
        let mut block = algorithm_conditioning(&space);
        block.warmup_plays = 1;
        for _ in 0..60 {
            block.do_next(&ev).unwrap();
        }
        assert!(block.active_arms() >= 1);
    }

    #[test]
    fn eliminated_arms_stop_consuming_budget() {
        let (ev, space) = setup();
        let mut block = algorithm_conditioning(&space);
        block.warmup_plays = 2;
        block.eu_horizon = 3;
        for _ in 0..80 {
            block.do_next(&ev).unwrap();
        }
        if block.active_arms() < block.arms.len() {
            // Eliminated arms' play counts must be frozen below the leader's.
            let max_plays = block.arms.iter().map(|a| a.plays).max().unwrap();
            for a in block.arms.iter().filter(|a| !a.active) {
                assert!(a.plays < max_plays);
            }
        }
    }

    #[test]
    fn trajectory_is_monotone_nonincreasing() {
        let (ev, space) = setup();
        let mut block = algorithm_conditioning(&space);
        for _ in 0..20 {
            block.do_next(&ev).unwrap();
        }
        let t = block.trajectory();
        assert!(!t.is_empty());
        assert!(t.windows(2).all(|w| w[1] <= w[0] + 1e-12));
    }

    #[test]
    fn describe_renders_arm_tree() {
        let (_, space) = setup();
        let block = algorithm_conditioning(&space);
        let mut s = String::new();
        block.describe(0, &mut s);
        assert!(s.contains("Conditioning[by-algorithm]"));
        assert!(s.contains("Joint["));
    }
}
