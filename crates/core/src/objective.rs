//! Search objectives: plain loss minimization or a scalarized loss +
//! inference-cost trade-off, plus Pareto-front extraction for reports.
//!
//! The engines (BO, bandits, ASHA brackets) minimize a single scalar; the
//! multi-objective mode keeps that invariant by scalarizing `(loss,
//! inference_cost)` into one number *before* it reaches the optimizer or
//! the journal — so resume replay stays bitwise — while the per-trial
//! inference cost is also recorded separately so [`pareto_front`] can
//! recover the non-dominated trade-off set for the report.

/// What the search minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Objective {
    /// Validation loss only (the default).
    #[default]
    Loss,
    /// Validation loss plus `latency_weight` × per-row inference seconds.
    /// The weight converts seconds into loss units: a weight of 100 means
    /// 10 ms of per-row latency is worth one point of loss (0.01).
    LossAndCost {
        /// Loss-units-per-second-of-inference conversion factor.
        latency_weight: f64,
    },
}

impl Objective {
    /// Scalarizes a trial's `(validation loss, inference seconds)` into the
    /// single number the engines minimize. Non-finite losses pass through
    /// unchanged (a crashed trial stays crashed no matter how fast it
    /// predicts).
    pub fn scalarize(&self, loss: f64, inference_cost: f64) -> f64 {
        match self {
            Objective::Loss => loss,
            Objective::LossAndCost { latency_weight } => {
                if loss.is_finite() {
                    loss + latency_weight * inference_cost.max(0.0)
                } else {
                    loss
                }
            }
        }
    }

    /// Whether this objective folds inference cost into the scalar.
    pub fn is_cost_sensitive(&self) -> bool {
        matches!(self, Objective::LossAndCost { .. })
    }

    /// Short name for reports and option surfaces.
    pub fn name(&self) -> &'static str {
        match self {
            Objective::Loss => "loss",
            Objective::LossAndCost { .. } => "loss_and_cost",
        }
    }
}

/// Indices of the Pareto-optimal points of `points = (loss,
/// inference_cost)` under minimization of both coordinates, in input order.
///
/// A point is dominated when another point is no worse in both coordinates
/// and strictly better in at least one. Non-finite points never enter the
/// front. Duplicate points all survive (none strictly improves on the
/// other), matching the report's need to list every equivalent pipeline.
pub fn pareto_front(points: &[(f64, f64)]) -> Vec<usize> {
    let dominates = |a: (f64, f64), b: (f64, f64)| {
        a.0 <= b.0 && a.1 <= b.1 && (a.0 < b.0 || a.1 < b.1)
    };
    (0..points.len())
        .filter(|&i| {
            let p = points[i];
            p.0.is_finite()
                && p.1.is_finite()
                && !points
                    .iter()
                    .enumerate()
                    .any(|(j, &q)| j != i && dominates(q, p))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalarize_loss_only_is_identity() {
        let o = Objective::Loss;
        assert_eq!(o.scalarize(0.3, 5.0), 0.3);
        assert!(!o.is_cost_sensitive());
    }

    #[test]
    fn scalarize_adds_weighted_latency() {
        let o = Objective::LossAndCost { latency_weight: 100.0 };
        assert!((o.scalarize(0.3, 0.001) - 0.4).abs() < 1e-12);
        assert!(o.is_cost_sensitive());
        // Negative timing glitches clamp to zero rather than rewarding.
        assert_eq!(o.scalarize(0.3, -1.0), 0.3);
    }

    #[test]
    fn scalarize_passes_non_finite_losses_through() {
        let o = Objective::LossAndCost { latency_weight: 10.0 };
        assert!(o.scalarize(f64::INFINITY, 0.5).is_infinite());
        assert!(o.scalarize(f64::NAN, 0.5).is_nan());
    }

    #[test]
    fn pareto_dominance_basic() {
        // (0.1, 5.0) and (0.3, 1.0) trade off; (0.4, 6.0) is dominated by
        // both; (0.2, 2.0) trades off against the ends.
        let pts = vec![(0.1, 5.0), (0.3, 1.0), (0.4, 6.0), (0.2, 2.0)];
        assert_eq!(pareto_front(&pts), vec![0, 1, 3]);
    }

    #[test]
    fn pareto_single_point() {
        assert_eq!(pareto_front(&[(0.5, 1.0)]), vec![0]);
        assert_eq!(pareto_front(&[]), Vec::<usize>::new());
    }

    #[test]
    fn pareto_all_dominated_by_one() {
        // One point dominates everything: front is exactly that point.
        let pts = vec![(0.5, 5.0), (0.1, 0.1), (0.2, 3.0), (0.1, 0.2)];
        assert_eq!(pareto_front(&pts), vec![1]);
    }

    #[test]
    fn pareto_duplicates_all_survive() {
        let pts = vec![(0.2, 1.0), (0.2, 1.0), (0.5, 2.0)];
        assert_eq!(pareto_front(&pts), vec![0, 1]);
    }

    #[test]
    fn pareto_ignores_non_finite_points() {
        let pts = vec![(f64::INFINITY, 0.1), (0.2, f64::NAN), (0.3, 1.0)];
        assert_eq!(pareto_front(&pts), vec![2]);
    }

    #[test]
    fn pareto_chain_keeps_only_extremes_of_monotone_tradeoff() {
        // Strictly monotone trade-off curve: every point survives.
        let pts: Vec<(f64, f64)> = (0..5)
            .map(|i| (0.1 + 0.1 * i as f64, 5.0 - i as f64))
            .collect();
        assert_eq!(pareto_front(&pts), vec![0, 1, 2, 3, 4]);
    }
}
