//! The coarse-grained plan catalogue (§4 "Alternative Execution Plans" and
//! the appendix plan-enumeration study): five ways to decompose the same
//! AutoML space, plus a brute-force "automatic plan generation" helper that
//! picks the empirically best plan over a set of benchmark datasets.

use crate::plan::{EngineKind, PlanSpec, VarFilter};

/// P1 — a single joint block over the whole space (what auto-sklearn does).
pub fn p1_joint(engine: EngineKind) -> PlanSpec {
    PlanSpec::Joint(engine)
}

/// P2 — condition on the algorithm, joint blocks per arm.
pub fn p2_conditioning_joint(engine: EngineKind) -> PlanSpec {
    PlanSpec::Conditioning {
        on: "algorithm".to_string(),
        child: Box::new(PlanSpec::Joint(engine)),
    }
}

/// P3 — the paper's chosen plan (Figure 2): condition on the algorithm, then
/// alternate FE vs HP with joint leaves.
pub fn p3_volcano(engine: EngineKind) -> PlanSpec {
    PlanSpec::volcano_default(engine)
}

/// P4 — alternate FE against (algorithm + HP) explored jointly.
pub fn p4_alternating_joint(engine: EngineKind) -> PlanSpec {
    PlanSpec::Alternating {
        left_filter: VarFilter::Fe,
        left: Box::new(PlanSpec::Joint(engine)),
        right: Box::new(PlanSpec::Joint(engine)),
    }
}

/// P5 — alternate FE against a conditioning block over algorithms.
pub fn p5_alternating_conditioning(engine: EngineKind) -> PlanSpec {
    PlanSpec::Alternating {
        left_filter: VarFilter::Fe,
        left: Box::new(PlanSpec::Joint(engine)),
        right: Box::new(PlanSpec::Conditioning {
            on: "algorithm".to_string(),
            child: Box::new(PlanSpec::Joint(engine)),
        }),
    }
}

/// Builds the Figure 2 tree by hand with ablation knobs exposed: EUI
/// scheduling vs pure round-robin alternation, and arm elimination on/off in
/// the conditioning block. Used by the blocks-ablation bench; with both
/// features on this is behaviorally identical to compiling [`p3_volcano`].
pub fn build_figure2_tree(
    space: &crate::spaces::SpaceDef,
    engine: EngineKind,
    eui_scheduling: bool,
    arm_elimination: bool,
    seed: u64,
) -> crate::Result<Box<dyn crate::block::BuildingBlock>> {
    use crate::alternating::AlternatingBlock;
    use crate::block::{Assignment, BuildingBlock};
    use crate::conditioning::ConditioningBlock;
    use crate::joint::JointBlock;
    use crate::spaces::VarGroup;
    use volcanoml_data::rand_util::derive_seed;

    let fe_vars: Vec<String> = space
        .vars
        .iter()
        .filter(|v| v.group == VarGroup::Fe)
        .map(|v| v.name.clone())
        .collect();
    let mut children: Vec<(usize, Box<dyn BuildingBlock>)> = Vec::new();
    for (idx, alg) in space.algorithms.iter().enumerate() {
        let mut ctx = Assignment::new();
        ctx.insert("algorithm".to_string(), idx as f64);
        let hp_vars: Vec<String> = space
            .vars
            .iter()
            .filter(|v| v.group == VarGroup::Hp(idx))
            .map(|v| v.name.clone())
            .collect();
        let fe_space = space.compile_subspace(&fe_vars, &ctx)?;
        let hp_space = space.compile_subspace(&hp_vars, &ctx)?;
        let left = Box::new(JointBlock::new(
            format!("fe/{}", alg.name()),
            fe_space,
            engine,
            ctx.clone(),
            derive_seed(seed, idx as u64 * 2 + 1),
        ));
        let right = Box::new(JointBlock::new(
            format!("hp/{}", alg.name()),
            hp_space,
            engine,
            ctx.clone(),
            derive_seed(seed, idx as u64 * 2 + 2),
        ));
        let mut alternating = AlternatingBlock::new(
            format!("alt/{}", alg.name()),
            left,
            fe_vars.clone(),
            right,
            hp_vars,
            space.defaults(),
        );
        alternating.round_robin_only = !eui_scheduling;
        children.push((idx, Box::new(alternating)));
    }
    let mut conditioning = ConditioningBlock::new("figure2", "algorithm", children);
    conditioning.elimination_enabled = arm_elimination;
    Ok(Box::new(conditioning))
}

/// All five coarse-grained plans with stable names.
pub fn enumerate_coarse_plans(engine: EngineKind) -> Vec<(&'static str, PlanSpec)> {
    vec![
        ("P1-joint", p1_joint(engine)),
        ("P2-cond+joint", p2_conditioning_joint(engine)),
        ("P3-volcano", p3_volcano(engine)),
        ("P4-alt+joint", p4_alternating_joint(engine)),
        ("P5-alt+cond", p5_alternating_conditioning(engine)),
    ]
}

/// Result of a brute-force automatic plan search.
#[derive(Debug, Clone)]
pub struct PlanSearchResult {
    /// Winning plan name.
    pub best_name: &'static str,
    /// Winning plan.
    pub best_plan: PlanSpec,
    /// `(name, average_rank)` for every candidate, in catalogue order.
    pub ranks: Vec<(&'static str, f64)>,
}

/// Brute-force "automatic plan generation" (§4 discussion): run every
/// coarse-grained plan on the given benchmark datasets with `budget`
/// evaluations each, rank the plans per dataset by best validation loss, and
/// return the plan with the best average rank.
///
/// The paper positions this as the seed of a future plan *optimizer*; here
/// it is the exhaustive baseline (5 plans × |datasets| runs).
pub fn auto_select_plan(
    datasets: &[volcanoml_data::Dataset],
    space_of: impl Fn(&volcanoml_data::Dataset) -> crate::spaces::SpaceDef,
    engine: EngineKind,
    budget: usize,
    seed: u64,
) -> crate::Result<PlanSearchResult> {
    use crate::evaluator::Evaluator;
    if datasets.is_empty() {
        return Err(crate::CoreError::Invalid(
            "plan search needs at least one dataset".into(),
        ));
    }
    let candidates = enumerate_coarse_plans(engine);
    let mut losses: Vec<Vec<f64>> = Vec::with_capacity(datasets.len());
    for (di, dataset) in datasets.iter().enumerate() {
        let metric = volcanoml_data::Metric::default_for(dataset.task);
        let mut per_dataset = Vec::with_capacity(candidates.len());
        for (pi, (_, plan)) in candidates.iter().enumerate() {
            let run_seed = volcanoml_data::rand_util::derive_seed(
                volcanoml_data::rand_util::derive_seed(seed, di as u64),
                pi as u64,
            );
            let space = space_of(dataset);
            let evaluator = Evaluator::new(space.clone(), dataset, metric, run_seed)?;
            let mut root = plan.compile(&space, run_seed)?;
            while evaluator.evaluations() < budget {
                root.do_next(&evaluator)?;
            }
            per_dataset.push(
                root.current_best()
                    .map(|b| b.loss)
                    .unwrap_or(f64::INFINITY),
            );
        }
        losses.push(per_dataset);
    }
    // Average ranks (ties share the mean rank).
    let n = candidates.len();
    let mut sums = vec![0.0; n];
    for per_dataset in &losses {
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&a, &b| {
            per_dataset[a]
                .partial_cmp(&per_dataset[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut i = 0;
        while i < n {
            let mut j = i;
            while j + 1 < n
                && (per_dataset[idx[j + 1]] - per_dataset[idx[i]]).abs() < 1e-12
            {
                j += 1;
            }
            let rank = (i + j) as f64 / 2.0 + 1.0;
            for k in i..=j {
                sums[idx[k]] += rank;
            }
            i = j + 1;
        }
    }
    for s in &mut sums {
        *s /= losses.len() as f64;
    }
    let best = sums
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0);
    Ok(PlanSearchResult {
        best_name: candidates[best].0,
        best_plan: candidates[best].1.clone(),
        ranks: candidates
            .iter()
            .map(|(name, _)| *name)
            .zip(sums.iter().copied())
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spaces::{SpaceDef, SpaceTier};

    #[test]
    fn all_five_plans_compile_on_all_tiers() {
        for tier in [SpaceTier::Small, SpaceTier::Medium, SpaceTier::Large] {
            let space = SpaceDef::tiered(volcanoml_data::Task::Classification, tier);
            for (name, plan) in enumerate_coarse_plans(EngineKind::Bo) {
                plan.compile(&space, 0)
                    .unwrap_or_else(|e| panic!("{name} on {tier:?}: {e}"));
            }
        }
    }

    #[test]
    fn plans_have_distinct_shapes() {
        let renders: Vec<String> = enumerate_coarse_plans(EngineKind::Bo)
            .iter()
            .map(|(_, p)| p.render())
            .collect();
        let unique: std::collections::HashSet<&String> = renders.iter().collect();
        assert_eq!(unique.len(), renders.len());
    }

    #[test]
    fn auto_plan_search_returns_a_catalogued_plan() {
        let d = volcanoml_data::synthetic::make_classification(
            &volcanoml_data::synthetic::ClassificationSpec::default(),
            3,
        );
        let result = auto_select_plan(
            &[d],
            |_| SpaceDef::tiered(volcanoml_data::Task::Classification, SpaceTier::Small),
            EngineKind::Random,
            8,
            0,
        )
        .unwrap();
        assert_eq!(result.ranks.len(), 5);
        assert!(enumerate_coarse_plans(EngineKind::Random)
            .iter()
            .any(|(n, _)| *n == result.best_name));
        // The winner has the minimum average rank.
        let min = result
            .ranks
            .iter()
            .map(|(_, r)| *r)
            .fold(f64::INFINITY, f64::min);
        let winner_rank = result
            .ranks
            .iter()
            .find(|(n, _)| *n == result.best_name)
            .unwrap()
            .1;
        assert_eq!(winner_rank, min);
    }

    #[test]
    fn auto_plan_search_rejects_empty_input() {
        let r = auto_select_plan(
            &[],
            |_| SpaceDef::tiered(volcanoml_data::Task::Classification, SpaceTier::Small),
            EngineKind::Random,
            5,
            0,
        );
        assert!(r.is_err());
    }

    #[test]
    fn p3_is_the_volcano_default() {
        assert_eq!(
            p3_volcano(EngineKind::Bo),
            PlanSpec::volcano_default(EngineKind::Bo)
        );
    }
}
