//! The pipeline evaluator: turns a full variable assignment into a trained
//! FE pipeline + model, returning the validation loss.
//!
//! This is the expensive black-box `f(x; D)` of the paper. The evaluator
//! owns an internal train/validation split of the search data, a result
//! cache keyed on (assignment, fidelity), cost accounting (measured wall
//! time), and the subsampling fidelity axis used by multi-fidelity engines
//! and by blocks that probe on data subsets.

use crate::spaces::SpaceDef;
use crate::{CoreError, Result};
use std::collections::HashMap;
use std::time::Instant;
use volcanoml_data::split::{subsample, KFold, StratifiedKFold};
use volcanoml_data::{train_test_split, Dataset, Metric, Task};
use volcanoml_fe::FePipeline;
use volcanoml_models::{AlgorithmKind, Estimator, Model};

/// How an assignment's quality is measured during search (§5.1 lets users
/// pick validation accuracy or cross-validation accuracy).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValidationStrategy {
    /// Single split: `fraction` of the search data held out for scoring.
    Holdout {
        /// Validation fraction in (0, 1).
        fraction: f64,
    },
    /// k-fold cross-validation (stratified for classification); the loss is
    /// the mean across folds. Roughly `k×` the evaluation cost of holdout.
    CrossValidation {
        /// Number of folds (≥ 2).
        folds: usize,
    },
}

impl Default for ValidationStrategy {
    fn default() -> Self {
        ValidationStrategy::Holdout { fraction: 0.25 }
    }
}

/// One entry of the evaluator's chronological log.
#[derive(Debug, Clone)]
pub struct LogEntry {
    /// The evaluated assignment.
    pub assignment: HashMap<String, f64>,
    /// Fidelity the evaluation ran at.
    pub fidelity: f64,
    /// Observed loss.
    pub loss: f64,
    /// Wall-clock cost in seconds.
    pub cost: f64,
}

/// Result of one pipeline evaluation.
#[derive(Debug, Clone, Copy)]
pub struct EvalOutcome {
    /// Validation loss (lower is better; `INFINITY` on training failure).
    pub loss: f64,
    /// Wall-clock cost in seconds.
    pub cost: f64,
    /// Whether the result came from the cache.
    pub cached: bool,
}

/// The black-box objective for all building blocks.
pub struct Evaluator {
    space: SpaceDef,
    metric: Metric,
    strategy: ValidationStrategy,
    fit_data: Dataset,
    valid_data: Dataset,
    cache: HashMap<(u64, u64), (f64, f64)>,
    seed: u64,
    /// Total number of (non-cached) evaluations performed.
    pub evaluations: usize,
    /// Total wall-clock seconds spent in non-cached evaluations.
    pub total_cost: f64,
    /// Chronological log of evaluations — consumed by the AutoML report,
    /// ensemble selection, and meta-learning.
    pub log: Vec<LogEntry>,
}

/// Stable hash of an assignment (order-insensitive).
fn assignment_key(map: &HashMap<String, f64>) -> u64 {
    let mut entries: Vec<(&String, &f64)> = map.iter().collect();
    entries.sort_by(|a, b| a.0.cmp(b.0));
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for (k, v) in entries {
        for byte in k.as_bytes() {
            h ^= *byte as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^= v.to_bits();
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Trains a pipeline + model from an assignment on a complete dataset —
/// the standalone variant of [`Evaluator::refit`] used by baselines and
/// benches that do not hold an evaluator.
pub fn refit_assignment(
    space: &SpaceDef,
    assignment: &HashMap<String, f64>,
    data: &Dataset,
    seed: u64,
) -> Result<(FePipeline, Model)> {
    let alg_idx = assignment
        .get("algorithm")
        .copied()
        .unwrap_or(0.0)
        .round()
        .max(0.0) as usize;
    let alg = *space
        .algorithms
        .get(alg_idx)
        .ok_or_else(|| CoreError::Invalid(format!("algorithm index {alg_idx} out of range")))?;
    let hp_prefix = format!("alg:{}:", alg.name());
    let mut model_params = HashMap::new();
    let mut fe_params = HashMap::new();
    for (k, v) in assignment {
        if let Some(rest) = k.strip_prefix(&hp_prefix) {
            model_params.insert(rest.to_string(), *v);
        } else if let Some(rest) = k.strip_prefix("fe:") {
            fe_params.insert(rest.to_string(), *v);
        }
    }
    let mut pipeline = FePipeline::from_values(
        space.task,
        &data.feature_types,
        &fe_params,
        &space.fe_options,
        seed,
    )
    .map_err(|e| CoreError::Substrate(e.to_string()))?;
    let (x, y) = pipeline
        .fit_transform_train(&data.x, &data.y)
        .map_err(|e| CoreError::Substrate(e.to_string()))?;
    let mut model = alg.build(&model_params, seed);
    model
        .fit(&x, &y)
        .map_err(|e| CoreError::Substrate(e.to_string()))?;
    Ok((pipeline, model))
}

impl Evaluator {
    /// Creates an evaluator over the search data. An internal 75/25
    /// train/validation split is drawn with `seed`.
    pub fn new(space: SpaceDef, data: &Dataset, metric: Metric, seed: u64) -> Result<Evaluator> {
        Evaluator::with_strategy(space, data, metric, ValidationStrategy::default(), seed)
    }

    /// Creates an evaluator with an explicit validation strategy.
    pub fn with_strategy(
        space: SpaceDef,
        data: &Dataset,
        metric: Metric,
        strategy: ValidationStrategy,
        seed: u64,
    ) -> Result<Evaluator> {
        if !metric.applies_to(space.task) {
            return Err(CoreError::Invalid(format!(
                "metric {} does not apply to {:?}",
                metric.name(),
                space.task
            )));
        }
        if data.task != space.task {
            return Err(CoreError::Invalid(
                "dataset task does not match space task".into(),
            ));
        }
        let (fit_data, valid_data) = match strategy {
            ValidationStrategy::Holdout { fraction } => {
                if !(fraction > 0.0 && fraction < 1.0) {
                    return Err(CoreError::Invalid(format!(
                        "holdout fraction {fraction} must be in (0, 1)"
                    )));
                }
                train_test_split(data, fraction, seed)?
            }
            ValidationStrategy::CrossValidation { folds } => {
                if folds < 2 {
                    return Err(CoreError::Invalid(format!(
                        "cross-validation needs at least 2 folds, got {folds}"
                    )));
                }
                // CV keeps the full data in `fit_data`; the split is drawn
                // per evaluation. `valid_data` is an unused placeholder.
                (data.clone(), data.subset(&[0]))
            }
        };
        Ok(Evaluator {
            space,
            metric,
            strategy,
            fit_data,
            valid_data,
            cache: HashMap::new(),
            seed,
            evaluations: 0,
            total_cost: 0.0,
            log: Vec::new(),
        })
    }

    /// The space definition this evaluator interprets.
    pub fn space(&self) -> &SpaceDef {
        &self.space
    }

    /// The evaluation metric.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Extracts `(algorithm, model-params, fe-params)` from an assignment.
    fn interpret(
        &self,
        assignment: &HashMap<String, f64>,
    ) -> Result<(AlgorithmKind, HashMap<String, f64>, HashMap<String, f64>)> {
        let alg_idx = assignment
            .get("algorithm")
            .copied()
            .unwrap_or(0.0)
            .round()
            .max(0.0) as usize;
        let alg = *self
            .space
            .algorithms
            .get(alg_idx)
            .ok_or_else(|| CoreError::Invalid(format!("algorithm index {alg_idx} out of range")))?;
        let hp_prefix = format!("alg:{}:", alg.name());
        let mut model_params = HashMap::new();
        let mut fe_params = HashMap::new();
        for (k, v) in assignment {
            if let Some(rest) = k.strip_prefix(&hp_prefix) {
                model_params.insert(rest.to_string(), *v);
            } else if let Some(rest) = k.strip_prefix("fe:") {
                fe_params.insert(rest.to_string(), *v);
            }
        }
        Ok((alg, model_params, fe_params))
    }

    /// Evaluates an assignment at the given fidelity (training-set fraction
    /// in `(0, 1]`). Results are cached; failures yield `loss = INFINITY`.
    pub fn evaluate(&mut self, assignment: &HashMap<String, f64>, fidelity: f64) -> EvalOutcome {
        let fidelity = fidelity.clamp(0.01, 1.0);
        let key = (assignment_key(assignment), fidelity.to_bits());
        if let Some(&(loss, cost)) = self.cache.get(&key) {
            return EvalOutcome {
                loss,
                cost,
                cached: true,
            };
        }
        let start = Instant::now();
        let loss = self.evaluate_uncached(assignment, fidelity).unwrap_or(f64::INFINITY);
        let cost = start.elapsed().as_secs_f64();
        self.cache.insert(key, (loss, cost));
        self.evaluations += 1;
        self.total_cost += cost;
        self.log.push(LogEntry {
            assignment: assignment.clone(),
            fidelity,
            loss,
            cost,
        });
        EvalOutcome {
            loss,
            cost,
            cached: false,
        }
    }

    /// Fits one pipeline+model on `(train)` and scores on `valid`.
    fn fit_and_score(
        &self,
        alg: AlgorithmKind,
        model_params: &HashMap<String, f64>,
        fe_params: &HashMap<String, f64>,
        train: &Dataset,
        valid: &Dataset,
    ) -> Result<f64> {
        let mut pipeline = FePipeline::from_values(
            self.space.task,
            &train.feature_types,
            fe_params,
            &self.space.fe_options,
            self.seed,
        )
        .map_err(|e| CoreError::Substrate(e.to_string()))?;
        let (x_train, y_train) = pipeline
            .fit_transform_train(&train.x, &train.y)
            .map_err(|e| CoreError::Substrate(e.to_string()))?;
        let x_valid = pipeline
            .transform(&valid.x)
            .map_err(|e| CoreError::Substrate(e.to_string()))?;
        let mut model = alg.build(model_params, self.seed);
        model
            .fit(&x_train, &y_train)
            .map_err(|e| CoreError::Substrate(e.to_string()))?;
        let preds = model
            .predict(&x_valid)
            .map_err(|e| CoreError::Substrate(e.to_string()))?;
        Ok(self.metric.loss(&valid.y, &preds))
    }

    fn evaluate_uncached(
        &self,
        assignment: &HashMap<String, f64>,
        fidelity: f64,
    ) -> Result<f64> {
        let (alg, model_params, fe_params) = self.interpret(assignment)?;
        let data = if fidelity >= 1.0 - 1e-9 {
            self.fit_data.clone()
        } else {
            subsample(&self.fit_data, fidelity, self.seed ^ 0xf1de)
        };
        match self.strategy {
            ValidationStrategy::Holdout { .. } => {
                self.fit_and_score(alg, &model_params, &fe_params, &data, &self.valid_data)
            }
            ValidationStrategy::CrossValidation { folds } => {
                let splits: Vec<(Vec<usize>, Vec<usize>)> =
                    if self.space.task == Task::Classification {
                        StratifiedKFold::new(&data, folds, self.seed)?
                            .splits()
                            .collect()
                    } else {
                        KFold::new(data.n_samples(), folds, self.seed)?
                            .splits()
                            .collect()
                    };
                let mut total = 0.0;
                for (train_idx, valid_idx) in &splits {
                    let train = data.subset(train_idx);
                    let valid = data.subset(valid_idx);
                    total += self.fit_and_score(alg, &model_params, &fe_params, &train, &valid)?;
                }
                Ok(total / splits.len() as f64)
            }
        }
    }

    /// Trains the final pipeline+model from an assignment on a complete
    /// dataset (used after search finishes, on the full training split).
    pub fn refit(
        &self,
        assignment: &HashMap<String, f64>,
        data: &Dataset,
    ) -> Result<(FePipeline, Model)> {
        refit_assignment(&self.space, assignment, data, self.seed)
    }

    /// Number of cached entries (for tests/diagnostics).
    pub fn cache_size(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spaces::SpaceTier;
    use volcanoml_data::synthetic::{make_classification, ClassificationSpec};
    use volcanoml_data::Task;

    fn dataset() -> Dataset {
        make_classification(
            &ClassificationSpec {
                n_samples: 240,
                n_features: 8,
                n_informative: 5,
                n_redundant: 0,
                n_classes: 2,
                class_sep: 1.8,
                flip_y: 0.0,
                weights: Vec::new(),
            },
            11,
        )
    }

    fn evaluator() -> Evaluator {
        let space = SpaceDef::tiered(Task::Classification, SpaceTier::Small);
        Evaluator::new(space, &dataset(), Metric::BalancedAccuracy, 0).unwrap()
    }

    #[test]
    fn default_assignment_evaluates() {
        let mut ev = evaluator();
        let defaults = ev.space().defaults();
        let out = ev.evaluate(&defaults, 1.0);
        assert!(out.loss.is_finite());
        assert!(out.loss < 0.4, "loss {}", out.loss);
        assert!(!out.cached);
        assert_eq!(ev.evaluations, 1);
    }

    #[test]
    fn cache_hits_on_repeat() {
        let mut ev = evaluator();
        let defaults = ev.space().defaults();
        let first = ev.evaluate(&defaults, 1.0);
        let second = ev.evaluate(&defaults, 1.0);
        assert!(!first.cached);
        assert!(second.cached);
        assert_eq!(first.loss, second.loss);
        assert_eq!(ev.evaluations, 1);
    }

    #[test]
    fn different_fidelities_are_distinct_cache_entries() {
        let mut ev = evaluator();
        let defaults = ev.space().defaults();
        ev.evaluate(&defaults, 1.0);
        ev.evaluate(&defaults, 0.5);
        assert_eq!(ev.cache_size(), 2);
        assert_eq!(ev.evaluations, 2);
    }

    #[test]
    fn every_algorithm_in_tier_evaluates() {
        let mut ev = evaluator();
        let n_algs = ev.space().algorithms.len();
        for idx in 0..n_algs {
            let mut a = ev.space().defaults();
            a.insert("algorithm".to_string(), idx as f64);
            let out = ev.evaluate(&a, 1.0);
            assert!(out.loss.is_finite(), "algorithm {idx} failed");
        }
    }

    #[test]
    fn bad_algorithm_index_is_infinite_loss() {
        let mut ev = evaluator();
        let mut a = ev.space().defaults();
        a.insert("algorithm".to_string(), 99.0);
        let out = ev.evaluate(&a, 1.0);
        assert!(out.loss.is_infinite());
    }

    #[test]
    fn metric_task_mismatch_rejected() {
        let space = SpaceDef::tiered(Task::Classification, SpaceTier::Small);
        let r = Evaluator::new(space, &dataset(), Metric::Mse, 0);
        assert!(r.is_err());
    }

    #[test]
    fn refit_produces_working_model() {
        let ev = evaluator();
        let d = dataset();
        let (pipeline, model) = ev.refit(&ev.space().defaults(), &d).unwrap();
        let x = pipeline.transform(&d.x).unwrap();
        let preds = model.predict(&x).unwrap();
        let acc = volcanoml_data::metrics::accuracy(&d.y, &preds);
        assert!(acc > 0.7, "refit accuracy {acc}");
    }

    #[test]
    fn cross_validation_strategy_evaluates() {
        let space = SpaceDef::tiered(Task::Classification, SpaceTier::Small);
        let mut ev = Evaluator::with_strategy(
            space,
            &dataset(),
            Metric::BalancedAccuracy,
            ValidationStrategy::CrossValidation { folds: 3 },
            0,
        )
        .unwrap();
        let defaults = ev.space().defaults();
        let out = ev.evaluate(&defaults, 1.0);
        assert!(out.loss.is_finite());
        assert!(out.loss < 0.4, "CV loss {}", out.loss);
    }

    #[test]
    fn cv_loss_is_less_noisy_than_holdout_across_seeds() {
        // Not a strict guarantee, but with 3 folds the CV estimate should
        // have visibly lower spread across evaluator seeds.
        let space = SpaceDef::tiered(Task::Classification, SpaceTier::Small);
        let d = dataset();
        let spread = |strategy: ValidationStrategy| {
            let losses: Vec<f64> = (0..6u64)
                .map(|seed| {
                    let mut ev = Evaluator::with_strategy(
                        space.clone(),
                        &d,
                        Metric::BalancedAccuracy,
                        strategy,
                        seed,
                    )
                    .unwrap();
                    let defaults = ev.space().defaults();
                    ev.evaluate(&defaults, 1.0).loss
                })
                .collect();
            volcanoml_linalg::stats::std_dev(&losses)
        };
        let holdout = spread(ValidationStrategy::Holdout { fraction: 0.25 });
        let cv = spread(ValidationStrategy::CrossValidation { folds: 3 });
        assert!(cv <= holdout + 0.05, "cv {cv} vs holdout {holdout}");
    }

    #[test]
    fn invalid_strategies_are_rejected() {
        let space = SpaceDef::tiered(Task::Classification, SpaceTier::Small);
        assert!(Evaluator::with_strategy(
            space.clone(),
            &dataset(),
            Metric::BalancedAccuracy,
            ValidationStrategy::Holdout { fraction: 1.5 },
            0,
        )
        .is_err());
        assert!(Evaluator::with_strategy(
            space,
            &dataset(),
            Metric::BalancedAccuracy,
            ValidationStrategy::CrossValidation { folds: 1 },
            0,
        )
        .is_err());
    }

    #[test]
    fn fidelity_subsampling_is_cheaper_or_equal() {
        let mut ev = evaluator();
        let defaults = ev.space().defaults();
        // Use the forest (more data-sensitive cost) for a stable signal.
        let mut a = defaults.clone();
        a.insert("algorithm".to_string(), 1.0);
        a.insert("alg:random_forest:n_estimators".to_string(), 80.0);
        let full = ev.evaluate(&a, 1.0);
        let cheap = ev.evaluate(&a, 0.25);
        assert!(cheap.loss.is_finite());
        // Wall-time comparisons are flaky in CI; assert the subsample ran and
        // produced a (possibly worse) finite loss instead.
        assert!(full.loss.is_finite());
    }
}
