//! Incremental search-space construction: grow the pipeline space on
//! plateau evidence.
//!
//! Instead of handing the optimizer the full pipeline space up front, the
//! incremental mode starts from the *minimal* pipeline (imputer, rescaler,
//! balancer — [`volcanoml_fe::space::fe_param_defs_minimal`]) and applies a
//! fixed ladder of discrete expansions ([`volcanoml_fe::space::fe_expansions`])
//! only when the EU-interval machinery says the current space has plateaued:
//! the tree-wide plateau EUI ([`crate::block::BuildingBlock::plateau_eui`])
//! stayed below a threshold for a configurable number of consecutive checks.
//!
//! The [`GrowthController`] owns the live [`SpaceDef`] and the pending
//! expansion ladder. Its trigger logic is deliberately *deterministic in the
//! loss sequence*: journal replay re-drives the same losses through the same
//! controller, so crash-resume reproduces the identical growth trajectory
//! without journaling any controller state beyond the expansion rows
//! themselves (which serve as an audit trail and a replay cross-check).

use crate::spaces::SpaceDef;
use crate::{CoreError, Result};
use volcanoml_fe::space::{fe_expansions, fe_param_defs_minimal, FeExpansion};

/// Default EUI threshold below which the space is considered plateaued.
pub const DEFAULT_EUI_THRESHOLD: f64 = 1e-3;

/// Default number of consecutive below-threshold checks before expanding.
pub const DEFAULT_PLATEAU_WINDOW: usize = 3;

/// How the search space is constructed over the run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum SpaceGrowth {
    /// The full space is available from the first trial (the default).
    #[default]
    Fixed,
    /// Start from the minimal pipeline and expand on plateau evidence.
    Incremental {
        /// EUI below this value counts as plateau evidence.
        eui_threshold: f64,
    },
}

impl SpaceGrowth {
    /// Parses `fixed` or `incremental[:EUI_THRESHOLD]` (the CLI/serve
    /// surface syntax, mirroring the objective's `name[:VALUE]` form).
    pub fn parse(s: &str) -> Result<SpaceGrowth> {
        let (name, value) = match s.split_once(':') {
            Some((n, v)) => (n, Some(v)),
            None => (s, None),
        };
        match (name, value) {
            ("fixed", None) => Ok(SpaceGrowth::Fixed),
            ("fixed", Some(_)) => Err(CoreError::Invalid(
                "space mode `fixed` takes no threshold".into(),
            )),
            ("incremental", None) => Ok(SpaceGrowth::Incremental {
                eui_threshold: DEFAULT_EUI_THRESHOLD,
            }),
            ("incremental", Some(v)) => {
                let t: f64 = v.parse().map_err(|_| {
                    CoreError::Invalid(format!("invalid EUI threshold `{v}` in space mode"))
                })?;
                if !t.is_finite() || t <= 0.0 {
                    return Err(CoreError::Invalid(format!(
                        "EUI threshold must be finite and positive, got {t}"
                    )));
                }
                Ok(SpaceGrowth::Incremental { eui_threshold: t })
            }
            _ => Err(CoreError::Invalid(format!(
                "unknown space mode `{s}` (expected fixed | incremental[:EUI_THRESHOLD])"
            ))),
        }
    }

    /// Canonical surface rendering; `parse(render(m)) == m`, and the
    /// default-threshold incremental mode renders without the suffix so a
    /// round-trip through a spec stays byte-identical to the short form.
    pub fn render(&self) -> String {
        match self {
            SpaceGrowth::Fixed => "fixed".to_string(),
            SpaceGrowth::Incremental { eui_threshold } => {
                if *eui_threshold == DEFAULT_EUI_THRESHOLD {
                    "incremental".to_string()
                } else {
                    format!("incremental:{eui_threshold}")
                }
            }
        }
    }

    /// True for the default (fixed) mode.
    pub fn is_fixed(&self) -> bool {
        matches!(self, SpaceGrowth::Fixed)
    }
}

/// One applied expansion, reported to the journal and the event bus.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpansionEvent {
    /// Stage number *after* applying (stage 0 is the minimal seed space).
    pub stage: usize,
    /// The expansion's name (e.g. `transform_stage`).
    pub name: String,
    /// The plateau EUI that triggered the expansion.
    pub trigger_eui: f64,
    /// Variables the expansion appended to the space.
    pub new_vars: Vec<String>,
}

/// Owns the live space and decides when to apply the next expansion.
pub struct GrowthController {
    space: SpaceDef,
    pending: Vec<FeExpansion>,
    threshold: f64,
    window: usize,
    below: usize,
    stage: usize,
}

impl GrowthController {
    /// Creates a controller over the stage-0 (minimal) space. The pending
    /// ladder is re-derived from the space's task and FE options, so a
    /// replayed study rebuilds the identical ladder.
    pub fn new(stage0: SpaceDef, threshold: f64, window: usize) -> GrowthController {
        let pending = fe_expansions(stage0.task, &stage0.fe_options);
        GrowthController {
            space: stage0,
            pending,
            threshold,
            window: window.max(1),
            below: 0,
            stage: 0,
        }
    }

    /// The current (possibly grown) space.
    pub fn space(&self) -> &SpaceDef {
        &self.space
    }

    /// Number of expansions applied so far (0 = minimal seed).
    pub fn stage(&self) -> usize {
        self.stage
    }

    /// True once every expansion has been applied.
    pub fn exhausted(&self) -> bool {
        self.pending.is_empty()
    }

    /// Feeds one plateau-EUI reading. Finite readings below the threshold
    /// accumulate; any other reading resets the streak (the space is still
    /// improving, or some arm has not produced a trajectory yet). When the
    /// streak reaches the window, the next expansion is applied to the live
    /// space and reported; the caller must then regrow the block tree.
    pub fn check(&mut self, eui: f64) -> Result<Option<ExpansionEvent>> {
        if self.pending.is_empty() {
            return Ok(None);
        }
        if eui.is_finite() && eui < self.threshold {
            self.below += 1;
        } else {
            self.below = 0;
        }
        if self.below < self.window {
            return Ok(None);
        }
        self.below = 0;
        let exp = self.pending.remove(0);
        let new_vars = self.space.apply_fe_expansion(&exp)?;
        self.stage += 1;
        Ok(Some(ExpansionEvent {
            stage: self.stage,
            name: exp.name.to_string(),
            trigger_eui: eui,
            new_vars,
        }))
    }

    /// Canonical state line for [`crate::study::StudyState`]: two controller
    /// instances that would schedule identical futures dump identical lines.
    pub fn capture_state(&self, out: &mut Vec<String>) {
        out.push(format!(
            "growth stage={} pending={} below={} window={} threshold={:016x}",
            self.stage,
            self.pending.len(),
            self.below,
            self.window,
            self.threshold.to_bits()
        ));
    }
}

/// The stage-0 space for incremental mode: same task, algorithm list, and FE
/// options as `full`, but only the minimal FE parameters.
pub fn incremental_seed(full: &SpaceDef) -> Result<SpaceDef> {
    SpaceDef::build(
        full.task,
        full.algorithms.clone(),
        fe_param_defs_minimal(full.task),
        full.fe_options.clone(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spaces::SpaceTier;
    use volcanoml_data::Task;

    fn seed() -> SpaceDef {
        let full = SpaceDef::tiered(Task::Classification, SpaceTier::Medium);
        incremental_seed(&full).unwrap()
    }

    #[test]
    fn parse_and_render_round_trip() {
        assert_eq!(SpaceGrowth::parse("fixed").unwrap(), SpaceGrowth::Fixed);
        assert_eq!(
            SpaceGrowth::parse("incremental").unwrap(),
            SpaceGrowth::Incremental {
                eui_threshold: DEFAULT_EUI_THRESHOLD
            }
        );
        assert_eq!(
            SpaceGrowth::parse("incremental:0.05").unwrap(),
            SpaceGrowth::Incremental { eui_threshold: 0.05 }
        );
        for s in ["fixed", "incremental", "incremental:0.05"] {
            assert_eq!(SpaceGrowth::parse(s).unwrap().render(), s);
        }
        assert!(SpaceGrowth::parse("fixed:1").is_err());
        assert!(SpaceGrowth::parse("incremental:-1").is_err());
        assert!(SpaceGrowth::parse("incremental:nope").is_err());
        assert!(SpaceGrowth::parse("bogus").is_err());
    }

    #[test]
    fn plateau_streak_triggers_expansion_and_resets_on_improvement() {
        let mut c = GrowthController::new(seed(), 0.01, 3);
        let stage0_vars = c.space().len();
        // Two below-threshold readings, then an improvement: streak resets.
        assert!(c.check(0.001).unwrap().is_none());
        assert!(c.check(0.001).unwrap().is_none());
        assert!(c.check(0.5).unwrap().is_none());
        assert!(c.check(0.001).unwrap().is_none());
        assert!(c.check(0.001).unwrap().is_none());
        let ev = c.check(0.001).unwrap().expect("third consecutive fires");
        assert_eq!(ev.stage, 1);
        assert_eq!(ev.name, "transform_stage");
        assert_eq!(ev.trigger_eui, 0.001);
        assert!(!ev.new_vars.is_empty());
        assert!(c.space().len() > stage0_vars);
        assert_eq!(c.stage(), 1);
    }

    #[test]
    fn infinite_eui_blocks_expansion() {
        // Warm-up arms report EUI = ∞ (no trajectory yet): never counts as
        // plateau evidence.
        let mut c = GrowthController::new(seed(), 0.01, 1);
        assert!(c.check(f64::INFINITY).unwrap().is_none());
        assert!(c.check(f64::NAN).unwrap().is_none());
        assert_eq!(c.stage(), 0);
    }

    #[test]
    fn ladder_exhausts_after_all_expansions() {
        let mut c = GrowthController::new(seed(), 0.01, 1);
        let mut names = Vec::new();
        while !c.exhausted() {
            if let Some(ev) = c.check(0.0).unwrap() {
                names.push(ev.name.clone());
            }
        }
        assert_eq!(names, vec!["transform_stage", "operator_families"]);
        assert_eq!(c.stage(), 2);
        // Exhausted controllers ignore further plateau evidence.
        assert!(c.check(0.0).unwrap().is_none());
        assert_eq!(c.stage(), 2);
    }

    #[test]
    fn capture_state_is_deterministic() {
        let mut a = GrowthController::new(seed(), 0.01, 3);
        let mut b = GrowthController::new(seed(), 0.01, 3);
        for c in [&mut a, &mut b] {
            c.check(0.001).unwrap();
        }
        let (mut la, mut lb) = (Vec::new(), Vec::new());
        a.capture_state(&mut la);
        b.capture_state(&mut lb);
        assert_eq!(la, lb);
        assert!(la[0].contains("stage=0 pending=2 below=1"));
    }

    #[test]
    fn incremental_seed_keeps_algorithms_and_shrinks_fe() {
        let full = SpaceDef::tiered(Task::Classification, SpaceTier::Medium);
        let s = incremental_seed(&full).unwrap();
        assert_eq!(s.algorithms, full.algorithms);
        assert!(s.len() < full.len());
        // Non-FE variables are identical.
        for v in full.vars.iter().filter(|v| v.group != crate::spaces::VarGroup::Fe) {
            assert!(s.var(&v.name).is_some(), "missing {}", v.name);
        }
    }
}
