//! The alternating block (§3.3.3, Algorithms 2 and 3): splits its space into
//! two variable sets explored alternately. The first `2L` calls follow
//! Algorithm 2's round-robin initialization (unrolled to one evaluation per
//! `do_next`); afterwards, Algorithm 3 plays the child with the larger
//! expected utility improvement. Before each play, the *other* child's best
//! assignment is pinned into the played child (`set_var`).

use crate::block::{Assignment, BestSolution, BuildingBlock, LossInterval};
use crate::eu::{eu_interval, eui};
use crate::evaluator::Evaluator;
use crate::spaces::SpaceDef;
use crate::Result;
use volcanoml_obs::span;

/// One side of the alternation.
struct Side {
    block: Box<dyn BuildingBlock>,
    /// Names of the variables this side owns (pinned into the sibling).
    vars: Vec<String>,
}

/// Alternating block over two complementary children.
pub struct AlternatingBlock {
    label: String,
    left: Side,
    right: Side,
    /// Round-robin plays per side before EUI scheduling (paper's `L`).
    pub init_rounds: usize,
    /// When true, scheduling stays round-robin forever (the ablation
    /// baseline measured by the blocks-ablation bench).
    pub round_robin_only: bool,
    plays: usize,
    evaluations: usize,
    defaults: Assignment,
}

impl AlternatingBlock {
    /// Creates an alternating block. `defaults` must cover both children's
    /// variables (used to pin siblings before their first result).
    pub fn new(
        label: impl Into<String>,
        left: Box<dyn BuildingBlock>,
        left_vars: Vec<String>,
        right: Box<dyn BuildingBlock>,
        right_vars: Vec<String>,
        defaults: Assignment,
    ) -> AlternatingBlock {
        let mut block = AlternatingBlock {
            label: label.into(),
            left: Side {
                block: left,
                vars: left_vars,
            },
            right: Side {
                block: right,
                vars: right_vars,
            },
            // Paper value is L = 5; see ConditioningBlock::warmup_plays for
            // why the scaled-down default is smaller.
            init_rounds: 2,
            round_robin_only: false,
            plays: 0,
            evaluations: 0,
            defaults,
        };
        // Algorithm 2 line 1: initialize ȳ and z̄ with defaults.
        let right_defaults = block.defaults_for(&block.right.vars);
        block.left.block.set_fixed(&right_defaults);
        let left_defaults = block.defaults_for(&block.left.vars);
        block.right.block.set_fixed(&left_defaults);
        block
    }

    fn defaults_for(&self, vars: &[String]) -> Assignment {
        vars.iter()
            .filter_map(|v| self.defaults.get(v).map(|x| (v.clone(), *x)))
            .collect()
    }

    /// Pins the sibling's current best (or defaults) into the side to play.
    fn sync_from_sibling(&mut self, play_left: bool) {
        let (sibling, sibling_vars) = if play_left {
            (&self.right.block, &self.right.vars)
        } else {
            (&self.left.block, &self.left.vars)
        };
        let mut pinned = self.defaults_for(sibling_vars);
        if let Some(own) = sibling.own_best() {
            for (k, v) in own {
                if sibling_vars.contains(&k) {
                    pinned.insert(k, v);
                }
            }
        }
        if play_left {
            self.left.block.set_fixed(&pinned);
        } else {
            self.right.block.set_fixed(&pinned);
        }
    }

    /// Which side to play next (Algorithm 2 during init, Algorithm 3 after),
    /// plus a trace annotation describing the decision.
    fn choose_side(&self) -> (bool, String) {
        if self.round_robin_only || self.plays < 2 * self.init_rounds {
            let left = self.plays.is_multiple_of(2);
            (
                left,
                format!("side={} schedule=round-robin", if left { "left" } else { "right" }),
            )
        } else {
            let left_eui = self.left.block.expected_utility_improvement();
            let right_eui = self.right.block.expected_utility_improvement();
            let left = left_eui >= right_eui;
            (
                left,
                format!(
                    "side={} schedule=eui left_eui={:.6} right_eui={:.6}",
                    if left { "left" } else { "right" },
                    left_eui,
                    right_eui
                ),
            )
        }
    }

    /// Plays delivered to the left child.
    pub fn left_plays(&self) -> usize {
        self.left.block.evaluations()
    }

    /// Plays delivered to the right child.
    pub fn right_plays(&self) -> usize {
        self.right.block.evaluations()
    }
}

impl BuildingBlock for AlternatingBlock {
    fn do_next(&mut self, evaluator: &Evaluator) -> Result<()> {
        let (play_left, decision) = self.choose_side();
        let tracer = evaluator.tracer();
        let mut pull = span(&tracer, "pull", &self.label, "");
        pull.set_detail(decision);
        self.sync_from_sibling(play_left);
        if play_left {
            self.left.block.do_next(evaluator)?;
        } else {
            self.right.block.do_next(evaluator)?;
        }
        self.plays += 1;
        self.evaluations += 1;
        Ok(())
    }

    /// Batch path: one scheduling decision per batch — the chosen side gets
    /// all `k` trials (pinning the sibling's best once), and the batch
    /// counts as a single "play" for the alternation schedule, so init-phase
    /// round-robin alternates between batches.
    fn do_next_batch(
        &mut self,
        evaluator: &Evaluator,
        pool: &volcanoml_exec::ExecPool,
        k: usize,
    ) -> Result<()> {
        let (play_left, decision) = self.choose_side();
        let tracer = evaluator.tracer();
        let mut pull = span(&tracer, "pull", &self.label, "");
        pull.set_detail(format!("{decision} batch k={k}"));
        self.sync_from_sibling(play_left);
        if play_left {
            self.left.block.do_next_batch(evaluator, pool, k)?;
        } else {
            self.right.block.do_next_batch(evaluator, pool, k)?;
        }
        self.plays += 1;
        self.evaluations += k;
        Ok(())
    }

    fn current_best(&self) -> Option<BestSolution> {
        match (
            self.left.block.current_best(),
            self.right.block.current_best(),
        ) {
            (Some(l), Some(r)) => Some(if l.loss <= r.loss { l } else { r }),
            (Some(l), None) => Some(l),
            (None, Some(r)) => Some(r),
            (None, None) => None,
        }
    }

    fn own_best(&self) -> Option<Assignment> {
        // This block owns both sides' variables: merge the winning side's
        // own assignment with the other side's contribution.
        let l = self.left.block.own_best();
        let r = self.right.block.own_best();
        match (l, r) {
            (None, None) => None,
            (l, r) => {
                let mut merged = Assignment::new();
                if let Some(r) = r {
                    merged.extend(r);
                }
                if let Some(l) = l {
                    merged.extend(l);
                }
                Some(merged)
            }
        }
    }

    fn expected_utility(&self, k: usize) -> LossInterval {
        eu_interval(&self.trajectory(), k, 0.0)
    }

    fn expected_utility_improvement(&self) -> f64 {
        eui(&self.trajectory(), 4)
    }

    fn set_fixed(&mut self, fixed: &Assignment) {
        self.left.block.set_fixed(fixed);
        self.right.block.set_fixed(fixed);
    }

    fn set_cost_aware(&mut self, enabled: bool) {
        self.left.block.set_cost_aware(enabled);
        self.right.block.set_cost_aware(enabled);
    }

    /// Partitions the new variables between the two sides and extends each
    /// side's ownership, the pin-defaults map, and the children. A new
    /// variable joins the side that owns its condition parent; parentless
    /// variables are classified by the `fe:` name prefix, matching the
    /// plan's Fe/NonFe split. Both children are regrown even when they gain
    /// no variables, so widened choice lists reach the owning side.
    fn grow(&mut self, space: &SpaceDef, new_vars: &[String]) -> Result<()> {
        let mut left_new: Vec<String> = Vec::new();
        let mut right_new: Vec<String> = Vec::new();
        let left_is_fe = self.left.vars.iter().any(|v| v.starts_with("fe:"));
        for name in new_vars {
            let parent = space
                .var(name)
                .and_then(|v| v.condition.as_ref())
                .map(|(p, _)| p.clone());
            let goes_left = match &parent {
                Some(p) if self.left.vars.contains(p) || left_new.contains(p) => true,
                Some(p) if self.right.vars.contains(p) || right_new.contains(p) => false,
                _ => name.starts_with("fe:") == left_is_fe,
            };
            if goes_left {
                left_new.push(name.clone());
            } else {
                right_new.push(name.clone());
            }
        }
        for n in new_vars {
            if let Some(v) = space.var(n) {
                self.defaults.insert(n.clone(), v.default);
            }
        }
        self.left.vars.extend(left_new.iter().cloned());
        self.right.vars.extend(right_new.iter().cloned());
        self.left.block.grow(space, &left_new)?;
        self.right.block.grow(space, &right_new)?;
        Ok(())
    }

    /// Both sides must plateau before the space grows.
    fn plateau_eui(&self) -> f64 {
        self.left
            .block
            .plateau_eui()
            .max(self.right.block.plateau_eui())
    }

    fn trajectory(&self) -> Vec<f64> {
        let lt = self.left.block.trajectory();
        let rt = self.right.block.trajectory();
        let mut merged = Vec::with_capacity(lt.len() + rt.len());
        let mut best = f64::INFINITY;
        let (mut i, mut j) = (0usize, 0usize);
        while i < lt.len() || j < rt.len() {
            if i < lt.len() {
                best = best.min(lt[i]);
                merged.push(best);
                i += 1;
            }
            if j < rt.len() {
                best = best.min(rt[j]);
                merged.push(best);
                j += 1;
            }
        }
        merged
    }

    fn evaluations(&self) -> usize {
        self.evaluations
    }

    fn describe(&self, indent: usize, out: &mut String) {
        out.push_str(&" ".repeat(indent));
        out.push_str(&format!(
            "Alternating[{}] plays(l/r)={}/{}\n",
            self.label,
            self.left.block.evaluations(),
            self.right.block.evaluations()
        ));
        self.left.block.describe(indent + 2, out);
        self.right.block.describe(indent + 2, out);
    }

    fn capture_state(&self, path: &str, out: &mut Vec<String>) {
        out.push(format!(
            "{path} alternating plays={} evaluations={}",
            self.plays, self.evaluations
        ));
        self.left.block.capture_state(&format!("{path}/left"), out);
        self.right.block.capture_state(&format!("{path}/right"), out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::joint::{JointBlock, JointEngine};
    use crate::spaces::{SpaceDef, SpaceTier, VarGroup};
    use volcanoml_data::synthetic::{make_classification, ClassificationSpec};
    use volcanoml_data::{Metric, Task};

    fn setup() -> (Evaluator, SpaceDef) {
        let space = SpaceDef::tiered(Task::Classification, SpaceTier::Small);
        let d = make_classification(
            &ClassificationSpec {
                n_samples: 240,
                n_features: 8,
                n_informative: 5,
                n_redundant: 0,
                n_classes: 2,
                class_sep: 1.3,
                flip_y: 0.02,
                weights: Vec::new(),
            },
            5,
        );
        let ev = Evaluator::new(space.clone(), &d, Metric::BalancedAccuracy, 0).unwrap();
        (ev, space)
    }

    /// FE-vs-HP alternating block for a fixed algorithm.
    fn fe_hp_alternating(space: &SpaceDef, alg: usize) -> AlternatingBlock {
        let mut ctx = Assignment::new();
        ctx.insert("algorithm".to_string(), alg as f64);
        let fe_vars: Vec<String> = space
            .vars
            .iter()
            .filter(|v| v.group == VarGroup::Fe)
            .map(|v| v.name.clone())
            .collect();
        let hp_vars: Vec<String> = space
            .vars
            .iter()
            .filter(|v| v.group == VarGroup::Hp(alg))
            .map(|v| v.name.clone())
            .collect();
        let fe_space = space.compile_subspace(&fe_vars, &ctx).unwrap();
        let hp_space = space.compile_subspace(&hp_vars, &ctx).unwrap();
        let left = Box::new(JointBlock::new("fe", fe_space, JointEngine::Bo, ctx.clone(), 1));
        let right = Box::new(JointBlock::new("hp", hp_space, JointEngine::Bo, ctx.clone(), 2));
        AlternatingBlock::new("fe-vs-hp", left, fe_vars, right, hp_vars, space.defaults())
    }

    #[test]
    fn init_phase_is_round_robin() {
        let (ev, space) = setup();
        let mut block = fe_hp_alternating(&space, 1);
        block.init_rounds = 3;
        for _ in 0..6 {
            block.do_next(&ev).unwrap();
        }
        assert_eq!(block.left_plays(), 3);
        assert_eq!(block.right_plays(), 3);
    }

    #[test]
    fn finds_a_finite_best_with_both_sides_contributing() {
        let (ev, space) = setup();
        let mut block = fe_hp_alternating(&space, 1);
        for _ in 0..16 {
            block.do_next(&ev).unwrap();
        }
        let best = block.current_best().unwrap();
        assert!(best.loss.is_finite());
        assert_eq!(best.assignment.get("algorithm"), Some(&1.0));
        assert!(best.assignment.keys().any(|k| k.starts_with("fe:")));
        assert!(best.assignment.keys().any(|k| k.starts_with("alg:")));
    }

    #[test]
    fn eui_scheduling_plays_both_sides() {
        let (ev, space) = setup();
        let mut block = fe_hp_alternating(&space, 1);
        block.init_rounds = 2;
        for _ in 0..30 {
            block.do_next(&ev).unwrap();
        }
        assert_eq!(block.left_plays() + block.right_plays(), 30);
        assert!(block.left_plays() >= 2);
        assert!(block.right_plays() >= 2);
    }

    #[test]
    fn round_robin_only_splits_evenly() {
        let (ev, space) = setup();
        let mut block = fe_hp_alternating(&space, 0);
        block.round_robin_only = true;
        for _ in 0..20 {
            block.do_next(&ev).unwrap();
        }
        assert_eq!(block.left_plays(), 10);
        assert_eq!(block.right_plays(), 10);
    }

    #[test]
    fn trajectory_is_monotone() {
        let (ev, space) = setup();
        let mut block = fe_hp_alternating(&space, 0);
        for _ in 0..12 {
            block.do_next(&ev).unwrap();
        }
        let t = block.trajectory();
        assert!(t.windows(2).all(|w| w[1] <= w[0] + 1e-12));
    }

    #[test]
    fn own_best_covers_both_sides() {
        let (ev, space) = setup();
        let mut block = fe_hp_alternating(&space, 1);
        for _ in 0..12 {
            block.do_next(&ev).unwrap();
        }
        let own = block.own_best().unwrap();
        assert!(own.keys().any(|k| k.starts_with("fe:")));
        assert!(own.keys().any(|k| k.starts_with("alg:")));
        assert!(!own.contains_key("algorithm"));
    }

    #[test]
    fn set_fixed_propagates_to_both_children() {
        let (ev, space) = setup();
        let mut block = fe_hp_alternating(&space, 2);
        let mut extra = Assignment::new();
        extra.insert("algorithm".to_string(), 2.0);
        block.set_fixed(&extra);
        block.do_next(&ev).unwrap();
        block.do_next(&ev).unwrap();
        let best = block.current_best().unwrap();
        assert_eq!(best.assignment.get("algorithm"), Some(&2.0));
    }
}
