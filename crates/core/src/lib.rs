//! VolcanoML core: building blocks, execution plans, and the end-to-end
//! AutoML engine.
//!
//! This crate implements the paper's contribution (§3–§4):
//!
//! - [`spaces`] assembles the joint AutoML search space (algorithm selection
//!   × per-algorithm hyper-parameters × feature engineering) in three tiers
//!   matching the paper's small/medium/large scalability study;
//! - [`block`] defines the `BuildingBlock` interface (`do_next!`,
//!   `get_current_best`, `get_eu`, `get_eui`, `set_var`);
//! - [`joint`], [`conditioning`], and [`alternating`] implement the three
//!   block types (§3.3), with rising-bandit EU intervals and rotting-bandit
//!   EUI estimates in [`eu`];
//! - [`plan`] compiles a declarative [`plan::PlanSpec`] tree into a block
//!   tree and [`plans`] enumerates the coarse-grained plan alternatives the
//!   paper studies (Fig. 1, Fig. 2, Fig. 3, and the appendix plan search);
//! - [`evaluator`] turns variable assignments into trained ML pipelines and
//!   losses, with caching, cost accounting, and a subsampling fidelity axis;
//! - [`metalearn`] provides dataset meta-features and k-NN warm starts;
//! - [`ensemble`] implements greedy ensemble selection over evaluated
//!   pipelines (the auto-sklearn post-pass);
//! - [`automl`] exposes the user-facing [`automl::VolcanoML`] engine.

pub mod alternating;
pub mod automl;
pub mod block;
pub mod conditioning;
pub mod ensemble;
pub mod eu;
pub mod evaluator;
pub mod growth;
pub mod joint;
pub mod metalearn;
pub mod objective;
pub mod plan;
pub mod plans;
pub mod spaces;
pub mod study;

pub use automl::{AutoMlReport, FittedVolcanoML, VolcanoML, VolcanoMlOptions};
pub use study::StudyState;
pub use block::{Assignment, BuildingBlock, LossInterval};
pub use evaluator::{assignment_digest, EvalOutcome, Evaluator, TrialTag, ValidationStrategy};
pub use growth::{ExpansionEvent, GrowthController, SpaceGrowth};
pub use objective::{pareto_front, Objective};
pub use plan::{EngineKind, PlanSpec, VarFilter};
pub use spaces::{SpaceDef, SpaceTier, VarDef, VarGroup};

/// Errors produced by the AutoML engine.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Inconsistent space/plan/dataset combination.
    Invalid(String),
    /// Propagated substrate errors.
    Substrate(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Invalid(s) => write!(f, "invalid: {s}"),
            CoreError::Substrate(s) => write!(f, "substrate failure: {s}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<volcanoml_bo::BoError> for CoreError {
    fn from(e: volcanoml_bo::BoError) -> Self {
        CoreError::Substrate(e.to_string())
    }
}

impl From<volcanoml_data::DataError> for CoreError {
    fn from(e: volcanoml_data::DataError) -> Self {
        CoreError::Substrate(e.to_string())
    }
}

/// Convenience alias for core results.
pub type Result<T> = std::result::Result<T, CoreError>;
