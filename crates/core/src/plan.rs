//! Declarative execution plans (§4): a [`PlanSpec`] tree is compiled against
//! a [`SpaceDef`] into a tree of building blocks, mirroring how a relational
//! plan is compiled into physical operators.

use crate::alternating::AlternatingBlock;
use crate::block::{Assignment, BuildingBlock};
use crate::conditioning::ConditioningBlock;
use crate::joint::JointBlock;
use crate::spaces::{SpaceDef, VarDef, VarGroup};
use crate::{CoreError, Result};
use volcanoml_bo::Domain;
use volcanoml_data::rand_util::derive_seed;

pub use crate::joint::JointEngine as EngineKind;

/// Selects which variables go to the *left* child of an alternating split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VarFilter {
    /// Feature-engineering variables (`fe:*`).
    Fe,
    /// Everything that is not FE (algorithm selector + HPs).
    NonFe,
    /// Variables whose name starts with the prefix.
    Prefix(String),
}

impl VarFilter {
    /// Whether a variable goes to the left side.
    pub fn matches(&self, var: &VarDef) -> bool {
        match self {
            VarFilter::Fe => var.group == VarGroup::Fe,
            VarFilter::NonFe => var.group != VarGroup::Fe,
            VarFilter::Prefix(p) => var.name.starts_with(p.as_str()),
        }
    }
}

/// A declarative execution plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanSpec {
    /// One joint block over all remaining variables.
    Joint(EngineKind),
    /// Condition on a categorical variable; one child per value.
    Conditioning {
        /// Conditioned variable name (must be categorical).
        on: String,
        /// Template for each child subspace.
        child: Box<PlanSpec>,
    },
    /// Alternate between two variable subsets.
    Alternating {
        /// Variables matching this filter go left; the rest go right.
        left_filter: VarFilter,
        /// Plan for the left subset.
        left: Box<PlanSpec>,
        /// Plan for the right subset.
        right: Box<PlanSpec>,
    },
}

impl PlanSpec {
    /// The paper's default VolcanoML plan (Figure 2): condition on the
    /// algorithm, then alternate FE vs HP, with joint leaves.
    pub fn volcano_default(engine: EngineKind) -> PlanSpec {
        PlanSpec::Conditioning {
            on: "algorithm".to_string(),
            child: Box::new(PlanSpec::Alternating {
                left_filter: VarFilter::Fe,
                left: Box::new(PlanSpec::Joint(engine)),
                right: Box::new(PlanSpec::Joint(engine)),
            }),
        }
    }

    /// The auto-sklearn-style plan: a single joint block (Figure 1, Plan 1).
    pub fn single_joint(engine: EngineKind) -> PlanSpec {
        PlanSpec::Joint(engine)
    }

    /// Compiles the plan against a space into a block tree.
    pub fn compile(&self, space: &SpaceDef, seed: u64) -> Result<Box<dyn BuildingBlock>> {
        let vars = space.var_names();
        self.compile_inner(space, &vars, &Assignment::new(), seed, "root")
    }

    fn compile_inner(
        &self,
        space: &SpaceDef,
        vars: &[String],
        context: &Assignment,
        seed: u64,
        label: &str,
    ) -> Result<Box<dyn BuildingBlock>> {
        // Drop variables that are inactive under the pinned context.
        let active: Vec<String> = vars
            .iter()
            .filter(|name| {
                let Some(var) = space.var(name) else {
                    return false;
                };
                match &var.condition {
                    None => true,
                    Some((parent, values)) => match context.get(parent) {
                        Some(pv) => values.contains(&(pv.round().max(0.0) as usize)),
                        None => true,
                    },
                }
            })
            .cloned()
            .collect();

        match self {
            PlanSpec::Joint(engine) => {
                let cs = space.compile_subspace(&active, context)?;
                Ok(Box::new(JointBlock::new(
                    label,
                    cs,
                    *engine,
                    context.clone(),
                    seed,
                )))
            }
            PlanSpec::Conditioning { on, child } => {
                if !active.contains(on) {
                    return Err(CoreError::Invalid(format!(
                        "conditioning variable {on} not in scope at {label}"
                    )));
                }
                let var = space
                    .var(on)
                    .ok_or_else(|| CoreError::Invalid(format!("unknown variable {on}")))?;
                let Domain::Cat { n } = var.domain else {
                    return Err(CoreError::Invalid(format!(
                        "conditioning variable {on} must be categorical"
                    )));
                };
                let remaining: Vec<String> =
                    active.iter().filter(|v| *v != on).cloned().collect();
                let mut children: Vec<(usize, Box<dyn BuildingBlock>)> = Vec::with_capacity(n);
                for value in 0..n {
                    let mut ctx = context.clone();
                    ctx.insert(on.clone(), value as f64);
                    let child_label = format!("{label}/{on}={value}");
                    let block = child.compile_inner(
                        space,
                        &remaining,
                        &ctx,
                        derive_seed(seed, value as u64 + 1),
                        &child_label,
                    )?;
                    children.push((value, block));
                }
                Ok(Box::new(ConditioningBlock::new(label, on.clone(), children)))
            }
            PlanSpec::Alternating {
                left_filter,
                left,
                right,
            } => {
                let (left_vars, right_vars): (Vec<String>, Vec<String>) =
                    active.iter().cloned().partition(|name| {
                        space.var(name).is_some_and(|v| left_filter.matches(v))
                    });
                if left_vars.is_empty() || right_vars.is_empty() {
                    return Err(CoreError::Invalid(format!(
                        "alternating split at {label} leaves one side empty \
                         ({} left / {} right)",
                        left_vars.len(),
                        right_vars.len()
                    )));
                }
                let left_block = left.compile_inner(
                    space,
                    &left_vars,
                    context,
                    derive_seed(seed, 101),
                    &format!("{label}/left"),
                )?;
                let right_block = right.compile_inner(
                    space,
                    &right_vars,
                    context,
                    derive_seed(seed, 202),
                    &format!("{label}/right"),
                )?;
                Ok(Box::new(AlternatingBlock::new(
                    label,
                    left_block,
                    left_vars,
                    right_block,
                    right_vars,
                    space.defaults(),
                )))
            }
        }
    }

    /// Short human-readable rendering of the plan shape.
    pub fn render(&self) -> String {
        match self {
            PlanSpec::Joint(e) => format!("Joint({})", e.name()),
            PlanSpec::Conditioning { on, child } => {
                format!("Conditioning({on}) -> {}", child.render())
            }
            PlanSpec::Alternating { left, right, .. } => {
                format!("Alternating[{} | {}]", left.render(), right.render())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::Evaluator;
    use crate::spaces::SpaceTier;
    use volcanoml_data::synthetic::{make_classification, ClassificationSpec};
    use volcanoml_data::{Metric, Task};

    fn setup(tier: SpaceTier) -> (Evaluator, SpaceDef) {
        let space = SpaceDef::tiered(Task::Classification, tier);
        let d = make_classification(
            &ClassificationSpec {
                n_samples: 260,
                n_features: 8,
                n_informative: 5,
                n_redundant: 0,
                n_classes: 2,
                class_sep: 1.4,
                flip_y: 0.02,
                weights: Vec::new(),
            },
            9,
        );
        let ev = Evaluator::new(space.clone(), &d, Metric::BalancedAccuracy, 0).unwrap();
        (ev, space)
    }

    #[test]
    fn joint_plan_compiles_and_runs() {
        let (ev, space) = setup(SpaceTier::Small);
        let mut block = PlanSpec::single_joint(EngineKind::Bo)
            .compile(&space, 0)
            .unwrap();
        for _ in 0..6 {
            block.do_next(&ev).unwrap();
        }
        assert!(block.current_best().unwrap().loss.is_finite());
    }

    #[test]
    fn volcano_plan_compiles_to_expected_tree() {
        let (_, space) = setup(SpaceTier::Small);
        let plan = PlanSpec::volcano_default(EngineKind::Bo);
        let block = plan.compile(&space, 0).unwrap();
        let rendered = crate::block::explain(block.as_ref());
        assert!(rendered.contains("Conditioning[root]"));
        assert!(rendered.contains("Alternating["));
        assert!(rendered.contains("Joint["));
        // One arm per algorithm.
        assert_eq!(
            rendered.matches("Alternating[").count(),
            space.algorithms.len()
        );
    }

    #[test]
    fn volcano_plan_runs_and_improves() {
        let (ev, space) = setup(SpaceTier::Small);
        let mut block = PlanSpec::volcano_default(EngineKind::Bo)
            .compile(&space, 0)
            .unwrap();
        for _ in 0..20 {
            block.do_next(&ev).unwrap();
        }
        let best = block.current_best().unwrap();
        assert!(best.loss < 0.5, "loss {}", best.loss);
        assert!(best.assignment.contains_key("algorithm"));
    }

    #[test]
    fn conditioning_on_unknown_variable_fails() {
        let (_, space) = setup(SpaceTier::Small);
        let plan = PlanSpec::Conditioning {
            on: "nonexistent".to_string(),
            child: Box::new(PlanSpec::Joint(EngineKind::Bo)),
        };
        assert!(plan.compile(&space, 0).is_err());
    }

    #[test]
    fn conditioning_on_non_categorical_fails() {
        let (_, space) = setup(SpaceTier::Small);
        let plan = PlanSpec::Conditioning {
            on: "alg:logistic:alpha".to_string(),
            child: Box::new(PlanSpec::Joint(EngineKind::Bo)),
        };
        assert!(plan.compile(&space, 0).is_err());
    }

    #[test]
    fn empty_alternating_side_fails() {
        let (_, space) = setup(SpaceTier::Small);
        let plan = PlanSpec::Alternating {
            left_filter: VarFilter::Prefix("zzz:".to_string()),
            left: Box::new(PlanSpec::Joint(EngineKind::Bo)),
            right: Box::new(PlanSpec::Joint(EngineKind::Bo)),
        };
        assert!(plan.compile(&space, 0).is_err());
    }

    #[test]
    fn nested_alternating_with_conditioning_inside() {
        // Plan 5 shape: alternate FE against (conditioning on algorithm).
        let (ev, space) = setup(SpaceTier::Small);
        let plan = PlanSpec::Alternating {
            left_filter: VarFilter::Fe,
            left: Box::new(PlanSpec::Joint(EngineKind::Bo)),
            right: Box::new(PlanSpec::Conditioning {
                on: "algorithm".to_string(),
                child: Box::new(PlanSpec::Joint(EngineKind::Bo)),
            }),
        };
        let mut block = plan.compile(&space, 0).unwrap();
        for _ in 0..15 {
            block.do_next(&ev).unwrap();
        }
        assert!(block.current_best().unwrap().loss.is_finite());
    }

    #[test]
    fn render_shapes() {
        let p = PlanSpec::volcano_default(EngineKind::Bo);
        assert_eq!(
            p.render(),
            "Conditioning(algorithm) -> Alternating[Joint(bo) | Joint(bo)]"
        );
    }

    #[test]
    fn medium_tier_volcano_plan_runs() {
        let (ev, space) = setup(SpaceTier::Medium);
        let mut block = PlanSpec::volcano_default(EngineKind::Bo)
            .compile(&space, 0)
            .unwrap();
        for _ in 0..12 {
            block.do_next(&ev).unwrap();
        }
        assert!(block.current_best().is_some());
    }
}
