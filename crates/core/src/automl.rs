//! The user-facing AutoML engine: configure a space + plan + budget, call
//! `fit`, get back a trained pipeline (or ensemble) and a search report.

use crate::block::Assignment;
use crate::ensemble::Ensemble;
use crate::evaluator::{Evaluator, ValidationStrategy};
use crate::growth::{incremental_seed, GrowthController, SpaceGrowth, DEFAULT_PLATEAU_WINDOW};
use crate::metalearn::MetaBase;
use crate::objective::Objective;
use crate::plan::{EngineKind, PlanSpec};
use crate::spaces::{SpaceDef, SpaceTier};
use crate::study::StudyState;
use crate::{CoreError, Result};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use volcanoml_data::{train_test_split, Dataset, Metric, Task};
use volcanoml_exec::{ExecPool, Journal, PoolConfig};
use volcanoml_fe::FePipeline;
use volcanoml_linalg::Matrix;
use volcanoml_models::{Estimator, Model};
use volcanoml_obs::{MetricsRegistry, Tracer};

/// Engine options.
#[derive(Clone)]
pub struct VolcanoMlOptions {
    /// Execution plan (defaults to the paper's Figure 2 plan with BO leaves).
    pub plan: PlanSpec,
    /// Utility metric; `None` uses the paper's defaults (balanced accuracy /
    /// MSE).
    pub metric: Option<Metric>,
    /// Maximum number of pipeline evaluations.
    pub max_evaluations: usize,
    /// Optional wall-clock cap checked between evaluations.
    pub time_budget: Option<Duration>,
    /// Master seed.
    pub seed: u64,
    /// Warm-start assignments evaluated before the plan runs (meta-learning
    /// initial design).
    pub warm_start: Vec<Assignment>,
    /// When > 1, build a greedy ensemble of up to this many distinct members
    /// instead of refitting only the single best pipeline.
    pub ensemble_size: usize,
    /// How pipeline quality is measured during search.
    pub validation: ValidationStrategy,
    /// Feed measured trial cost back into the engines: BO leaves switch to
    /// EI-per-second acquisition (backed by a cost surrogate over observed
    /// wall times), and multi-fidelity leaves promote by loss-improvement
    /// per second and calibrate bracket floors from measured per-fidelity
    /// costs. Search *results* stay loss-optimal; cost only reorders which
    /// candidates get evaluated first.
    pub cost_aware: bool,
    /// What the search minimizes: plain validation loss, or a scalarized
    /// loss + weighted inference-latency trade-off
    /// ([`Objective::LossAndCost`]). The scalarized value is what engines
    /// observe and journals record, so resume replay stays bitwise; the
    /// report additionally extracts the `(loss, inference_cost)` Pareto
    /// front.
    pub objective: Objective,
    /// Worker threads for trial execution. With `n_workers > 1` the engine
    /// pulls *batches* of trials from the plan (`do_next_batch`) and runs
    /// them concurrently on an [`ExecPool`].
    pub n_workers: usize,
    /// Optional per-trial wall-clock deadline. Requires the pool path (any
    /// `n_workers`); a trial exceeding it is abandoned with infinite loss.
    pub trial_deadline: Option<Duration>,
    /// When set, every trial is appended to a JSONL journal at this path.
    pub journal_path: Option<std::path::PathBuf>,
    /// When set, parent-linked span events (block pulls, BO suggest cycles,
    /// trials, arm eliminations) are appended as JSONL at this path. Trial
    /// spans share the journal's trial ids, so the two files join.
    pub trace_path: Option<std::path::PathBuf>,
    /// When set, a metrics snapshot (cache hit/miss counters, trial cost
    /// histograms, per-worker busy-time gauges, binned-tree training
    /// counters) is written as JSON to this path at end of run.
    pub metrics_path: Option<std::path::PathBuf>,
    /// Threads used *inside* a single model fit (tree ensembles). Fits are
    /// bit-identical across thread counts, so this only affects wall time.
    /// Orthogonal to `n_workers`, which parallelizes across trials.
    pub model_n_jobs: usize,
    /// Narrow features to `f32` storage before histogram binning in models
    /// that support it (tree forests). Halves raw-matrix read traffic;
    /// losses may move within f32 rounding of bin cut points.
    pub model_f32: bool,
    /// Crash-resume: when set (requires `journal_path`), the journal is
    /// opened with [`Journal::resume_from_path`] and its rows are loaded
    /// into the evaluator's replay table. The search then re-drives the
    /// same plan from the same seed; journaled trials are answered bitwise
    /// from the table (no re-training, no duplicate trial ids) and fresh
    /// trials continue the interrupted run's id sequence and clock.
    pub resume: bool,
    /// Externally owned worker pool. When set, trials run on this pool
    /// instead of a run-private one — how a multi-tenant server shares one
    /// pool across concurrent studies. `n_workers` still bounds this run's
    /// batch size.
    pub shared_pool: Option<Arc<ExecPool>>,
    /// Dynamic cap on the per-pull batch size, consulted before every pull.
    /// A fair-share arbiter returns `workers / active_studies` here so
    /// concurrent studies split a shared pool without starving each other.
    pub batch_cap: Option<Arc<dyn Fn() -> usize + Send + Sync>>,
    /// Cooperative cancellation: checked between pulls alongside the
    /// budgets. Setting it makes `fit` wind down after the in-flight batch.
    pub stop_flag: Option<Arc<AtomicBool>>,
    /// Externally owned metrics registry (e.g. a server streaming progress
    /// while the run is live). Takes precedence over the run-private
    /// registry `metrics_path` would create; the end-of-run snapshot is
    /// still written to `metrics_path` when both are set.
    pub shared_metrics: Option<Arc<MetricsRegistry>>,
    /// Externally owned live event bus. Trial completions, arm
    /// eliminations, rung promotions, and worker stalls are published as
    /// typed events (via the tracer hooks) for subscribers to stream —
    /// independent of whether archival tracing (`trace_path`) is on.
    pub event_bus: Option<Arc<volcanoml_obs::EventBus>>,
    /// How the search space is constructed. [`SpaceGrowth::Fixed`] (the
    /// default) searches the full space from trial one — byte-identical to
    /// the engine before incremental construction existed.
    /// [`SpaceGrowth::Incremental`] starts from the minimal pipeline and
    /// applies the FE expansion ladder whenever the block tree's plateau
    /// EUI stays below the threshold for
    /// [`DEFAULT_PLATEAU_WINDOW`] consecutive pulls; every applied
    /// expansion is journaled and published as
    /// [`volcanoml_obs::ObsEvent::SpaceExpanded`].
    pub space_growth: SpaceGrowth,
}

impl Default for VolcanoMlOptions {
    fn default() -> Self {
        VolcanoMlOptions {
            plan: PlanSpec::volcano_default(EngineKind::Bo),
            metric: None,
            max_evaluations: 60,
            time_budget: None,
            seed: 0,
            warm_start: Vec::new(),
            ensemble_size: 1,
            validation: ValidationStrategy::default(),
            cost_aware: false,
            objective: Objective::Loss,
            n_workers: 1,
            trial_deadline: None,
            journal_path: None,
            trace_path: None,
            metrics_path: None,
            model_n_jobs: 1,
            model_f32: false,
            resume: false,
            shared_pool: None,
            batch_cap: None,
            stop_flag: None,
            shared_metrics: None,
            event_bus: None,
            space_growth: SpaceGrowth::Fixed,
        }
    }
}

/// The VolcanoML AutoML engine.
pub struct VolcanoML {
    space: SpaceDef,
    options: VolcanoMlOptions,
}

/// Search statistics returned alongside the fitted model.
#[derive(Debug, Clone)]
pub struct AutoMlReport {
    /// Best validation loss reached.
    pub best_loss: f64,
    /// Best assignment.
    pub best_assignment: Assignment,
    /// `(evaluation_index, cumulative_cost_seconds, best_loss_so_far)` after
    /// every full-fidelity evaluation — the raw series behind the paper's
    /// time-vs-error figures.
    pub trajectory: Vec<(usize, f64, f64)>,
    /// `(evaluation_index, cumulative_cost_seconds, loss, assignment)` at
    /// every incumbent *change* — enough to reconstruct test-error-vs-time
    /// curves without storing every evaluation.
    pub incumbent_steps: Vec<(usize, f64, f64, Assignment)>,
    /// Total pipeline evaluations executed.
    pub n_evaluations: usize,
    /// Total evaluation wall-time in seconds.
    pub total_cost: f64,
    /// Rendered block tree after the run (the plan "EXPLAIN").
    pub plan_explain: String,
    /// Top distinct assignments (best first) — meta-learning records these.
    pub top_assignments: Vec<(Assignment, f64)>,
    /// Result-cache hits (identical `(assignment, fidelity)` re-evaluations
    /// answered without refitting).
    pub cache_hits: u64,
    /// Result-cache misses (actual pipeline fits executed).
    pub cache_misses: u64,
    /// Feature-engineering cache hits (transform reused across trials).
    pub fe_cache_hits: u64,
    /// Feature-engineering cache misses.
    pub fe_cache_misses: u64,
    /// `(fidelity, evaluation_count)` pairs in ascending fidelity order —
    /// the multi-fidelity mix actually exercised by the run. A single
    /// `(1.0, n)` entry means the engine never used sub-full fidelities.
    pub fidelity_counts: Vec<(f64, usize)>,
    /// Feature bytes copied by dataset-view row gathers during the search
    /// (index views materialized on FE-cache misses).
    pub bytes_gathered: u64,
    /// Feature-matrix accesses served zero-copy by a full dataset view.
    pub gathers_skipped: u64,
    /// Non-dominated `(assignment, loss, inference_seconds)` points over
    /// the distinct full-fidelity pipelines the search evaluated — the
    /// loss-vs-serving-latency trade-offs none of which is strictly better
    /// than another. Under [`Objective::LossAndCost`] the loss coordinate
    /// is the scalarized value the search minimized. Journal-replayed
    /// trials carry inference cost 0 (the decomposition is not journaled),
    /// so resumed studies under-report the latency coordinate for
    /// pre-crash trials.
    pub pareto_front: Vec<(Assignment, f64, f64)>,
}

/// The fitted artifact: single pipeline or ensemble, plus the report.
pub struct FittedVolcanoML {
    single: Option<(FePipeline, Model)>,
    ensemble: Option<Ensemble>,
    /// Search report.
    pub report: AutoMlReport,
    /// Bitwise snapshot of the search's final scheduling state (block tree
    /// and evaluator), captured right after the search loop. Crash-resume
    /// tests compare this across interrupted/uninterrupted runs.
    pub study_state: StudyState,
    task: Task,
}

impl VolcanoML {
    /// Engine over an explicit space definition.
    pub fn new(space: SpaceDef, options: VolcanoMlOptions) -> VolcanoML {
        VolcanoML { space, options }
    }

    /// Engine over one of the paper's tiered spaces.
    pub fn with_tier(task: Task, tier: SpaceTier, options: VolcanoMlOptions) -> VolcanoML {
        VolcanoML::new(SpaceDef::tiered(task, tier), options)
    }

    /// The space being searched.
    pub fn space(&self) -> &SpaceDef {
        &self.space
    }

    /// Populates `options.warm_start` from a meta-base (k-NN over dataset
    /// meta-features). Returns the number of configurations added.
    pub fn warm_start_from(&mut self, meta_base: &MetaBase, dataset: &Dataset) -> usize {
        let recs = meta_base.recommend(dataset, 3, 5);
        let n = recs.len();
        self.options.warm_start.extend(recs);
        n
    }

    /// Runs the search and refits the winner on the full training data.
    pub fn fit(&self, data: &Dataset) -> Result<FittedVolcanoML> {
        if data.task != self.space.task {
            return Err(CoreError::Invalid(format!(
                "dataset task {:?} does not match space task {:?}",
                data.task, self.space.task
            )));
        }
        let metric = self
            .options
            .metric
            .unwrap_or_else(|| Metric::default_for(data.task));
        let evaluator = Evaluator::with_strategy(
            self.space.clone(),
            data,
            metric,
            self.options.validation,
            self.options.seed,
        )?;
        if let Some(path) = &self.options.journal_path {
            let journal = if self.options.resume {
                let journal = Journal::resume_from_path(path)
                    .map_err(|e| CoreError::Invalid(format!("cannot resume journal: {e}")))?;
                evaluator.attach_replay(&journal.records());
                journal
            } else {
                Journal::to_path(path)
                    .map_err(|e| CoreError::Invalid(format!("cannot open journal: {e}")))?
            };
            evaluator.attach_journal(Arc::new(journal));
        } else if self.options.resume {
            return Err(CoreError::Invalid(
                "resume requires a journal_path to replay from".into(),
            ));
        }
        if let Some(path) = &self.options.trace_path {
            let mut tracer = Tracer::to_path(path)
                .map_err(|e| CoreError::Invalid(format!("cannot open trace: {e}")))?;
            if let Some(bus) = &self.options.event_bus {
                tracer.set_bus(Arc::clone(bus));
            }
            evaluator.set_tracer(Arc::new(tracer));
        } else if let Some(bus) = &self.options.event_bus {
            // No archival trace requested: a disabled tracer still carries
            // the bus, so live subscribers see events without trace I/O.
            let mut tracer = Tracer::disabled();
            tracer.set_bus(Arc::clone(bus));
            evaluator.set_tracer(Arc::new(tracer));
        }
        // Binned-tree and dataset-view gather counters are process-global;
        // diff against a baseline so the snapshot reflects only this run.
        let binned_baseline = volcanoml_models::binned::stats::snapshot();
        let gather_baseline = volcanoml_data::view::stats::snapshot();
        let metrics = if let Some(m) = &self.options.shared_metrics {
            evaluator.set_metrics(Arc::clone(m));
            Some(Arc::clone(m))
        } else if self.options.metrics_path.is_some() {
            let m = Arc::new(MetricsRegistry::new());
            evaluator.set_metrics(Arc::clone(&m));
            Some(m)
        } else {
            None
        };
        evaluator.set_model_n_jobs(self.options.model_n_jobs);
        evaluator.set_model_f32(self.options.model_f32);
        evaluator.set_objective(self.options.objective);
        let pool: Option<Arc<ExecPool>> = if let Some(pool) = &self.options.shared_pool {
            Some(Arc::clone(pool))
        } else if self.options.n_workers > 1 || self.options.trial_deadline.is_some() {
            let mut config = PoolConfig::with_workers(self.options.n_workers.max(1));
            config.trial_deadline = self.options.trial_deadline;
            Some(Arc::new(ExecPool::new(config)))
        } else {
            None
        };
        // Incremental mode compiles the plan against the minimal stage-0
        // space and grows it on plateau evidence. The evaluator keeps the
        // full space either way: assignments are interpreted by prefix and
        // digested as maps, so stage-0 configs hash and evaluate identically
        // under both modes (and stay cache-valid across expansions).
        let mut growth: Option<GrowthController> = match self.options.space_growth {
            SpaceGrowth::Fixed => None,
            SpaceGrowth::Incremental { eui_threshold } => Some(GrowthController::new(
                incremental_seed(&self.space)?,
                eui_threshold,
                DEFAULT_PLATEAU_WINDOW,
            )),
        };
        // Expansions already journaled by an interrupted run: the replay
        // re-derives the same triggers from the same losses, so these fire
        // again during re-drive and must not be re-journaled.
        let replayed_expansions = evaluator
            .journal()
            .map(|j| j.expansions().len())
            .unwrap_or(0);
        let mut root = match &growth {
            Some(g) => self.options.plan.compile(g.space(), self.options.seed)?,
            None => self.options.plan.compile(&self.space, self.options.seed)?,
        };
        if self.options.cost_aware {
            root.set_cost_aware(true);
        }

        let start = Instant::now();
        // Saturation guard: `evaluations()` counts only non-cached trials,
        // so on a space whose distinct configs run out before the budget
        // does, an engine would draw cached duplicates forever without
        // ever advancing the counter. A long unbroken run of cache hits
        // (comfortably above any engine's legitimate duplicate rate, and
        // scaled with batch width so one pooled pull can't trip it) means
        // there is nothing fresh left to draw — treat it as out of budget.
        let saturation_limit = 16usize.max(2 * self.options.n_workers.max(1));
        let out_of_budget = |evaluator: &Evaluator| {
            evaluator.evaluations() >= self.options.max_evaluations
                || evaluator.consecutive_cached() >= saturation_limit
                || self
                    .options
                    .time_budget
                    .is_some_and(|b| start.elapsed() >= b)
                || self
                    .options
                    .stop_flag
                    .as_ref()
                    .is_some_and(|f| f.load(Ordering::Relaxed))
        };

        // Meta-learning initial design: evaluate warm starts first. They both
        // seed the global best and prime the evaluator cache.
        for assignment in &self.options.warm_start {
            if out_of_budget(&evaluator) {
                break;
            }
            // Complete partial assignments with defaults.
            let mut full = self.space.defaults();
            for (k, v) in assignment {
                full.insert(k.clone(), *v);
            }
            evaluator.evaluate(&full, 1.0);
        }

        // The Volcano loop: pull on the root until the budget is gone. With
        // a pool, each pull requests one batch of (at most) one trial per
        // worker, capped by the remaining budget.
        while !out_of_budget(&evaluator) {
            match &pool {
                Some(pool) => {
                    let remaining = self
                        .options
                        .max_evaluations
                        .saturating_sub(evaluator.evaluations());
                    let mut k = pool
                        .workers()
                        .min(self.options.n_workers.max(1))
                        .min(remaining)
                        .max(1);
                    if let Some(cap) = &self.options.batch_cap {
                        k = k.min(cap().max(1));
                    }
                    root.do_next_batch(&evaluator, pool, k)?;
                }
                None => root.do_next(&evaluator)?,
            }
            // Plateau check between pulls: the batch just pulled is fully
            // observed, which is the only point where engine histories may
            // be remapped into a grown space.
            if let Some(g) = &mut growth {
                if let Some(ev) = g.check(root.plateau_eui())? {
                    root.grow(g.space(), &ev.new_vars)?;
                    let journaled_trials = if let Some(journal) = evaluator.journal() {
                        if ev.stage > replayed_expansions {
                            journal.record_expansion(volcanoml_exec::ExpansionRecord {
                                stage: ev.stage as u64,
                                name: ev.name.clone(),
                                trigger_eui: ev.trigger_eui,
                                trial: journal.len() as u64,
                            });
                        }
                        journal.len() as u64
                    } else {
                        evaluator.evaluations() as u64
                    };
                    let tracer = evaluator.tracer();
                    if let Some(bus) = tracer.bus() {
                        bus.publish(volcanoml_obs::ObsEvent::SpaceExpanded {
                            stage: ev.stage as u64,
                            name: ev.name.clone(),
                            trigger_eui: ev.trigger_eui,
                            trial: journaled_trials,
                        });
                    }
                    tracer.event(
                        "expansion",
                        volcanoml_obs::EventFields {
                            detail: format!(
                                "stage {} {} trigger_eui={}",
                                ev.stage, ev.name, ev.trigger_eui
                            ),
                            ..Default::default()
                        },
                    );
                }
            }
        }

        // Multi-fidelity engines may exhaust a small budget before promoting
        // anything to full fidelity; promote the best low-fidelity candidate
        // with one final full evaluation so `fit` always yields a pipeline.
        let log = evaluator.log();
        let has_full = log
            .iter()
            .any(|e| e.fidelity >= 1.0 - 1e-9 && e.loss.is_finite());
        if !has_full {
            let best_low = log
                .iter()
                .filter(|e| e.loss.is_finite())
                .min_by(|a, b| a.loss.partial_cmp(&b.loss).unwrap_or(std::cmp::Ordering::Equal))
                .map(|e| e.assignment.clone());
            if let Some(assignment) = best_low {
                evaluator.evaluate(&assignment, 1.0);
            }
        }

        // Snapshot the scheduling state before any post-search work
        // (ensembling, refit) — this is the state a resumed run must
        // reproduce bitwise. In incremental mode the growth controller's
        // ladder position joins the snapshot: two runs that will expand
        // differently in the future must not compare equal.
        let mut study_state = StudyState::capture(root.as_ref(), &evaluator);
        if let Some(g) = &growth {
            g.capture_state(&mut study_state.lines);
        }

        // Collect the global best and trajectory from the evaluator log
        // (warm starts + all blocks).
        let mut best_loss = f64::INFINITY;
        let mut best_assignment: Option<Assignment> = None;
        let mut trajectory = Vec::new();
        let mut incumbent_steps = Vec::new();
        let mut cum_cost = 0.0;
        let log = evaluator.log();
        for (i, entry) in log.iter().enumerate() {
            cum_cost += entry.cost;
            if entry.fidelity >= 1.0 - 1e-9 && entry.loss < best_loss {
                best_loss = entry.loss;
                best_assignment = Some(entry.assignment.clone());
                incumbent_steps.push((i + 1, cum_cost, best_loss, entry.assignment.clone()));
            }
            if entry.fidelity >= 1.0 - 1e-9 && best_loss.is_finite() {
                trajectory.push((i + 1, cum_cost, best_loss));
            }
        }
        let best_assignment = best_assignment.ok_or_else(|| {
            CoreError::Invalid("no successful full-fidelity evaluation within budget".into())
        })?;

        // Distinct top assignments for ensembling / meta-learning.
        let mut seen = std::collections::HashSet::new();
        let mut top: Vec<(Assignment, f64)> = Vec::new();
        let mut entries: Vec<_> = log
            .iter()
            .filter(|e| e.fidelity >= 1.0 - 1e-9 && e.loss.is_finite())
            .collect();
        entries.sort_by(|a, b| a.loss.total_cmp(&b.loss));
        for e in entries {
            let key: Vec<(String, u64)> = {
                let mut kv: Vec<(String, u64)> = e
                    .assignment
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_bits()))
                    .collect();
                kv.sort();
                kv
            };
            if seen.insert(key) {
                top.push((e.assignment.clone(), e.loss));
            }
            if top.len() >= 10 {
                break;
            }
        }

        // Pareto front over the same distinct full-fidelity pipelines:
        // scalarization drives the search to one number, the front recovers
        // the (loss, inference latency) trade-offs it collapsed.
        let pareto_front: Vec<(Assignment, f64, f64)> = {
            let mut seen = std::collections::HashSet::new();
            let mut entries: Vec<_> = log
                .iter()
                .filter(|e| e.fidelity >= 1.0 - 1e-9 && e.loss.is_finite())
                .collect();
            entries.sort_by(|a, b| a.loss.total_cmp(&b.loss));
            let mut candidates: Vec<(Assignment, f64, f64)> = Vec::new();
            for e in entries {
                let mut kv: Vec<(String, u64)> = e
                    .assignment
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_bits()))
                    .collect();
                kv.sort();
                if seen.insert(kv) {
                    candidates.push((e.assignment.clone(), e.loss, e.infer_cost));
                }
            }
            let points: Vec<(f64, f64)> = candidates.iter().map(|c| (c.1, c.2)).collect();
            crate::objective::pareto_front(&points)
                .into_iter()
                .map(|i| candidates[i].clone())
                .collect()
        };

        // The fidelity mix exercised by the run (ascending): a multi-fidelity
        // engine that degraded to full-fidelity-only shows up immediately as
        // a single (1.0, n) entry here.
        let mut fid_counts: std::collections::BTreeMap<u64, (f64, usize)> =
            std::collections::BTreeMap::new();
        for e in &log {
            let entry = fid_counts.entry(e.fidelity.to_bits()).or_insert((e.fidelity, 0));
            entry.1 += 1;
        }
        let mut fidelity_counts: Vec<(f64, usize)> = fid_counts.into_values().collect();
        fidelity_counts.sort_by(|a, b| a.0.total_cmp(&b.0));

        let (cache_hits, cache_misses, fe_cache_hits, fe_cache_misses) = evaluator.cache_stats();
        let (bytes_now, skips_now) = volcanoml_data::view::stats::snapshot();
        let bytes_gathered = bytes_now.saturating_sub(gather_baseline.0);
        let gathers_skipped = skips_now.saturating_sub(gather_baseline.1);
        let report = AutoMlReport {
            best_loss,
            best_assignment: best_assignment.clone(),
            trajectory,
            incumbent_steps,
            n_evaluations: evaluator.evaluations(),
            total_cost: evaluator.total_cost(),
            plan_explain: crate::block::explain(root.as_ref()),
            top_assignments: top.clone(),
            cache_hits,
            cache_misses,
            fe_cache_hits,
            fe_cache_misses,
            fidelity_counts,
            bytes_gathered,
            gathers_skipped,
            pareto_front,
        };

        // End-of-run observability: sample run-level figures into the
        // registry, write the snapshot, and flush the append-only files.
        if let Some(m) = &metrics {
            evaluator.sample_cache_metrics(m);
            m.set_gauge("run.workers", self.options.n_workers as f64);
            m.set_gauge("run.best_loss", best_loss);
            let b = volcanoml_models::binned::stats::snapshot();
            let base = &binned_baseline;
            m.inc_counter(
                "binned.matrices_built",
                b.matrices_built.saturating_sub(base.matrices_built),
            );
            m.inc_counter(
                "binned.cells_encoded",
                b.cells_encoded.saturating_sub(base.cells_encoded),
            );
            m.inc_counter(
                "binned.hist_node_scans",
                b.hist_node_scans.saturating_sub(base.hist_node_scans),
            );
            m.inc_counter(
                "binned.hist_bytes_scanned",
                b.hist_bytes_scanned.saturating_sub(base.hist_bytes_scanned),
            );
            m.inc_counter(
                "binned.arena_reuses",
                b.arena_reuses.saturating_sub(base.arena_reuses),
            );
            m.inc_counter(
                "binned.feature_parallel_merges",
                b.feature_parallel_merges
                    .saturating_sub(base.feature_parallel_merges),
            );
            m.inc_counter("data.bytes_gathered", bytes_gathered);
            m.inc_counter("data.gathers_skipped", gathers_skipped);
            if let Some(path) = &self.options.metrics_path {
                m.write_to(path)
                    .map_err(|e| CoreError::Invalid(format!("cannot write metrics: {e}")))?;
            }
        }
        evaluator.tracer().flush();
        if let Some(journal) = evaluator.journal() {
            journal.flush();
        }

        // Final artifact.
        if self.options.ensemble_size > 1 && top.len() > 1 {
            // Internal split for greedy selection.
            let (ens_train, ens_valid) =
                train_test_split(data, 0.25, self.options.seed ^ 0xe5e)?;
            let ensemble = Ensemble::select(
                &evaluator,
                &top,
                &ens_train,
                &ens_valid,
                metric,
                self.options.ensemble_size,
                self.options.ensemble_size * 2,
            )?;
            Ok(FittedVolcanoML {
                single: None,
                ensemble: Some(ensemble),
                report,
                study_state,
                task: data.task,
            })
        } else {
            let (pipeline, model) = evaluator.refit(&best_assignment, data)?;
            Ok(FittedVolcanoML {
                single: Some((pipeline, model)),
                ensemble: None,
                report,
                study_state,
                task: data.task,
            })
        }
    }
}

impl FittedVolcanoML {
    /// Predicts targets (class indices or regression values) for new data.
    pub fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        if let Some((pipeline, model)) = &self.single {
            let xt = pipeline
                .transform(x)
                .map_err(|e| CoreError::Substrate(e.to_string()))?;
            return model
                .predict(&xt)
                .map_err(|e| CoreError::Substrate(e.to_string()));
        }
        if let Some(ensemble) = &self.ensemble {
            return ensemble.predict(x);
        }
        Err(CoreError::Invalid("fitted artifact is empty".into()))
    }

    /// Scores the fitted artifact on a held-out dataset with `metric`.
    pub fn score(&self, data: &Dataset, metric: Metric) -> Result<f64> {
        if data.task != self.task {
            return Err(CoreError::Invalid("task mismatch in score".into()));
        }
        let preds = self.predict(&data.x)?;
        Ok(metric.score(&data.y, &preds))
    }

    /// Whether the artifact is an ensemble.
    pub fn is_ensemble(&self) -> bool {
        self.ensemble.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use volcanoml_data::synthetic::{
        make_classification, make_regression, ClassificationSpec, RegressionSpec,
    };

    fn cls_data(seed: u64) -> Dataset {
        make_classification(
            &ClassificationSpec {
                n_samples: 300,
                n_features: 8,
                n_informative: 5,
                n_redundant: 1,
                n_classes: 2,
                class_sep: 1.2,
                flip_y: 0.03,
                weights: Vec::new(),
            },
            seed,
        )
    }

    fn quick_options(n: usize) -> VolcanoMlOptions {
        VolcanoMlOptions {
            max_evaluations: n,
            ..Default::default()
        }
    }

    #[test]
    fn end_to_end_classification() {
        let d = cls_data(1);
        let (train, test) = train_test_split(&d, 0.2, 0).unwrap();
        let engine =
            VolcanoML::with_tier(Task::Classification, SpaceTier::Small, quick_options(25));
        let fitted = engine.fit(&train).unwrap();
        assert!(fitted.report.best_loss < 0.5);
        assert!(fitted.report.n_evaluations <= 25);
        let acc = fitted.score(&test, Metric::BalancedAccuracy).unwrap();
        assert!(acc > 0.6, "test balanced accuracy {acc}");
        assert!(fitted.report.plan_explain.contains("Conditioning"));
    }

    #[test]
    fn end_to_end_regression() {
        let d = make_regression(
            &RegressionSpec {
                n_samples: 260,
                n_features: 6,
                n_informative: 4,
                noise: 0.3,
                nonlinear: false,
            },
            2,
        );
        let (train, test) = train_test_split(&d, 0.2, 0).unwrap();
        let engine = VolcanoML::with_tier(Task::Regression, SpaceTier::Small, quick_options(20));
        let fitted = engine.fit(&train).unwrap();
        let r2 = fitted.score(&test, Metric::R2).unwrap();
        assert!(r2 > 0.5, "test R² {r2}");
    }

    #[test]
    fn budget_is_respected() {
        let d = cls_data(3);
        let engine =
            VolcanoML::with_tier(Task::Classification, SpaceTier::Small, quick_options(10));
        let fitted = engine.fit(&d).unwrap();
        assert!(fitted.report.n_evaluations <= 10);
    }

    #[test]
    fn trajectory_is_monotone_with_increasing_cost() {
        let d = cls_data(4);
        let engine =
            VolcanoML::with_tier(Task::Classification, SpaceTier::Small, quick_options(20));
        let fitted = engine.fit(&d).unwrap();
        let t = &fitted.report.trajectory;
        assert!(!t.is_empty());
        assert!(t.windows(2).all(|w| w[1].2 <= w[0].2 + 1e-12));
        assert!(t.windows(2).all(|w| w[1].1 >= w[0].1));
    }

    #[test]
    fn warm_start_is_used() {
        let d = cls_data(5);
        let mut options = quick_options(8);
        let mut good = Assignment::new();
        good.insert("algorithm".to_string(), 1.0);
        options.warm_start = vec![good];
        let engine = VolcanoML::with_tier(Task::Classification, SpaceTier::Small, options);
        let fitted = engine.fit(&d).unwrap();
        // The warm start counts toward the budget and appears in the log.
        assert!(fitted.report.n_evaluations >= 1);
    }

    #[test]
    fn ensemble_mode_produces_ensemble() {
        let d = cls_data(6);
        let mut options = quick_options(20);
        options.ensemble_size = 3;
        let engine = VolcanoML::with_tier(Task::Classification, SpaceTier::Small, options);
        let fitted = engine.fit(&d).unwrap();
        assert!(fitted.is_ensemble());
        let preds = fitted.predict(&d.x).unwrap();
        assert_eq!(preds.len(), d.n_samples());
    }

    #[test]
    fn task_mismatch_is_rejected() {
        let d = cls_data(7);
        let engine = VolcanoML::with_tier(Task::Regression, SpaceTier::Small, quick_options(5));
        assert!(engine.fit(&d).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let d = cls_data(8);
        let run = || {
            let engine =
                VolcanoML::with_tier(Task::Classification, SpaceTier::Small, quick_options(15));
            engine.fit(&d).unwrap().report.best_loss
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn model_n_jobs_does_not_change_search_results() {
        let d = cls_data(11);
        let run = |jobs: usize| {
            let mut options = quick_options(12);
            options.model_n_jobs = jobs;
            let engine = VolcanoML::with_tier(Task::Classification, SpaceTier::Small, options);
            engine.fit(&d).unwrap().report.best_loss
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn cost_aware_search_is_deterministic_and_finds_a_model() {
        let d = cls_data(12);
        let run = || {
            let mut options = quick_options(15);
            options.cost_aware = true;
            let engine = VolcanoML::with_tier(Task::Classification, SpaceTier::Small, options);
            engine.fit(&d).unwrap().report.best_loss
        };
        let loss = run();
        assert!(loss.is_finite() && loss < 0.5, "cost-aware best loss {loss}");
        assert_eq!(loss, run());
    }

    #[test]
    fn incremental_space_expands_and_is_deterministic() {
        let d = cls_data(15);
        let run = || {
            let bus = Arc::new(volcanoml_obs::EventBus::new());
            let mut options = quick_options(40);
            // A permissive threshold so the plateau window fires as soon as
            // every arm has a finite EUI — the test exercises the growth
            // path, not the plateau heuristic.
            options.space_growth = SpaceGrowth::Incremental { eui_threshold: 10.0 };
            options.event_bus = Some(Arc::clone(&bus));
            let engine = VolcanoML::with_tier(Task::Classification, SpaceTier::Small, options);
            let fitted = engine.fit(&d).unwrap();
            let expansions: Vec<(u64, String)> = bus
                .read_after(None)
                .into_iter()
                .filter_map(|e| match e.event {
                    volcanoml_obs::ObsEvent::SpaceExpanded { stage, name, .. } => {
                        Some((stage, name))
                    }
                    _ => None,
                })
                .collect();
            (
                fitted.report.best_loss,
                expansions,
                fitted.study_state.render(),
            )
        };
        let (loss, expansions, state) = run();
        assert!(loss.is_finite() && loss < 0.5, "incremental best loss {loss}");
        assert!(!expansions.is_empty(), "no expansion fired within budget");
        assert_eq!(expansions[0], (1, "transform_stage".to_string()));
        assert!(state.contains("growth stage="), "snapshot lacks growth line");
        let (loss2, expansions2, state2) = run();
        assert_eq!(loss, loss2);
        assert_eq!(expansions, expansions2);
        // Full snapshots embed measured wall-clock costs, so two live runs
        // never compare bitwise (only replayed runs do — covered by the
        // resume tests). The growth line, however, is cost-free.
        let growth_line = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("growth "))
                .map(str::to_string)
        };
        assert_eq!(growth_line(&state), growth_line(&state2));
    }

    #[test]
    fn fixed_mode_snapshot_has_no_growth_line() {
        let d = cls_data(16);
        let engine =
            VolcanoML::with_tier(Task::Classification, SpaceTier::Small, quick_options(10));
        let fitted = engine.fit(&d).unwrap();
        assert!(
            !fitted.study_state.render().contains("growth "),
            "fixed mode must not add growth lines to the snapshot"
        );
    }

    #[test]
    fn loss_and_cost_objective_yields_pareto_front() {
        let d = cls_data(13);
        let mut options = quick_options(15);
        options.objective = Objective::LossAndCost { latency_weight: 10.0 };
        let engine = VolcanoML::with_tier(Task::Classification, SpaceTier::Small, options);
        let fitted = engine.fit(&d).unwrap();
        let front = &fitted.report.pareto_front;
        assert!(!front.is_empty());
        for (_, loss, infer) in front {
            assert!(loss.is_finite() && infer.is_finite() && *infer >= 0.0);
        }
        // No front member dominates another.
        for (i, a) in front.iter().enumerate() {
            for (j, b) in front.iter().enumerate() {
                if i != j {
                    let dom = a.1 <= b.1 && a.2 <= b.2 && (a.1 < b.1 || a.2 < b.2);
                    assert!(!dom, "front member {i} dominates {j}");
                }
            }
        }
        // The incumbent's (scalarized) loss appears on the front: nothing
        // can strictly beat the minimum of the loss coordinate.
        assert!(front.iter().any(|(_, l, _)| *l == fitted.report.best_loss));
    }

    #[test]
    fn exhausted_tiny_space_terminates_instead_of_spinning() {
        // A space with exactly two distinct configs (the algorithm choice is
        // the only variable) against a budget of 50: `evaluations()` only
        // counts non-cached trials, so without the consecutive-cache
        // saturation guard the random engine spins forever re-drawing the
        // two cached configs. Run in a thread so a regression fails the
        // test instead of hanging CI.
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let space = SpaceDef {
                task: Task::Classification,
                algorithms: vec![
                    volcanoml_models::AlgorithmKind::Logistic,
                    volcanoml_models::AlgorithmKind::Knn,
                ],
                vars: vec![crate::spaces::VarDef {
                    name: "algorithm".to_string(),
                    domain: volcanoml_bo::Domain::Cat { n: 2 },
                    default: 0.0,
                    condition: None,
                    group: crate::spaces::VarGroup::Algorithm,
                }],
                fe_options: volcanoml_fe::pipeline::FeSpaceOptions::default(),
            };
            let options = VolcanoMlOptions {
                plan: PlanSpec::single_joint(EngineKind::Random),
                max_evaluations: 50,
                ..Default::default()
            };
            let engine = VolcanoML::new(space, options);
            let fitted = engine.fit(&cls_data(14)).unwrap();
            tx.send(fitted.report.n_evaluations).unwrap();
        });
        let n = rx
            .recv_timeout(std::time::Duration::from_secs(120))
            .expect("saturated search did not terminate");
        assert!(n <= 3, "expected ~2 distinct evaluations, got {n}");
    }

    #[test]
    fn metalearn_roundtrip_via_engine() {
        let d1 = cls_data(9);
        let d2 = cls_data(10);
        let engine =
            VolcanoML::with_tier(Task::Classification, SpaceTier::Small, quick_options(12));
        let fitted = engine.fit(&d1).unwrap();
        let mut base = MetaBase::new();
        base.record(
            &d1,
            fitted
                .report
                .top_assignments
                .iter()
                .map(|(a, _)| a.clone())
                .take(3)
                .collect(),
        );
        let mut engine2 =
            VolcanoML::with_tier(Task::Classification, SpaceTier::Small, quick_options(12));
        let added = engine2.warm_start_from(&base, &d2);
        assert!(added > 0);
        let fitted2 = engine2.fit(&d2).unwrap();
        assert!(fitted2.report.best_loss.is_finite());
    }
}
