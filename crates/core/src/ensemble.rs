//! Greedy ensemble selection (Caruana et al.) over evaluated pipelines —
//! the post-search pass auto-sklearn ships, exposed as an option here.
//!
//! From the evaluator's log we keep the best distinct assignments, refit them
//! on the search split, and greedily grow a bag (with replacement) that
//! minimizes the validation loss of the averaged prediction.

use crate::block::Assignment;
use crate::evaluator::Evaluator;
use crate::{CoreError, Result};
use volcanoml_data::{Dataset, Metric, Task};
use volcanoml_fe::FePipeline;
use volcanoml_linalg::Matrix;
use volcanoml_models::{Estimator, Model};

/// A fitted ensemble member.
pub struct EnsembleMember {
    /// The assignment it was built from.
    pub assignment: Assignment,
    /// Fitted FE pipeline.
    pub pipeline: FePipeline,
    /// Fitted model.
    pub model: Model,
    /// How many times greedy selection picked it (its weight).
    pub weight: usize,
}

/// A weighted ensemble of pipelines.
pub struct Ensemble {
    /// Members with non-zero weight.
    pub members: Vec<EnsembleMember>,
    task: Task,
    n_classes: usize,
}

impl Ensemble {
    /// Builds an ensemble by greedy selection.
    ///
    /// `candidates` are `(assignment, validation_loss)` pairs (best first is
    /// not required); `rounds` bounds the bag size. Members are refit on
    /// `train`; selection optimizes `metric` on `valid`.
    pub fn select(
        evaluator: &Evaluator,
        candidates: &[(Assignment, f64)],
        train: &Dataset,
        valid: &Dataset,
        metric: Metric,
        max_members: usize,
        rounds: usize,
    ) -> Result<Ensemble> {
        if candidates.is_empty() {
            return Err(CoreError::Invalid("no ensemble candidates".into()));
        }
        // Keep the top `max_members` distinct candidates by loss.
        let mut sorted: Vec<&(Assignment, f64)> = candidates.iter().collect();
        // total_cmp puts NaN losses last so a poisoned candidate can never
        // evict a finite one from the member shortlist.
        sorted.sort_by(|a, b| a.1.total_cmp(&b.1));
        sorted.truncate(max_members.max(1));

        // Refit and cache per-candidate validation predictions.
        let mut fitted: Vec<(Assignment, FePipeline, Model, Vec<f64>, Matrix)> = Vec::new();
        for (assignment, _) in sorted {
            let Ok((pipeline, model)) = evaluator.refit(assignment, train) else {
                continue;
            };
            let Ok(xv) = pipeline.transform(&valid.x) else {
                continue;
            };
            let Ok(preds) = model.predict(&xv) else {
                continue;
            };
            let proba = if train.task == Task::Classification {
                model
                    .predict_proba(&xv)
                    .unwrap_or_else(|_| Matrix::zeros(valid.n_samples(), train.n_classes.max(2)))
            } else {
                Matrix::zeros(0, 0)
            };
            fitted.push((assignment.clone(), pipeline, model, preds, proba));
        }
        if fitted.is_empty() {
            return Err(CoreError::Invalid(
                "all ensemble candidates failed to refit".into(),
            ));
        }

        let n_classes = train.n_classes.max(2);
        let n_valid = valid.n_samples();
        // Greedy selection with replacement, optimizing averaged prediction.
        let mut weights = vec![0usize; fitted.len()];
        // Running sums: probability matrix for classification, prediction
        // vector for regression.
        let mut proba_sum = Matrix::zeros(n_valid, n_classes);
        let mut pred_sum = vec![0.0; n_valid];

        for (bag_size, _) in (0..rounds.max(1)).enumerate() {
            let mut best_idx = None;
            let mut best_loss = f64::INFINITY;
            for (i, (_, _, _, preds, proba)) in fitted.iter().enumerate() {
                let loss = if train.task == Task::Classification {
                    // Tentatively add member i.
                    let scale = 1.0 / (bag_size + 1) as f64;
                    let labels: Vec<f64> = (0..n_valid)
                        .map(|r| {
                            let mut best_c = 0usize;
                            let mut best_v = f64::MIN;
                            for c in 0..n_classes {
                                let v = (proba_sum.get(r, c) + proba.get(r, c)) * scale;
                                if v > best_v {
                                    best_v = v;
                                    best_c = c;
                                }
                            }
                            best_c as f64
                        })
                        .collect();
                    metric.loss(&valid.y, &labels)
                } else {
                    let scale = 1.0 / (bag_size + 1) as f64;
                    let avg: Vec<f64> = pred_sum
                        .iter()
                        .zip(preds.iter())
                        .map(|(s, p)| (s + p) * scale)
                        .collect();
                    metric.loss(&valid.y, &avg)
                };
                if loss < best_loss {
                    best_loss = loss;
                    best_idx = Some(i);
                }
            }
            let Some(i) = best_idx else { break };
            weights[i] += 1;
            let (_, _, _, preds, proba) = &fitted[i];
            if train.task == Task::Classification {
                for r in 0..n_valid {
                    for c in 0..n_classes {
                        let v = proba_sum.get(r, c) + proba.get(r, c);
                        proba_sum.set(r, c, v);
                    }
                }
            } else {
                for (s, p) in pred_sum.iter_mut().zip(preds.iter()) {
                    *s += p;
                }
            }
        }

        let members: Vec<EnsembleMember> = fitted
            .into_iter()
            .zip(weights)
            .filter(|(_, w)| *w > 0)
            .map(|((assignment, pipeline, model, _, _), weight)| EnsembleMember {
                assignment,
                pipeline,
                model,
                weight,
            })
            .collect();
        Ok(Ensemble {
            members,
            task: train.task,
            n_classes,
        })
    }

    /// Predicts with the weighted ensemble.
    pub fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        if self.members.is_empty() {
            return Err(CoreError::Invalid("empty ensemble".into()));
        }
        match self.task {
            Task::Classification => {
                let mut proba = Matrix::zeros(x.rows(), self.n_classes);
                let mut total = 0.0;
                for m in &self.members {
                    let xt = m
                        .pipeline
                        .transform(x)
                        .map_err(|e| CoreError::Substrate(e.to_string()))?;
                    let p = m
                        .model
                        .predict_proba(&xt)
                        .map_err(|e| CoreError::Substrate(e.to_string()))?;
                    let w = m.weight as f64;
                    total += w;
                    for r in 0..x.rows() {
                        for c in 0..self.n_classes.min(p.cols()) {
                            let v = proba.get(r, c) + w * p.get(r, c);
                            proba.set(r, c, v);
                        }
                    }
                }
                let _ = total;
                Ok((0..x.rows())
                    .map(|r| volcanoml_linalg::stats::argmax(proba.row(r)).unwrap_or(0) as f64)
                    .collect())
            }
            Task::Regression => {
                let mut sum = vec![0.0; x.rows()];
                let mut total = 0.0;
                for m in &self.members {
                    let xt = m
                        .pipeline
                        .transform(x)
                        .map_err(|e| CoreError::Substrate(e.to_string()))?;
                    let p = m
                        .model
                        .predict(&xt)
                        .map_err(|e| CoreError::Substrate(e.to_string()))?;
                    let w = m.weight as f64;
                    total += w;
                    for (s, v) in sum.iter_mut().zip(p.iter()) {
                        *s += w * v;
                    }
                }
                for s in &mut sum {
                    *s /= total;
                }
                Ok(sum)
            }
        }
    }

    /// Total bag size (sum of member weights).
    pub fn bag_size(&self) -> usize {
        self.members.iter().map(|m| m.weight).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spaces::{SpaceDef, SpaceTier};
    use volcanoml_data::synthetic::{make_classification, ClassificationSpec};
    use volcanoml_data::train_test_split;

    fn setup() -> (Evaluator, Dataset, Dataset) {
        let d = make_classification(
            &ClassificationSpec {
                n_samples: 280,
                n_features: 8,
                n_informative: 5,
                n_redundant: 0,
                n_classes: 2,
                class_sep: 1.2,
                flip_y: 0.05,
                weights: Vec::new(),
            },
            21,
        );
        let (train, valid) = train_test_split(&d, 0.3, 1).unwrap();
        let space = SpaceDef::tiered(volcanoml_data::Task::Classification, SpaceTier::Small);
        let ev = Evaluator::new(space, &train, Metric::BalancedAccuracy, 0).unwrap();
        (ev, train, valid)
    }

    fn candidates(ev: &Evaluator) -> Vec<(Assignment, f64)> {
        // Three default pipelines with different algorithms.
        (0..3)
            .map(|i| {
                let mut a = ev.space().defaults();
                a.insert("algorithm".to_string(), i as f64);
                (a, 0.2 + i as f64 * 0.01)
            })
            .collect()
    }

    #[test]
    fn ensemble_builds_and_predicts() {
        let (ev, train, valid) = setup();
        let cands = candidates(&ev);
        let ens =
            Ensemble::select(&ev, &cands, &train, &valid, Metric::BalancedAccuracy, 3, 6).unwrap();
        assert!(!ens.members.is_empty());
        assert_eq!(ens.bag_size(), 6);
        let preds = ens.predict(&valid.x).unwrap();
        let acc = volcanoml_data::metrics::balanced_accuracy(&valid.y, &preds);
        assert!(acc > 0.7, "ensemble balanced accuracy {acc}");
    }

    #[test]
    fn ensemble_not_much_worse_than_best_member() {
        let (ev, train, valid) = setup();
        let cands = candidates(&ev);
        let ens =
            Ensemble::select(&ev, &cands, &train, &valid, Metric::BalancedAccuracy, 3, 8).unwrap();
        // Best single member on the validation set.
        let mut best_single = f64::INFINITY;
        for (a, _) in &cands {
            let (p, m) = ev.refit(a, &train).unwrap();
            let xv = p.transform(&valid.x).unwrap();
            let preds = m.predict(&xv).unwrap();
            best_single = best_single.min(Metric::BalancedAccuracy.loss(&valid.y, &preds));
        }
        let ens_preds = ens.predict(&valid.x).unwrap();
        let ens_loss = Metric::BalancedAccuracy.loss(&valid.y, &ens_preds);
        // Greedy selection optimizes this very quantity; tiny tolerance for
        // the averaged-probability vs majority-argmax difference.
        assert!(ens_loss <= best_single + 0.05, "{ens_loss} vs {best_single}");
    }

    /// NaN injection: candidates with NaN validation losses must sort last
    /// under `total_cmp` and never evict finite candidates from the member
    /// shortlist (with `partial_cmp(..).unwrap_or(Equal)` a NaN-first input
    /// order survived the sort untouched).
    #[test]
    fn nan_loss_candidates_never_evict_finite_ones() {
        let (ev, train, valid) = setup();
        // NaN candidates FIRST so a non-total sort would keep them ahead.
        let mut cands: Vec<(Assignment, f64)> = (0..2)
            .map(|i| {
                let mut a = ev.space().defaults();
                a.insert("algorithm".to_string(), i as f64);
                (a, f64::NAN)
            })
            .collect();
        let mut good = ev.space().defaults();
        good.insert("algorithm".to_string(), 2.0);
        cands.push((good.clone(), 0.2));
        let ens =
            Ensemble::select(&ev, &cands, &train, &valid, Metric::BalancedAccuracy, 1, 4).unwrap();
        // max_members=1: the shortlist holds exactly the finite-loss
        // candidate.
        assert_eq!(ens.members.len(), 1);
        assert_eq!(
            ens.members[0].assignment.get("algorithm"),
            good.get("algorithm"),
            "NaN candidate evicted the finite one"
        );
    }

    #[test]
    fn empty_candidates_error() {
        let (ev, train, valid) = setup();
        assert!(
            Ensemble::select(&ev, &[], &train, &valid, Metric::BalancedAccuracy, 3, 4).is_err()
        );
    }
}
