//! Bitwise-stable study-state snapshots for crash-resume verification.
//!
//! A [`StudyState`] captures everything that determines a search's future
//! scheduling decisions: the evaluator's observed-work multiset, every
//! block's incumbent/trajectory/bandit occupancy, and every engine's
//! scheduler internals (bracket queues, in-flight sets, rung results). All
//! floats are rendered as `f64::to_bits` hex words, so two snapshots are
//! equal iff the underlying states are *bitwise* equal.
//!
//! The crash-resume contract this verifies: VolcanoML's schedules are
//! deterministic functions of the seed and the *observed trial outcomes* —
//! losses always, and in cost-aware mode the journaled wall-clock costs
//! too (EI-per-second acquisition, loss-per-second promotion). Resuming a
//! run by re-driving the same plan while answering journaled trials from
//! the replay table must land the tree in exactly the interrupted run's
//! state; replay answers both coordinates bitwise (cached trials resolve
//! to their memoized true cost, not the journal's cost-0 accounting row),
//! so the contract holds for cost-aware studies as well. The resume
//! property tests assert `capture` of a fully-replayed run equals `capture`
//! of the uninterrupted run, line for line.

use crate::block::BuildingBlock;
use crate::evaluator::Evaluator;

/// A canonical snapshot of a search's scheduling-relevant state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StudyState {
    /// Canonical snapshot lines: evaluator lines first, then the block
    /// tree's lines in a deterministic pre-order walk.
    pub lines: Vec<String>,
}

impl StudyState {
    /// Captures the state of a block tree and its evaluator.
    pub fn capture(root: &dyn BuildingBlock, evaluator: &Evaluator) -> StudyState {
        let mut lines = Vec::new();
        evaluator.capture_state(&mut lines);
        root.capture_state("plan", &mut lines);
        StudyState { lines }
    }

    /// The snapshot as one newline-joined string (for dumps and diffs).
    pub fn render(&self) -> String {
        self.lines.join("\n")
    }

    /// Human-readable first divergence between two snapshots, or `None`
    /// when they are identical — what a failing resume test prints.
    pub fn diff(&self, other: &StudyState) -> Option<String> {
        let n = self.lines.len().max(other.lines.len());
        for i in 0..n {
            let a = self.lines.get(i).map(String::as_str);
            let b = other.lines.get(i).map(String::as_str);
            if a != b {
                return Some(format!(
                    "line {i}:\n  left:  {}\n  right: {}",
                    a.unwrap_or("<missing>"),
                    b.unwrap_or("<missing>")
                ));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_reports_first_divergence() {
        let a = StudyState {
            lines: vec!["x=1".into(), "y=2".into()],
        };
        let b = StudyState {
            lines: vec!["x=1".into(), "y=3".into()],
        };
        assert!(a.diff(&a).is_none());
        let d = a.diff(&b).expect("differs");
        assert!(d.contains("line 1"), "{d}");
        assert!(d.contains("y=2") && d.contains("y=3"), "{d}");
        let c = StudyState {
            lines: vec!["x=1".into()],
        };
        assert!(a.diff(&c).expect("differs").contains("<missing>"));
    }
}
