//! Expected-utility (EU) intervals and expected-utility-improvement (EUI)
//! estimates from best-so-far loss trajectories.
//!
//! The conditioning block eliminates arms using EU intervals in the style of
//! rising bandits (Li et al., AAAI 2020): each arm's best-so-far curve is a
//! non-increasing loss sequence whose per-step improvements decay; the
//! *pessimistic* bound is the current best (an arm can always keep its
//! incumbent) and the *optimistic* bound extrapolates the decaying
//! improvements `K` steps ahead. The alternating block schedules by EUI — the
//! mean of recent observed improvements (rotting bandits, Levine et al.).

/// A loss interval `[optimistic, pessimistic]` for an arm given more budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossInterval {
    /// Best loss the arm could plausibly reach with `K` more steps.
    pub optimistic: f64,
    /// Loss the arm is guaranteed not to exceed (its current best).
    pub pessimistic: f64,
}

impl LossInterval {
    /// An uninformative interval (arm not yet evaluated).
    pub fn unknown() -> LossInterval {
        LossInterval {
            optimistic: 0.0,
            pessimistic: f64::INFINITY,
        }
    }

    /// `self` is dominated when even its optimistic outcome is worse than
    /// the other arm's guaranteed outcome.
    pub fn dominated_by(&self, other: &LossInterval) -> bool {
        self.optimistic > other.pessimistic
    }
}

/// Per-step improvements of a non-increasing best-so-far trajectory.
fn improvements(trajectory: &[f64]) -> Vec<f64> {
    trajectory
        .windows(2)
        .map(|w| (w[0] - w[1]).max(0.0))
        .collect()
}

/// Rising-bandit EU interval from a best-so-far trajectory, looking `k`
/// steps ahead. `floor` is the smallest achievable loss (0 for bounded
/// metrics such as 1 − balanced accuracy).
pub fn eu_interval(trajectory: &[f64], k: usize, floor: f64) -> LossInterval {
    let Some(&current) = trajectory.last() else {
        return LossInterval::unknown();
    };
    if trajectory.len() < 3 {
        // Too little history: optimistic bound stays at the floor, which
        // protects young arms from premature elimination.
        return LossInterval {
            optimistic: floor,
            pessimistic: current,
        };
    }
    let imps = improvements(trajectory);
    // Estimate the improvement level and its decay from the two halves of
    // the recent window.
    let window = imps.len().min(8);
    let recent = &imps[imps.len() - window..];
    let half = window / 2;
    let early: f64 = recent[..half].iter().sum::<f64>() / half.max(1) as f64;
    let late: f64 = recent[half..].iter().sum::<f64>() / (window - half).max(1) as f64;
    let decay = if early > 1e-12 {
        (late / early).clamp(0.0, 1.0)
    } else if late > 1e-12 {
        1.0
    } else {
        0.0
    };
    // Geometric extrapolation of future improvements:
    // Σ_{i=1..k} late · decay^i  ≤  late · decay / (1 − decay).
    let future = if decay >= 1.0 - 1e-9 {
        late * k as f64
    } else {
        let geo = decay * (1.0 - decay.powi(k as i32)) / (1.0 - decay);
        late * geo
    };
    LossInterval {
        optimistic: (current - future).max(floor),
        pessimistic: current,
    }
}

/// Rotting-bandit EUI: the mean of the last `window` observed improvements
/// of the best-so-far trajectory. Arms with no history get `INFINITY` so
/// they are tried first.
pub fn eui(trajectory: &[f64], window: usize) -> f64 {
    if trajectory.len() < 2 {
        return f64::INFINITY;
    }
    let imps = improvements(trajectory);
    let w = window.clamp(1, imps.len());
    imps[imps.len() - w..].iter().sum::<f64>() / w as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_interval_never_dominates() {
        let unknown = LossInterval::unknown();
        let strong = LossInterval {
            optimistic: 0.1,
            pessimistic: 0.2,
        };
        assert!(!unknown.dominated_by(&strong));
        assert!(!strong.dominated_by(&unknown));
    }

    #[test]
    fn dominance_requires_disjoint_intervals() {
        let good = LossInterval {
            optimistic: 0.05,
            pessimistic: 0.1,
        };
        let bad = LossInterval {
            optimistic: 0.3,
            pessimistic: 0.5,
        };
        assert!(bad.dominated_by(&good));
        assert!(!good.dominated_by(&bad));
        let overlapping = LossInterval {
            optimistic: 0.08,
            pessimistic: 0.4,
        };
        assert!(!overlapping.dominated_by(&good));
    }

    #[test]
    fn converged_arm_has_tight_interval() {
        // Flat trajectory -> no expected future improvement.
        let traj = vec![0.3, 0.3, 0.3, 0.3, 0.3, 0.3];
        let iv = eu_interval(&traj, 10, 0.0);
        assert!((iv.optimistic - 0.3).abs() < 1e-9);
        assert_eq!(iv.pessimistic, 0.3);
    }

    #[test]
    fn improving_arm_has_wider_interval() {
        let improving = vec![0.9, 0.7, 0.55, 0.45, 0.38, 0.33];
        let iv = eu_interval(&improving, 10, 0.0);
        assert!(iv.optimistic < 0.33);
        assert!(iv.optimistic >= 0.0);
        assert_eq!(iv.pessimistic, 0.33);
    }

    #[test]
    fn floor_caps_optimism() {
        let improving = vec![0.5, 0.4, 0.3, 0.2, 0.1];
        let iv = eu_interval(&improving, 100, 0.05);
        assert!(iv.optimistic >= 0.05);
    }

    #[test]
    fn short_history_is_maximally_optimistic() {
        let iv = eu_interval(&[0.5, 0.4], 10, 0.0);
        assert_eq!(iv.optimistic, 0.0);
        assert_eq!(iv.pessimistic, 0.4);
    }

    #[test]
    fn decaying_improvements_extrapolate_less_than_linear() {
        // Strong decay: late improvements tiny -> future gain tiny.
        let decaying = vec![0.5, 0.3, 0.2, 0.15, 0.13, 0.125, 0.124, 0.1235];
        let iv = eu_interval(&decaying, 10, 0.0);
        assert!(iv.optimistic > 0.05, "over-optimistic: {}", iv.optimistic);
    }

    #[test]
    fn eui_prefers_untested_arms() {
        assert_eq!(eui(&[], 4), f64::INFINITY);
        assert_eq!(eui(&[0.5], 4), f64::INFINITY);
    }

    #[test]
    fn eui_reflects_recent_improvements() {
        let hot = vec![0.9, 0.7, 0.5, 0.3];
        let cold = vec![0.35, 0.35, 0.35, 0.35];
        assert!(eui(&hot, 3) > eui(&cold, 3));
        assert_eq!(eui(&cold, 3), 0.0);
    }

    #[test]
    fn eui_window_limits_lookback() {
        // Early improvements outside the window are ignored.
        let traj = vec![0.9, 0.5, 0.5, 0.5, 0.5];
        assert_eq!(eui(&traj, 2), 0.0);
        assert!(eui(&traj, 4) > 0.0);
    }
}
