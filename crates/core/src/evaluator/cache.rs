//! The bounded result cache: `(assignment, fidelity)` → `(loss, cost)`.

use std::collections::{HashMap, VecDeque};

/// FIFO-bounded evaluation cache with hit/miss accounting.
pub(super) struct BoundedCache {
    pub(super) map: HashMap<(u64, u64), (f64, f64)>,
    order: VecDeque<(u64, u64)>,
    capacity: usize,
    pub(super) hits: u64,
    pub(super) misses: u64,
}

impl BoundedCache {
    pub(super) fn new(capacity: usize) -> BoundedCache {
        BoundedCache {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
        }
    }

    pub(super) fn get(&mut self, key: &(u64, u64)) -> Option<(f64, f64)> {
        match self.map.get(key).copied() {
            Some(v) => {
                self.hits += 1;
                Some(v)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    pub(super) fn insert(&mut self, key: (u64, u64), value: (f64, f64)) {
        if self.map.insert(key, value).is_none() {
            self.order.push_back(key);
            while self.map.len() > self.capacity {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                } else {
                    break;
                }
            }
        }
    }

    pub(super) fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        while self.map.len() > self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
            } else {
                break;
            }
        }
    }
}
