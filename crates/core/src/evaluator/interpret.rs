//! Assignment interpretation: hashing, parsing into sub-assignments, and
//! standalone refitting.

use crate::spaces::SpaceDef;
use crate::{CoreError, Result};
use std::collections::HashMap;
use volcanoml_data::Dataset;
use volcanoml_fe::FePipeline;
use volcanoml_models::{AlgorithmKind, Estimator, Model};

/// Stable hash of an assignment (order-insensitive).
pub(crate) fn assignment_key(map: &HashMap<String, f64>) -> u64 {
    let mut entries: Vec<(&String, &f64)> = map.iter().collect();
    entries.sort_by(|a, b| a.0.cmp(b.0));
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for (k, v) in entries {
        for byte in k.as_bytes() {
            h ^= *byte as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^= v.to_bits();
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// An assignment split into `(algorithm, model-params, fe-params)`.
pub type ParsedAssignment = (AlgorithmKind, HashMap<String, f64>, HashMap<String, f64>);

/// Splits an assignment into `(algorithm, model-params, fe-params)` against
/// a space definition. The single source of truth for assignment
/// interpretation, shared by [`super::Evaluator::evaluate`] and
/// [`refit_assignment`].
pub fn parse_assignment(
    space: &SpaceDef,
    assignment: &HashMap<String, f64>,
) -> Result<ParsedAssignment> {
    let alg_idx = assignment
        .get("algorithm")
        .copied()
        .unwrap_or(0.0)
        .round()
        .max(0.0) as usize;
    let alg = *space
        .algorithms
        .get(alg_idx)
        .ok_or_else(|| CoreError::Invalid(format!("algorithm index {alg_idx} out of range")))?;
    let hp_prefix = format!("alg:{}:", alg.name());
    let mut model_params = HashMap::new();
    let mut fe_params = HashMap::new();
    for (k, v) in assignment {
        if let Some(rest) = k.strip_prefix(&hp_prefix) {
            model_params.insert(rest.to_string(), *v);
        } else if let Some(rest) = k.strip_prefix("fe:") {
            fe_params.insert(rest.to_string(), *v);
        }
    }
    Ok((alg, model_params, fe_params))
}

/// Trains a pipeline + model from an assignment on a complete dataset —
/// the standalone variant of [`super::Evaluator::refit`] used by baselines
/// and benches that do not hold an evaluator.
pub fn refit_assignment(
    space: &SpaceDef,
    assignment: &HashMap<String, f64>,
    data: &Dataset,
    seed: u64,
) -> Result<(FePipeline, Model)> {
    let (alg, model_params, fe_params) = parse_assignment(space, assignment)?;
    let mut pipeline = FePipeline::from_values(
        space.task,
        &data.feature_types,
        &fe_params,
        &space.fe_options,
        seed,
    )
    .map_err(|e| CoreError::Substrate(e.to_string()))?;
    let (x, y) = pipeline
        .fit_transform_train(&data.x, &data.y)
        .map_err(|e| CoreError::Substrate(e.to_string()))?;
    let mut model = alg.build(&model_params, seed);
    model
        .fit(&x, &y)
        .map_err(|e| CoreError::Substrate(e.to_string()))?;
    Ok((pipeline, model))
}
