//! The pipeline evaluator: turns a full variable assignment into a trained
//! FE pipeline + model, returning the validation loss.
//!
//! This is the expensive black-box `f(x; D)` of the paper. The evaluator
//! owns an internal train/validation split of the search data, a bounded
//! result cache keyed on (assignment, fidelity), cost accounting (measured
//! wall time), and the subsampling fidelity axis used by multi-fidelity
//! engines and by blocks that probe on data subsets.
//!
//! Trial data travels as zero-copy [`DatasetView`]s: the search data lives
//! behind one shared `Arc<Dataset>`, fidelity subsampling and CV folds are
//! row-index views over it, and feature rows are materialized (one pooled
//! gather) only when the FE cache misses — see [`validate`]'s module docs.
//!
//! All mutable state (cache, counters, log) lives behind an `Arc` so that
//! [`Evaluator::clone`] yields a *shared handle*: clones see the same cache
//! and log, and [`Evaluator::evaluate`] takes `&self`. That is what lets
//! [`Evaluator::evaluate_batch`] ship trials to an [`ExecPool`] of worker
//! threads — which all share the one `Arc<Dataset>` instead of per-handle
//! copies. Every trial additionally runs under `catch_unwind`, so a
//! panicking pipeline yields `loss = INFINITY` instead of tearing down the
//! search — with or without a pool.

mod cache;
mod fe_cache;
mod interpret;
mod validate;

pub use interpret::{parse_assignment, refit_assignment, ParsedAssignment};
pub use validate::ValidationStrategy;

/// Stable, order-insensitive digest of a full assignment — the value
/// journaled (as 16 hex digits) and traced with every trial, and the key
/// the crash-resume replay table matches journal rows back to trials with.
pub fn assignment_digest(assignment: &std::collections::HashMap<String, f64>) -> u64 {
    interpret::assignment_key(assignment)
}

use crate::spaces::SpaceDef;
use crate::{CoreError, Result};
use cache::BoundedCache;
use fe_cache::FeCache;
use interpret::assignment_key;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use volcanoml_data::{Dataset, DatasetView, Metric};
use volcanoml_exec::{current_worker, ExecPool, Journal, TrialRecord, TrialStatus};
use volcanoml_fe::FePipeline;
use volcanoml_models::Model;
use volcanoml_obs::{current_arm, MetricsRegistry, Tracer, TrialInfo};

/// Default bound on the evaluator's result cache.
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// Default bound on the cross-trial FE-transform cache. Entries hold full
/// transformed matrices, so the bound is much tighter than the result
/// cache's.
pub const DEFAULT_FE_CACHE_CAPACITY: usize = 64;

/// One entry of the evaluator's chronological log.
#[derive(Debug, Clone)]
pub struct LogEntry {
    /// The evaluated assignment.
    pub assignment: HashMap<String, f64>,
    /// Fidelity the evaluation ran at.
    pub fidelity: f64,
    /// Observed loss. Under a cost-sensitive [`Objective`] this is the
    /// *scalarized* value (validation loss + weighted inference latency) —
    /// the number every engine, journal row, and resume replay sees.
    pub loss: f64,
    /// Wall-clock cost in seconds.
    pub cost: f64,
    /// Measured per-row inference seconds on the validation split (0.0 for
    /// failed trials and journal-replayed rows, where the decomposition is
    /// not recoverable). Lets reports extract a `(loss, inference_cost)`
    /// Pareto front without unscalarizing.
    pub infer_cost: f64,
}

/// Result of one pipeline evaluation.
#[derive(Debug, Clone, Copy)]
pub struct EvalOutcome {
    /// Validation loss (lower is better; `INFINITY` on training failure).
    pub loss: f64,
    /// Wall-clock cost in seconds.
    pub cost: f64,
    /// Whether the result came from the cache.
    pub cached: bool,
    /// Whether the fitted FE transform was reused from the cross-trial FE
    /// cache (always `false` on a full result-cache hit, where no FE work
    /// happens at all).
    pub fe_cached: bool,
    /// Whether the trial panicked (caught; loss is `INFINITY`).
    pub panicked: bool,
    /// Whether the trial exceeded a pool deadline and was abandoned.
    pub timed_out: bool,
    /// Whether the result was answered from a crash-resume replay table
    /// (a journaled outcome from the interrupted run) rather than a fresh
    /// evaluation or a live cache hit. Replayed trials are never journaled
    /// again, so resume produces no duplicate trial ids.
    pub replayed: bool,
}

impl EvalOutcome {
    fn failed(timed_out: bool, panicked: bool) -> EvalOutcome {
        EvalOutcome {
            loss: f64::INFINITY,
            cost: 0.0,
            cached: false,
            fe_cached: false,
            panicked,
            timed_out,
            replayed: false,
        }
    }
}

/// Multi-fidelity scheduling attribution for a trial: the rung index in the
/// issuing engine's full η-ladder and the stable id of the bracket that
/// scheduled it. Journaled and traced verbatim (`rung`/`bracket` fields) so
/// the report can render rung occupancy; [`TrialTag::NONE`] (`-1`/`-1`)
/// marks trials outside any bracket schedule (full-fidelity engines, warm
/// starts, seed evaluations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialTag {
    /// Rung index in the engine's full ladder, `-1` when not applicable.
    pub rung: i64,
    /// Issuing bracket's stable id, `-1` when not applicable.
    pub bracket: i64,
}

impl TrialTag {
    /// "Not bracket-scheduled" sentinel.
    pub const NONE: TrialTag = TrialTag {
        rung: -1,
        bracket: -1,
    };
}

impl Default for TrialTag {
    fn default() -> Self {
        TrialTag::NONE
    }
}

/// A fault injected into an evaluation — used by crash-isolation and
/// deadline tests to simulate misbehaving training code.
#[derive(Debug, Clone, Copy)]
pub enum Fault {
    /// Panic inside the trial (exercises `catch_unwind` isolation).
    Panic,
    /// Sleep for the given duration before evaluating (exercises per-trial
    /// deadlines on the pool).
    Stall(Duration),
}

/// Hook deciding whether a given `(assignment, fidelity)` trial should
/// misbehave. `None` means evaluate normally.
pub type FaultHook = Arc<dyn Fn(&HashMap<String, f64>, f64) -> Option<Fault> + Send + Sync>;

/// Mutable evaluator state, shared across handles behind one mutex. The
/// lock is only held for bookkeeping — never across a pipeline fit — so
/// worker threads serialize on microseconds, not on training time.
struct EvalState {
    cache: BoundedCache,
    fe_cache: FeCache,
    /// Per-fidelity CV fold plans: `fidelity.to_bits()` → the fold's
    /// `(train, valid)` index views, computed once and reused by every
    /// trial at that fidelity. Views make this affordable — each plan is
    /// index arrays only (`k × n_samples` usizes), where caching owned
    /// fold subsets would pin `k` extra copies of the dataset. Bounded in
    /// practice by the handful of distinct fidelities a search schedules.
    fold_plans: HashMap<u64, Arc<Vec<(DatasetView, DatasetView)>>>,
    evaluations: usize,
    total_cost: f64,
    /// Cache hits since the last non-cached evaluation (replayed rows
    /// mirror their original kind). Small spaces saturate: once every
    /// distinct config is cached, an engine drawing against a
    /// `max_evaluations` budget that only counts fresh trials would spin
    /// forever — the budget check reads this to detect saturation.
    consecutive_cached: usize,
    log: Vec<LogEntry>,
    /// Crash-resume replay table: `(assignment digest, fidelity bits)` →
    /// the journaled outcomes of the interrupted run, in journal order.
    /// [`Evaluator::evaluate`] consumes matching rows from here *before*
    /// touching the cache, so a resumed search re-observes the interrupted
    /// run's exact losses/costs without re-training or re-journaling.
    replay: HashMap<(u64, u64), std::collections::VecDeque<ReplayRow>>,
}

/// One journaled outcome queued for crash-resume replay.
struct ReplayRow {
    loss: f64,
    cost: f64,
    cached: bool,
    fe_cached: bool,
    panicked: bool,
    timed_out: bool,
}

struct EvalShared {
    space: SpaceDef,
    metric: Metric,
    strategy: ValidationStrategy,
    /// Training-side view: holdout wraps its materialized train split as a
    /// full view; CV is a full view over the whole search data.
    fit_data: DatasetView,
    /// Validation-side view: holdout's materialized validation split; under
    /// CV an *empty* view over the same storage (folds are drawn per
    /// evaluation).
    valid_data: DatasetView,
    seed: u64,
    /// Threads handed to models that support intra-fit parallelism (tree
    /// ensembles); injected as an `n_jobs` parameter at build time. Model
    /// fits are thread-count independent, so this never affects losses.
    model_n_jobs: AtomicUsize,
    /// When set, models that support single-precision feature storage
    /// (histogram forests) narrow to `f32` before binning; injected as an
    /// `f32_binning` parameter at build time. Losses may shift within f32
    /// rounding of the bin cut points.
    model_f32: AtomicBool,
    /// What trials minimize: plain validation loss, or a scalarized loss +
    /// inference-latency trade-off. Must be set before the first
    /// evaluation — the scalarized value is what gets cached, journaled,
    /// and observed, so switching mid-run would mix incomparable scales.
    objective: Mutex<crate::objective::Objective>,
    state: Mutex<EvalState>,
    journal: Mutex<Option<Arc<Journal>>>,
    /// Always present (disabled by default) so blocks can open spans
    /// unconditionally; only enabled tracers record anything.
    tracer: Mutex<Arc<Tracer>>,
    metrics: Mutex<Option<Arc<MetricsRegistry>>>,
    fault_hook: Mutex<Option<FaultHook>>,
}

/// The black-box objective for all building blocks. `Clone` is cheap and
/// yields a handle onto the *same* cache, log, and counters.
#[derive(Clone)]
pub struct Evaluator {
    shared: Arc<EvalShared>,
}

impl Evaluator {
    /// Creates an evaluator over the search data. An internal 75/25
    /// train/validation split is drawn with `seed`.
    pub fn new(space: SpaceDef, data: &Dataset, metric: Metric, seed: u64) -> Result<Evaluator> {
        Evaluator::with_strategy(space, data, metric, ValidationStrategy::default(), seed)
    }

    /// Creates an evaluator with an explicit validation strategy.
    pub fn with_strategy(
        space: SpaceDef,
        data: &Dataset,
        metric: Metric,
        strategy: ValidationStrategy,
        seed: u64,
    ) -> Result<Evaluator> {
        if !metric.applies_to(space.task) {
            return Err(CoreError::Invalid(format!(
                "metric {} does not apply to {:?}",
                metric.name(),
                space.task
            )));
        }
        if data.task != space.task {
            return Err(CoreError::Invalid(
                "dataset task does not match space task".into(),
            ));
        }
        let (fit_data, valid_data) = validate::build_validation_views(strategy, data, seed)?;
        Ok(Evaluator {
            shared: Arc::new(EvalShared {
                space,
                metric,
                strategy,
                fit_data,
                valid_data,
                seed,
                model_n_jobs: AtomicUsize::new(1),
                model_f32: AtomicBool::new(false),
                objective: Mutex::new(crate::objective::Objective::Loss),
                state: Mutex::new(EvalState {
                    cache: BoundedCache::new(DEFAULT_CACHE_CAPACITY),
                    fe_cache: FeCache::new(DEFAULT_FE_CACHE_CAPACITY),
                    fold_plans: HashMap::new(),
                    evaluations: 0,
                    total_cost: 0.0,
                    consecutive_cached: 0,
                    log: Vec::new(),
                    replay: HashMap::new(),
                }),
                journal: Mutex::new(None),
                tracer: Mutex::new(Arc::new(Tracer::disabled())),
                metrics: Mutex::new(None),
                fault_hook: Mutex::new(None),
            }),
        })
    }

    /// The space definition this evaluator interprets.
    pub fn space(&self) -> &SpaceDef {
        &self.shared.space
    }

    /// The evaluation metric.
    pub fn metric(&self) -> Metric {
        self.shared.metric
    }

    /// Total number of (non-cached) evaluations performed.
    pub fn evaluations(&self) -> usize {
        self.state().evaluations
    }

    /// Cache hits since the last non-cached evaluation. A persistently
    /// large value means the search keeps re-drawing already-evaluated
    /// configs — on small spaces this signals budget saturation (there is
    /// nothing fresh left to draw), which [`crate::automl`] treats as
    /// out-of-budget instead of spinning forever.
    pub fn consecutive_cached(&self) -> usize {
        self.state().consecutive_cached
    }

    /// Sets the search objective. Must be called before the first
    /// evaluation: the scalarized value is what gets cached, journaled,
    /// and fed to the engines.
    pub fn set_objective(&self, objective: crate::objective::Objective) {
        *self.shared.objective.lock().expect("objective poisoned") = objective;
    }

    /// The active search objective.
    pub fn objective(&self) -> crate::objective::Objective {
        *self.shared.objective.lock().expect("objective poisoned")
    }

    /// Total wall-clock seconds spent in non-cached evaluations.
    pub fn total_cost(&self) -> f64 {
        self.state().total_cost
    }

    /// Snapshot of the chronological evaluation log — consumed by the
    /// AutoML report, ensemble selection, and meta-learning.
    pub fn log(&self) -> Vec<LogEntry> {
        self.state().log.clone()
    }

    /// Attaches a trial journal; every evaluation from now on appends one
    /// JSONL record.
    pub fn attach_journal(&self, journal: Arc<Journal>) {
        *self.shared.journal.lock().expect("journal slot poisoned") = Some(journal);
    }

    /// The attached journal, if any.
    pub fn journal(&self) -> Option<Arc<Journal>> {
        self.shared
            .journal
            .lock()
            .expect("journal slot poisoned")
            .clone()
    }

    /// Attaches a span tracer; every trial from now on emits one
    /// `kind:"trial"` span (parented to the pull span issuing it) whose
    /// `trial` id matches the journal record.
    pub fn set_tracer(&self, tracer: Arc<Tracer>) {
        *self.shared.tracer.lock().expect("tracer slot poisoned") = tracer;
    }

    /// The attached tracer (a disabled one when none was attached — blocks
    /// open spans through it unconditionally).
    pub fn tracer(&self) -> Arc<Tracer> {
        self.shared
            .tracer
            .lock()
            .expect("tracer slot poisoned")
            .clone()
    }

    /// Attaches a metrics registry; per-trial counters, cost histograms,
    /// and per-worker busy-time gauges are recorded into it.
    pub fn set_metrics(&self, metrics: Arc<MetricsRegistry>) {
        *self.shared.metrics.lock().expect("metrics slot poisoned") = Some(metrics);
    }

    /// The attached metrics registry, if any.
    pub fn metrics(&self) -> Option<Arc<MetricsRegistry>> {
        self.shared
            .metrics
            .lock()
            .expect("metrics slot poisoned")
            .clone()
    }

    /// Samples the cache hit/miss counters and run totals into a metrics
    /// registry (typically once, at end of run).
    pub fn sample_cache_metrics(&self, m: &MetricsRegistry) {
        let s = self.state();
        m.inc_counter("cache.result.hits", s.cache.hits);
        m.inc_counter("cache.result.misses", s.cache.misses);
        m.inc_counter("cache.fe.hits", s.fe_cache.hits);
        m.inc_counter("cache.fe.misses", s.fe_cache.misses);
        m.set_gauge("run.evaluations", s.evaluations as f64);
        m.set_gauge("run.total_cost_s", s.total_cost);
    }

    /// Raw cache counters as `(result_hits, result_misses, fe_hits,
    /// fe_misses)` — surfaced in [`crate::AutoMlReport`] and the CLI summary.
    pub fn cache_stats(&self) -> (u64, u64, u64, u64) {
        let s = self.state();
        (s.cache.hits, s.cache.misses, s.fe_cache.hits, s.fe_cache.misses)
    }

    /// Installs a fault-injection hook (testing/chaos only).
    pub fn set_fault_hook(&self, hook: FaultHook) {
        *self.shared.fault_hook.lock().expect("hook poisoned") = Some(hook);
    }

    /// Loads journaled trial records from an interrupted run into the
    /// crash-resume replay table. Because every engine's schedule is a
    /// deterministic function of its seed and the observed losses, re-driving
    /// the search re-requests exactly the journaled trials, in order per
    /// `(assignment, fidelity)` key — each one is answered instantly from
    /// this table (bitwise-identical loss/cost, no re-training, no
    /// re-journaling) until the table drains and fresh evaluation resumes.
    ///
    /// Rows synthesized for abandoned trials (timeouts, escaped panics)
    /// replay as failures without counting an evaluation, matching the
    /// original run's accounting.
    pub fn attach_replay(&self, records: &[TrialRecord]) {
        let mut state = self.state();
        for rec in records {
            let Ok(digest) = u64::from_str_radix(&rec.digest, 16) else {
                continue; // unknown digest: cannot be matched to a trial
            };
            state
                .replay
                .entry((digest, rec.fidelity.to_bits()))
                .or_default()
                .push_back(ReplayRow {
                    loss: rec.loss,
                    cost: rec.cost,
                    cached: rec.cached,
                    fe_cached: rec.fe_cached,
                    panicked: rec.panicked,
                    timed_out: rec.timed_out,
                });
        }
    }

    /// Number of journaled outcomes still queued for replay (0 once the
    /// resumed search has caught up with the interrupted run).
    pub fn pending_replays(&self) -> usize {
        self.state().replay.values().map(|q| q.len()).sum()
    }

    /// Appends canonical, bitwise-stable lines describing the evaluator's
    /// observed work to `out` — the evaluator's contribution to a
    /// `StudyState` snapshot. The log multiset is sorted so serial and
    /// pooled runs of the same schedule dump identically.
    pub fn capture_state(&self, out: &mut Vec<String>) {
        let s = self.state();
        out.push(format!("evaluator.evaluations={}", s.evaluations));
        let mut rows: Vec<String> = s
            .log
            .iter()
            .map(|e| {
                format!(
                    "evaluator.log digest={:016x} fidelity={:016x} loss={:016x} cost={:016x}",
                    assignment_key(&e.assignment),
                    e.fidelity.to_bits(),
                    e.loss.to_bits(),
                    e.cost.to_bits(),
                )
            })
            .collect();
        rows.sort();
        out.append(&mut rows);
    }

    fn state(&self) -> std::sync::MutexGuard<'_, EvalState> {
        self.shared.state.lock().expect("evaluator state poisoned")
    }

    /// Extracts `(algorithm, model-params, fe-params)` from an assignment.
    fn interpret(&self, assignment: &HashMap<String, f64>) -> Result<ParsedAssignment> {
        parse_assignment(&self.shared.space, assignment)
    }

    /// Records one completed trial to every attached sink: the journal
    /// (arm + digest join keys included), the span tracer (one
    /// `kind:"trial"` span parented to the current pull), and the metrics
    /// registry. Runs on the coordinator thread so the obs span stack
    /// attributes the trial to the block/arm that issued it. `queue_wait_s`
    /// is set for pooled trials only (dispatch-to-start latency).
    #[allow(clippy::too_many_arguments)]
    fn record_trial(
        &self,
        journal: Option<&Arc<Journal>>,
        digest: u64,
        worker: usize,
        start_s: f64,
        end_s: f64,
        fidelity: f64,
        tag: TrialTag,
        outcome: &EvalOutcome,
        queue_wait_s: Option<f64>,
    ) {
        let tracer = self.tracer();
        let metrics = self.metrics();
        if journal.is_none() && !tracer.enabled() && !tracer.has_bus() && metrics.is_none() {
            return;
        }
        // Self-overhead accounting: everything below (journal append,
        // trace emit, bus publish, metric updates) is observability work,
        // timed into its own histogram so the layer can prove it stays
        // well under 1% of trial wall time.
        let obs_start = std::time::Instant::now();
        let trial_id = match journal {
            Some(j) => j.next_trial_id(),
            None => tracer.next_trial_id(),
        };
        let cost = if outcome.cached { 0.0 } else { outcome.cost };
        if let Some(j) = journal {
            j.record(TrialRecord {
                trial_id,
                worker,
                start_s,
                end_s,
                fidelity,
                rung: tag.rung,
                bracket: tag.bracket,
                loss: outcome.loss,
                cost,
                cached: outcome.cached,
                fe_cached: outcome.fe_cached,
                panicked: outcome.panicked,
                timed_out: outcome.timed_out,
                arm: current_arm(),
                digest: format!("{digest:016x}"),
            });
        }
        {
            tracer.trial(&TrialInfo {
                trial_id,
                digest,
                worker,
                start_s,
                end_s,
                fidelity,
                rung: tag.rung,
                bracket: tag.bracket,
                loss: outcome.loss,
                cost,
                cached: outcome.cached,
                fe_cached: outcome.fe_cached,
                panicked: outcome.panicked,
                timed_out: outcome.timed_out,
            });
        }
        if let Some(m) = &metrics {
            m.inc_counter("trial.total", 1);
            if outcome.cached {
                m.inc_counter("trial.result_cache_hit", 1);
            }
            if outcome.fe_cached {
                m.inc_counter("trial.fe_cache_hit", 1);
            }
            if outcome.panicked {
                m.inc_counter("exec.panics", 1);
            }
            if outcome.timed_out {
                m.inc_counter("exec.timeouts", 1);
            }
            if !outcome.cached {
                m.observe("trial.cost_s", outcome.cost);
            }
            m.add_to_gauge(&format!("worker.{worker}.busy_s"), (end_s - start_s).max(0.0));
            if let Some(wait) = queue_wait_s {
                m.observe("exec.queue_wait_s", wait.max(0.0));
            }
            // Journal flush latency, drained from the journal's bounded
            // buffer (the journal itself stays metrics-agnostic).
            if let Some(j) = journal {
                for flush_s in j.take_flush_observations() {
                    m.observe_with("journal.flush_s", flush_s, &volcanoml_obs::metrics::FINE_BUCKETS);
                }
            }
            m.observe_with(
                "obs.self_overhead_s",
                obs_start.elapsed().as_secs_f64(),
                &volcanoml_obs::metrics::FINE_BUCKETS,
            );
        }
    }

    /// Evaluates an assignment at the given fidelity (training-set fraction
    /// in `(0, 1]`). Results are cached; failures and panics yield
    /// `loss = INFINITY`.
    pub fn evaluate(&self, assignment: &HashMap<String, f64>, fidelity: f64) -> EvalOutcome {
        self.evaluate_tagged(assignment, fidelity, TrialTag::NONE)
    }

    /// [`Evaluator::evaluate`] with multi-fidelity scheduling attribution:
    /// `tag` is journaled/traced as the trial's `rung`/`bracket`.
    pub fn evaluate_tagged(
        &self,
        assignment: &HashMap<String, f64>,
        fidelity: f64,
        tag: TrialTag,
    ) -> EvalOutcome {
        self.evaluate_inner(assignment, fidelity, true, tag)
    }

    /// Evaluates a batch of `(assignment, fidelity)` trials on a worker
    /// pool. Outcomes come back in submission order; a trial that exceeds
    /// the pool's deadline is reported as timed out with infinite loss (its
    /// abandoned computation may still land in the cache later, but never
    /// journals or double-counts).
    pub fn evaluate_batch(
        &self,
        pool: &ExecPool,
        trials: &[(HashMap<String, f64>, f64)],
    ) -> Vec<EvalOutcome> {
        let tagged: Vec<_> = trials
            .iter()
            .map(|(a, f)| (a.clone(), *f, TrialTag::NONE))
            .collect();
        self.evaluate_batch_tagged(pool, &tagged)
    }

    /// [`Evaluator::evaluate_batch`] with per-trial scheduling attribution
    /// (`rung`/`bracket` journal and trace fields).
    pub fn evaluate_batch_tagged(
        &self,
        pool: &ExecPool,
        trials: &[(HashMap<String, f64>, f64, TrialTag)],
    ) -> Vec<EvalOutcome> {
        let journal = self.journal();
        let batch_epoch = journal.as_ref().map_or(0.0, |j| j.elapsed_s());
        let jobs: Vec<_> = trials
            .iter()
            .cloned()
            .map(|(assignment, fidelity, _)| {
                let ev = self.clone();
                move || ev.evaluate_inner(&assignment, fidelity, false, TrialTag::NONE)
            })
            .collect();
        let runs = pool.run_batch(jobs);
        runs.into_iter()
            .zip(trials.iter())
            .map(|(run, (assignment, fidelity, tag))| {
                let outcome = match run.status {
                    TrialStatus::Done(out) => out,
                    TrialStatus::Panicked(_) => EvalOutcome::failed(false, true),
                    TrialStatus::TimedOut => EvalOutcome::failed(true, false),
                };
                // Replayed trials were journaled by the interrupted run;
                // journaling them again would duplicate their trial ids.
                if !outcome.replayed {
                    self.record_trial(
                        journal.as_ref(),
                        assignment_key(assignment),
                        run.worker,
                        batch_epoch + run.started_s,
                        batch_epoch + run.ended_s,
                        fidelity.clamp(0.01, 1.0),
                        *tag,
                        &outcome,
                        Some(run.started_s),
                    );
                }
                outcome
            })
            .collect()
    }

    /// The shared serial/batch evaluation path. When `journal_direct` is
    /// set (serial path) the record is appended here; the batch path
    /// journals from the pool's `TrialRun` instead, so abandoned (timed
    /// out) trials still get a record.
    fn evaluate_inner(
        &self,
        assignment: &HashMap<String, f64>,
        fidelity: f64,
        journal_direct: bool,
        tag: TrialTag,
    ) -> EvalOutcome {
        let fidelity = fidelity.clamp(0.01, 1.0);
        let key = (assignment_key(assignment), fidelity.to_bits());
        // Crash-resume replay comes *before* the cache: the replay queue for
        // a key holds the interrupted run's outcomes in journal order (first
        // fresh, later ones cache hits), and a live cache lookup must never
        // consume — or bypass — a row that belongs to an earlier journaled
        // trial.
        let replay = {
            let mut state = self.state();
            state.replay.get_mut(&key).and_then(|q| q.pop_front())
        };
        if let Some(row) = replay {
            return self.replay_outcome(assignment, fidelity, key, row);
        }
        let journal = if journal_direct { self.journal() } else { None };
        let cached = {
            let mut state = self.state();
            let hit = state.cache.get(&key);
            if hit.is_some() {
                state.consecutive_cached += 1;
            }
            hit
        };
        if let Some((loss, cost)) = cached {
            let outcome = EvalOutcome {
                loss,
                cost,
                cached: true,
                fe_cached: false,
                panicked: false,
                timed_out: false,
                replayed: false,
            };
            if journal_direct {
                let now = journal.as_ref().map_or(0.0, |j| j.elapsed_s());
                self.record_trial(
                    journal.as_ref(),
                    key.0,
                    current_worker().unwrap_or(0),
                    now,
                    now,
                    fidelity,
                    tag,
                    &outcome,
                    None,
                );
            }
            return outcome;
        }
        let fault = self
            .shared
            .fault_hook
            .lock()
            .expect("hook poisoned")
            .clone()
            .and_then(|hook| hook(assignment, fidelity));
        let start_s = journal.as_ref().map_or(0.0, |j| j.elapsed_s());
        let start = Instant::now();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            match fault {
                Some(Fault::Panic) => panic!("injected trial fault"),
                Some(Fault::Stall(d)) => std::thread::sleep(d),
                None => {}
            }
            self.evaluate_uncached(assignment, fidelity)
        }));
        let (raw_loss, fe_cached, infer_cost, panicked) = match caught {
            Ok(Ok((loss, fe_cached, infer_s))) => (loss, fe_cached, infer_s, false),
            Ok(Err(_)) => (f64::INFINITY, false, 0.0, false),
            Err(_) => (f64::INFINITY, false, 0.0, true),
        };
        // Scalarize before anything downstream sees the number: the cache,
        // the journal, and the engines all observe the same scalar, which
        // is what keeps cost-sensitive resume replay bitwise.
        let loss = self.objective().scalarize(raw_loss, infer_cost);
        let cost = start.elapsed().as_secs_f64();
        {
            let mut state = self.state();
            state.cache.insert(key, (loss, cost));
            state.evaluations += 1;
            state.total_cost += cost;
            state.consecutive_cached = 0;
            state.log.push(LogEntry {
                assignment: assignment.clone(),
                fidelity,
                loss,
                cost,
                infer_cost,
            });
        }
        let outcome = EvalOutcome {
            loss,
            cost,
            cached: false,
            fe_cached,
            panicked,
            timed_out: false,
            replayed: false,
        };
        if journal_direct {
            let end_s = journal.as_ref().map_or(start_s + cost, |j| j.elapsed_s());
            self.record_trial(
                journal.as_ref(),
                key.0,
                current_worker().unwrap_or(0),
                start_s,
                end_s,
                fidelity,
                tag,
                &outcome,
                None,
            );
        }
        outcome
    }

    /// Materializes one replay-table row as this trial's outcome,
    /// reproducing the interrupted run's accounting: a journaled fresh
    /// evaluation re-enters the cache/log/counters (even failures — the
    /// fresh path inserts unconditionally), a journaled cache hit counts
    /// nothing (the entry is already back in the cache from its fresh row),
    /// and a journaled abandoned trial (timeout, escaped panic — both
    /// synthesized outside `evaluate_inner` with zero cost) never reached
    /// the accounting path at all.
    ///
    /// Cached rows journal cost 0 (accounting convention: a hit spends no
    /// wall time), but the *live* run handed the engine the memoized true
    /// cost — so the replayed outcome recovers it from the cache entry the
    /// earlier fresh row re-inserted. Without this, every replayed hit
    /// would poison the cost surrogate with zero-cost observations and
    /// break the bitwise-resume guarantee for cost-aware studies.
    fn replay_outcome(
        &self,
        assignment: &HashMap<String, f64>,
        fidelity: f64,
        key: (u64, u64),
        row: ReplayRow,
    ) -> EvalOutcome {
        let abandoned = row.timed_out || (row.panicked && row.cost == 0.0);
        let mut cost = row.cost;
        if row.cached {
            let mut state = self.state();
            state.consecutive_cached += 1;
            // Direct map access: recovering the memoized cost is not a
            // lookup the live run performed twice, so hit/miss counters
            // stay untouched.
            if let Some(&(_, memoized)) = state.cache.map.get(&key) {
                cost = memoized;
            }
        } else if !abandoned {
            let mut state = self.state();
            state.cache.insert(key, (row.loss, row.cost));
            state.evaluations += 1;
            state.total_cost += row.cost;
            state.consecutive_cached = 0;
            state.log.push(LogEntry {
                assignment: assignment.clone(),
                fidelity,
                loss: row.loss,
                cost: row.cost,
                infer_cost: 0.0,
            });
        }
        EvalOutcome {
            loss: row.loss,
            cost,
            cached: row.cached,
            fe_cached: row.fe_cached,
            panicked: row.panicked,
            timed_out: row.timed_out,
            replayed: true,
        }
    }

    /// Trains the final pipeline+model from an assignment on a complete
    /// dataset (used after search finishes, on the full training split).
    pub fn refit(
        &self,
        assignment: &HashMap<String, f64>,
        data: &Dataset,
    ) -> Result<(FePipeline, Model)> {
        refit_assignment(&self.shared.space, assignment, data, self.shared.seed)
    }

    /// Number of cached entries (for tests/diagnostics).
    pub fn cache_size(&self) -> usize {
        self.state().cache.map.len()
    }

    /// Number of cache hits so far.
    pub fn cache_hits(&self) -> u64 {
        self.state().cache.hits
    }

    /// Number of cache misses so far.
    pub fn cache_misses(&self) -> u64 {
        self.state().cache.misses
    }

    /// Rebounds the result cache, evicting oldest entries if shrinking.
    pub fn set_cache_capacity(&self, capacity: usize) {
        self.state().cache.set_capacity(capacity);
    }

    /// Number of entries in the cross-trial FE-transform cache.
    pub fn fe_cache_size(&self) -> usize {
        self.state().fe_cache.map.len()
    }

    /// Number of FE-transform cache hits so far.
    pub fn fe_cache_hits(&self) -> u64 {
        self.state().fe_cache.hits
    }

    /// Number of FE-transform cache misses so far.
    pub fn fe_cache_misses(&self) -> u64 {
        self.state().fe_cache.misses
    }

    /// Rebounds the FE-transform cache, evicting oldest entries if
    /// shrinking.
    pub fn set_fe_cache_capacity(&self, capacity: usize) {
        self.state().fe_cache.set_capacity(capacity);
    }

    /// Sets the thread count injected into models that support intra-fit
    /// parallelism (`n_jobs`). Fits are bit-identical across thread counts,
    /// so this changes wall time, never losses.
    pub fn set_model_n_jobs(&self, n_jobs: usize) {
        self.shared
            .model_n_jobs
            .store(n_jobs.max(1), Ordering::Relaxed);
    }

    /// Opts models that support it into `f32` feature storage for
    /// histogram binning (injected as `f32_binning` at build time). Halves
    /// raw-matrix read traffic; losses may move within f32 rounding of the
    /// bin cut points, which is inside every paper-rig tolerance.
    pub fn set_model_f32(&self, enabled: bool) {
        self.shared.model_f32.store(enabled, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spaces::SpaceTier;
    use volcanoml_data::synthetic::{make_classification, ClassificationSpec};
    use volcanoml_data::Task;
    use volcanoml_models::Estimator;

    fn dataset() -> Dataset {
        make_classification(
            &ClassificationSpec {
                n_samples: 240,
                n_features: 8,
                n_informative: 5,
                n_redundant: 0,
                n_classes: 2,
                class_sep: 1.8,
                flip_y: 0.0,
                weights: Vec::new(),
            },
            11,
        )
    }

    fn evaluator() -> Evaluator {
        let space = SpaceDef::tiered(Task::Classification, SpaceTier::Small);
        Evaluator::new(space, &dataset(), Metric::BalancedAccuracy, 0).unwrap()
    }

    #[test]
    fn default_assignment_evaluates() {
        let ev = evaluator();
        let defaults = ev.space().defaults();
        let out = ev.evaluate(&defaults, 1.0);
        assert!(out.loss.is_finite());
        assert!(out.loss < 0.4, "loss {}", out.loss);
        assert!(!out.cached);
        assert!(!out.panicked && !out.timed_out);
        assert_eq!(ev.evaluations(), 1);
    }

    #[test]
    fn cache_hits_on_repeat() {
        let ev = evaluator();
        let defaults = ev.space().defaults();
        let first = ev.evaluate(&defaults, 1.0);
        let second = ev.evaluate(&defaults, 1.0);
        assert!(!first.cached);
        assert!(second.cached);
        assert_eq!(first.loss, second.loss);
        assert_eq!(ev.evaluations(), 1);
        assert_eq!(ev.cache_hits(), 1);
        assert_eq!(ev.cache_misses(), 1);
    }

    #[test]
    fn different_fidelities_are_distinct_cache_entries() {
        let ev = evaluator();
        let defaults = ev.space().defaults();
        ev.evaluate(&defaults, 1.0);
        ev.evaluate(&defaults, 0.5);
        assert_eq!(ev.cache_size(), 2);
        assert_eq!(ev.evaluations(), 2);
    }

    #[test]
    fn clones_share_cache_and_log() {
        let ev = evaluator();
        let handle = ev.clone();
        let defaults = ev.space().defaults();
        ev.evaluate(&defaults, 1.0);
        let out = handle.evaluate(&defaults, 1.0);
        assert!(out.cached);
        assert_eq!(handle.evaluations(), 1);
        assert_eq!(handle.log().len(), 1);
    }

    #[test]
    fn cache_capacity_is_enforced() {
        let ev = evaluator();
        ev.set_cache_capacity(2);
        let defaults = ev.space().defaults();
        ev.evaluate(&defaults, 1.0);
        ev.evaluate(&defaults, 0.5);
        ev.evaluate(&defaults, 0.25);
        assert_eq!(ev.cache_size(), 2);
        // The oldest (fidelity 1.0) entry was evicted: re-evaluating it is
        // a miss, while the newest is still a hit.
        let again = ev.evaluate(&defaults, 0.25);
        assert!(again.cached);
        let evicted = ev.evaluate(&defaults, 1.0);
        assert!(!evicted.cached);
    }

    #[test]
    fn panic_in_trial_is_isolated() {
        let ev = evaluator();
        ev.set_fault_hook(Arc::new(|a, _| {
            if a.get("algorithm").copied() == Some(77.0) {
                Some(Fault::Panic)
            } else {
                None
            }
        }));
        let mut bad = ev.space().defaults();
        bad.insert("algorithm".to_string(), 77.0);
        let out = ev.evaluate(&bad, 1.0);
        assert!(out.panicked);
        assert!(out.loss.is_infinite());
        // The evaluator is still usable after the panic.
        let good = ev.evaluate(&ev.space().defaults(), 1.0);
        assert!(good.loss.is_finite());
    }

    #[test]
    fn batch_evaluation_matches_serial() {
        let ev = evaluator();
        let serial = evaluator();
        let mut trials = Vec::new();
        for idx in 0..3 {
            let mut a = ev.space().defaults();
            a.insert("algorithm".to_string(), idx as f64);
            trials.push((a, 1.0));
        }
        let pool = ExecPool::with_workers(2);
        let batch = ev.evaluate_batch(&pool, &trials);
        assert_eq!(batch.len(), 3);
        for (i, (a, f)) in trials.iter().enumerate() {
            let s = serial.evaluate(a, *f);
            assert_eq!(s.loss, batch[i].loss, "trial {i}");
        }
        assert_eq!(ev.evaluations(), 3);
    }

    #[test]
    fn journal_records_serial_and_batch_trials() {
        let ev = evaluator();
        let journal = Arc::new(Journal::in_memory());
        ev.attach_journal(Arc::clone(&journal));
        let defaults = ev.space().defaults();
        ev.evaluate(&defaults, 1.0);
        ev.evaluate(&defaults, 1.0); // cache hit
        let pool = ExecPool::with_workers(2);
        let mut other = defaults.clone();
        other.insert("algorithm".to_string(), 1.0);
        ev.evaluate_batch(&pool, &[(other, 1.0)]);
        let records = journal.records();
        assert_eq!(records.len(), 3);
        assert!(!records[0].cached && records[1].cached);
        assert!(records.iter().all(|r| !r.panicked && !r.timed_out));
    }

    #[test]
    fn every_algorithm_in_tier_evaluates() {
        let ev = evaluator();
        let n_algs = ev.space().algorithms.len();
        for idx in 0..n_algs {
            let mut a = ev.space().defaults();
            a.insert("algorithm".to_string(), idx as f64);
            let out = ev.evaluate(&a, 1.0);
            assert!(out.loss.is_finite(), "algorithm {idx} failed");
        }
    }

    #[test]
    fn bad_algorithm_index_is_infinite_loss() {
        let ev = evaluator();
        let mut a = ev.space().defaults();
        a.insert("algorithm".to_string(), 99.0);
        let out = ev.evaluate(&a, 1.0);
        assert!(out.loss.is_infinite());
    }

    #[test]
    fn metric_task_mismatch_rejected() {
        let space = SpaceDef::tiered(Task::Classification, SpaceTier::Small);
        let r = Evaluator::new(space, &dataset(), Metric::Mse, 0);
        assert!(r.is_err());
    }

    #[test]
    fn refit_produces_working_model() {
        let ev = evaluator();
        let d = dataset();
        let (pipeline, model) = ev.refit(&ev.space().defaults(), &d).unwrap();
        let x = pipeline.transform(&d.x).unwrap();
        let preds = model.predict(&x).unwrap();
        let acc = volcanoml_data::metrics::accuracy(&d.y, &preds);
        assert!(acc > 0.7, "refit accuracy {acc}");
    }

    #[test]
    fn cross_validation_strategy_evaluates() {
        let space = SpaceDef::tiered(Task::Classification, SpaceTier::Small);
        let ev = Evaluator::with_strategy(
            space,
            &dataset(),
            Metric::BalancedAccuracy,
            ValidationStrategy::CrossValidation { folds: 3 },
            0,
        )
        .unwrap();
        let defaults = ev.space().defaults();
        let out = ev.evaluate(&defaults, 1.0);
        assert!(out.loss.is_finite());
        assert!(out.loss < 0.4, "CV loss {}", out.loss);
    }

    #[test]
    fn cv_loss_is_less_noisy_than_holdout_across_seeds() {
        // Not a strict guarantee, but with 3 folds the CV estimate should
        // have visibly lower spread across evaluator seeds.
        let space = SpaceDef::tiered(Task::Classification, SpaceTier::Small);
        let d = dataset();
        let spread = |strategy: ValidationStrategy| {
            let losses: Vec<f64> = (0..6u64)
                .map(|seed| {
                    let ev = Evaluator::with_strategy(
                        space.clone(),
                        &d,
                        Metric::BalancedAccuracy,
                        strategy,
                        seed,
                    )
                    .unwrap();
                    let defaults = ev.space().defaults();
                    ev.evaluate(&defaults, 1.0).loss
                })
                .collect();
            volcanoml_linalg::stats::std_dev(&losses)
        };
        let holdout = spread(ValidationStrategy::Holdout { fraction: 0.25 });
        let cv = spread(ValidationStrategy::CrossValidation { folds: 3 });
        assert!(cv <= holdout + 0.05, "cv {cv} vs holdout {holdout}");
    }

    #[test]
    fn invalid_strategies_are_rejected() {
        let space = SpaceDef::tiered(Task::Classification, SpaceTier::Small);
        assert!(Evaluator::with_strategy(
            space.clone(),
            &dataset(),
            Metric::BalancedAccuracy,
            ValidationStrategy::Holdout { fraction: 1.5 },
            0,
        )
        .is_err());
        assert!(Evaluator::with_strategy(
            space,
            &dataset(),
            Metric::BalancedAccuracy,
            ValidationStrategy::CrossValidation { folds: 1 },
            0,
        )
        .is_err());
    }

    #[test]
    fn fe_cache_hits_across_trials_sharing_fe_config() {
        let ev = evaluator();
        let defaults = ev.space().defaults();
        // Two different algorithms with identical FE sub-assignments: the
        // second trial must reuse the fitted FE transform.
        let first = ev.evaluate(&defaults, 1.0);
        let mut other = defaults.clone();
        other.insert("algorithm".to_string(), 1.0);
        let second = ev.evaluate(&other, 1.0);
        assert!(!first.fe_cached);
        assert!(second.fe_cached, "second trial should reuse the FE output");
        assert_eq!(ev.fe_cache_size(), 1);
        assert_eq!(ev.fe_cache_hits(), 1);
        assert_eq!(ev.fe_cache_misses(), 1);
        // A result-cache hit reports fe_cached = false (no FE work at all).
        let repeat = ev.evaluate(&defaults, 1.0);
        assert!(repeat.cached && !repeat.fe_cached);
    }

    #[test]
    fn fe_cache_distinguishes_fidelity_and_fe_params() {
        let ev = evaluator();
        let defaults = ev.space().defaults();
        ev.evaluate(&defaults, 1.0);
        // Different fidelity → different training rows → FE miss.
        let half = ev.evaluate(&defaults, 0.5);
        assert!(!half.fe_cached);
        // Different FE sub-assignment → FE miss.
        let mut scaled = defaults.clone();
        let rescaler = scaled.get_mut("fe:rescaler").expect("rescaler param");
        *rescaler = if *rescaler == 1.0 { 2.0 } else { 1.0 };
        let rescaled = ev.evaluate(&scaled, 1.0);
        assert!(!rescaled.fe_cached);
        assert!(rescaled.loss.is_finite());
        assert_eq!(ev.fe_cache_size(), 3);
    }

    #[test]
    fn model_n_jobs_does_not_change_losses() {
        let serial = evaluator();
        let threaded = evaluator();
        threaded.set_model_n_jobs(4);
        // The forest is the n_jobs-sensitive algorithm in the small tier.
        let mut a = serial.space().defaults();
        a.insert("algorithm".to_string(), 1.0);
        let s = serial.evaluate(&a, 1.0);
        let t = threaded.evaluate(&a, 1.0);
        assert_eq!(s.loss, t.loss, "fits must be thread-count independent");
    }

    #[test]
    fn fe_cache_capacity_is_enforced() {
        let ev = evaluator();
        ev.set_fe_cache_capacity(1);
        let defaults = ev.space().defaults();
        ev.evaluate(&defaults, 1.0);
        ev.evaluate(&defaults, 0.5);
        assert_eq!(ev.fe_cache_size(), 1);
    }

    #[test]
    fn fidelity_subsampling_is_cheaper_or_equal() {
        let ev = evaluator();
        let defaults = ev.space().defaults();
        // Use the forest (more data-sensitive cost) for a stable signal.
        let mut a = defaults.clone();
        a.insert("algorithm".to_string(), 1.0);
        a.insert("alg:random_forest:n_estimators".to_string(), 80.0);
        let full = ev.evaluate(&a, 1.0);
        let cheap = ev.evaluate(&a, 0.25);
        assert!(cheap.loss.is_finite());
        // Wall-time comparisons are flaky in CI; assert the subsample ran and
        // produced a (possibly worse) finite loss instead.
        assert!(full.loss.is_finite());
    }
}
