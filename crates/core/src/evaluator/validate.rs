//! Validation strategies and the view-based trial data path.
//!
//! Everything here operates on [`DatasetView`]s: fidelity subsampling and
//! fold splits are index arithmetic over the evaluator's shared storage, and
//! feature rows are materialized (one pooled gather) only inside the FE
//! pipeline, *after* the FE-cache lookup misses. Result-cache and FE-cache
//! hits therefore copy zero dataset bytes.

use super::fe_cache::FeTransformed;
use super::{interpret, EvalShared, Evaluator};
use crate::{CoreError, Result};
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use volcanoml_data::split::{subsample_view, KFold, StratifiedKFold};
use volcanoml_data::{train_test_split, Dataset, DatasetView, Task};
use volcanoml_fe::FePipeline;
use volcanoml_models::{AlgorithmKind, Estimator};

/// How an assignment's quality is measured during search (§5.1 lets users
/// pick validation accuracy or cross-validation accuracy).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValidationStrategy {
    /// Single split: `fraction` of the search data held out for scoring.
    Holdout {
        /// Validation fraction in (0, 1).
        fraction: f64,
    },
    /// k-fold cross-validation (stratified for classification); the loss is
    /// the mean across folds. Roughly `k×` the evaluation cost of holdout.
    CrossValidation {
        /// Number of folds (≥ 2).
        folds: usize,
    },
}

impl Default for ValidationStrategy {
    fn default() -> Self {
        ValidationStrategy::Holdout { fraction: 0.25 }
    }
}

/// Builds the `(fit, valid)` views the evaluator stores.
///
/// Holdout materializes the split once at construction and wraps each half
/// as a full view, so full-fidelity trials borrow rows without copying —
/// even on an FE-cache miss. CV keeps the whole dataset behind one `Arc`;
/// folds are drawn per evaluation as index views, and `valid` is an empty
/// view over the same storage: CV setup performs no row gathers.
pub(super) fn build_validation_views(
    strategy: ValidationStrategy,
    data: &Dataset,
    seed: u64,
) -> Result<(DatasetView, DatasetView)> {
    match strategy {
        ValidationStrategy::Holdout { fraction } => {
            if !(fraction > 0.0 && fraction < 1.0) {
                return Err(CoreError::Invalid(format!(
                    "holdout fraction {fraction} must be in (0, 1)"
                )));
            }
            let (train, valid) = train_test_split(data, fraction, seed)?;
            Ok((DatasetView::of(train), DatasetView::of(valid)))
        }
        ValidationStrategy::CrossValidation { folds } => {
            if folds < 2 {
                return Err(CoreError::Invalid(format!(
                    "cross-validation needs at least 2 folds, got {folds}"
                )));
            }
            let storage = Arc::new(data.clone());
            Ok((
                DatasetView::full(Arc::clone(&storage)),
                DatasetView::empty(storage),
            ))
        }
    }
}

impl Evaluator {
    /// Returns `(loss, fe_cached, per-row inference seconds)` — the last
    /// measured over the validation-side `predict` so cost-sensitive
    /// objectives can penalize slow-at-serving pipelines.
    pub(super) fn evaluate_uncached(
        &self,
        assignment: &HashMap<String, f64>,
        fidelity: f64,
    ) -> Result<(f64, bool, f64)> {
        let (alg, model_params, fe_params) = self.interpret(assignment)?;
        let shared: &EvalShared = &self.shared;
        match shared.strategy {
            ValidationStrategy::Holdout { .. } => {
                let data = if fidelity >= 1.0 - 1e-9 {
                    // Full fidelity: an Arc bump onto the shared storage, no
                    // rows touched (the old path deep-copied the set here).
                    shared.fit_data.clone()
                } else {
                    subsample_view(&shared.fit_data, fidelity, shared.seed ^ 0xf1de)
                };
                self.fit_and_score(
                    alg,
                    &model_params,
                    &fe_params,
                    &data,
                    &shared.valid_data,
                    fidelity.to_bits(),
                )
            }
            ValidationStrategy::CrossValidation { folds } => {
                let plan = self.fold_plan(folds, fidelity)?;
                let mut total = 0.0;
                let mut total_infer = 0.0;
                let mut all_fe_cached = true;
                for (fold, (train, valid)) in plan.iter().enumerate() {
                    let data_key = fidelity
                        .to_bits()
                        .wrapping_add((fold as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    let (loss, fe_cached, infer_s) = self.fit_and_score(
                        alg,
                        &model_params,
                        &fe_params,
                        train,
                        valid,
                        data_key,
                    )?;
                    total += loss;
                    total_infer += infer_s;
                    all_fe_cached &= fe_cached;
                }
                let k = plan.len() as f64;
                Ok((total / k, all_fe_cached, total_infer / k))
            }
        }
    }

    /// The CV fold plan for one fidelity: subsample (index-only) and split
    /// once, cache the resulting `(train, valid)` views keyed by
    /// `fidelity.to_bits()`. Splits are deterministic in `(data, folds,
    /// seed)`, so recomputing them per trial — as the copy-based path had
    /// to, since it materialized owned fold subsets anyway — is pure waste.
    /// Concurrent misses may build the plan twice; both builds are
    /// identical and the last insert wins.
    fn fold_plan(
        &self,
        folds: usize,
        fidelity: f64,
    ) -> Result<Arc<Vec<(DatasetView, DatasetView)>>> {
        let key = fidelity.to_bits();
        if let Some(plan) = self.state().fold_plans.get(&key) {
            return Ok(Arc::clone(plan));
        }
        let shared: &EvalShared = &self.shared;
        let data = if fidelity >= 1.0 - 1e-9 {
            shared.fit_data.clone()
        } else {
            subsample_view(&shared.fit_data, fidelity, shared.seed ^ 0xf1de)
        };
        let splits: Vec<(Vec<usize>, Vec<usize>)> = if shared.space.task == Task::Classification {
            StratifiedKFold::from_view(&data, folds, shared.seed)?
                .splits()
                .collect()
        } else {
            KFold::new(data.n_samples(), folds, shared.seed)?
                .splits()
                .collect()
        };
        let plan = Arc::new(
            splits
                .iter()
                .map(|(ti, vi)| (data.select(ti), data.select(vi)))
                .collect::<Vec<_>>(),
        );
        self.state().fold_plans.insert(key, Arc::clone(&plan));
        Ok(plan)
    }

    /// Fits one pipeline+model on `train` and scores on `valid`, returning
    /// `(loss, fe_cached, per-row inference seconds)` — the inference time
    /// is the validation `predict` wall time divided by the number of rows
    /// scored, so it is comparable across fidelities and validation
    /// strategies. `data_key` identifies the exact training subset
    /// (fidelity and, under CV, the fold) so the FE cache never conflates
    /// transforms fitted on different rows. On an FE-cache hit no dataset
    /// rows are touched at all; on a miss, index views are gathered exactly
    /// once inside the FE pipeline's view entry points.
    pub(super) fn fit_and_score(
        &self,
        alg: AlgorithmKind,
        model_params: &HashMap<String, f64>,
        fe_params: &HashMap<String, f64>,
        train: &DatasetView,
        valid: &DatasetView,
        data_key: u64,
    ) -> Result<(f64, bool, f64)> {
        let fe_key = (interpret::assignment_key(fe_params), data_key);
        let cached = self.state().fe_cache.get(&fe_key);
        let (fe_out, fe_cached) = match cached {
            Some(arc) => (arc, true),
            None => {
                let mut pipeline = FePipeline::from_values(
                    self.shared.space.task,
                    train.feature_types(),
                    fe_params,
                    &self.shared.space.fe_options,
                    self.shared.seed,
                )
                .map_err(|e| CoreError::Substrate(e.to_string()))?;
                let (x_train, y_train) = pipeline
                    .fit_transform_train_view(train)
                    .map_err(|e| CoreError::Substrate(e.to_string()))?;
                let x_valid = pipeline
                    .transform_view(valid)
                    .map_err(|e| CoreError::Substrate(e.to_string()))?;
                let y_valid = valid.targets().into_owned();
                let arc = Arc::new(FeTransformed {
                    x_train,
                    y_train,
                    x_valid,
                    y_valid,
                });
                self.state().fe_cache.insert(fe_key, Arc::clone(&arc));
                (arc, false)
            }
        };
        let n_jobs = self.shared.model_n_jobs.load(Ordering::Relaxed);
        let f32_binning = self.shared.model_f32.load(Ordering::Relaxed);
        let mut model = if n_jobs > 1 || f32_binning {
            let mut with_exec = model_params.clone();
            if n_jobs > 1 {
                with_exec.insert("n_jobs".to_string(), n_jobs as f64);
            }
            if f32_binning {
                with_exec.insert("f32_binning".to_string(), 1.0);
            }
            alg.build(&with_exec, self.shared.seed)
        } else {
            alg.build(model_params, self.shared.seed)
        };
        model
            .fit(&fe_out.x_train, &fe_out.y_train)
            .map_err(|e| CoreError::Substrate(e.to_string()))?;
        let infer_start = std::time::Instant::now();
        let preds = model
            .predict(&fe_out.x_valid)
            .map_err(|e| CoreError::Substrate(e.to_string()))?;
        let n_scored = fe_out.y_valid.len().max(1) as f64;
        let infer_s = infer_start.elapsed().as_secs_f64() / n_scored;
        Ok((
            self.shared.metric.loss(&fe_out.y_valid, &preds),
            fe_cached,
            infer_s,
        ))
    }
}
