//! The cross-trial FE-transform cache.
//!
//! Keyed on `(fe sub-assignment hash, training-data key)`. Trials that share
//! an FE configuration (the common case when a block sweeps model
//! hyper-parameters) reuse the transformed matrices via `Arc` instead of
//! re-running imputation/encoding/scaling/balancing per trial. Since the
//! zero-copy view refactor, a hit also skips the view gather entirely: the
//! cached entry carries everything the model fit and scoring need, so an
//! FE-warm trial touches no dataset rows at all.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use volcanoml_linalg::Matrix;

/// One fitted-FE output shared across trials.
pub(super) struct FeTransformed {
    /// Transformed (and possibly resampled) training features.
    pub(super) x_train: Matrix,
    /// Training targets — balancers such as SMOTE resample them, so they
    /// must be cached alongside the features.
    pub(super) y_train: Vec<f64>,
    /// Transformed validation features.
    pub(super) x_valid: Matrix,
    /// Validation targets, cached so scoring on a hit needs no row access.
    pub(super) y_valid: Vec<f64>,
}

/// FIFO-bounded cache of fitted-FE outputs.
pub(super) struct FeCache {
    pub(super) map: HashMap<(u64, u64), Arc<FeTransformed>>,
    order: VecDeque<(u64, u64)>,
    capacity: usize,
    pub(super) hits: u64,
    pub(super) misses: u64,
}

impl FeCache {
    pub(super) fn new(capacity: usize) -> FeCache {
        FeCache {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
        }
    }

    pub(super) fn get(&mut self, key: &(u64, u64)) -> Option<Arc<FeTransformed>> {
        match self.map.get(key) {
            Some(v) => {
                self.hits += 1;
                Some(Arc::clone(v))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    pub(super) fn insert(&mut self, key: (u64, u64), value: Arc<FeTransformed>) {
        if self.map.insert(key, value).is_none() {
            self.order.push_back(key);
            while self.map.len() > self.capacity {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                } else {
                    break;
                }
            }
        }
    }

    pub(super) fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        while self.map.len() > self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
            } else {
                break;
            }
        }
    }
}
