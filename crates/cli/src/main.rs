//! `volcanoml` — command-line front end for the VolcanoML engine.
//!
//! ```text
//! volcanoml fit data.csv [--evals N] [--tier small|medium|large]
//!                        [--plan p1|p2|p3|p4|p5] [--engine bo|random|sh|hyperband|mfes-hb]
//!                        [--seed S] [--cv K] [--ensemble N] [--smote]
//!                        [--workers N] [--n-jobs N] [--f32-bins]
//!                        [--cost-aware] [--objective loss|loss_and_cost[:WEIGHT]]
//!                        [--space fixed|incremental[:EUI_THRESHOLD]]
//!                        [--journal trials.jsonl] [--trace trace.jsonl]
//!                        [--metrics metrics.json] [--trial-timeout SECS]
//! volcanoml spaces                      # print the tiered search-space sizes
//! volcanoml plans                       # print the plan catalogue
//! volcanoml generate <kind> <out.csv>   # emit a synthetic benchmark dataset
//! volcanoml report <trace.jsonl> [--journal trials.jsonl] [--metrics metrics.json] [--live]
//! volcanoml serve --dir DIR [--port P] [--workers N] [--resume] [--log-requests]
//! ```
//!
//! CSV dialect: first line `#types:` declaration, then a header, then rows;
//! see `volcanoml_data::csv`. `volcanoml generate` produces compliant files.

use std::process::ExitCode;
use volcanoml_core::plans::enumerate_coarse_plans;
use volcanoml_core::{
    EngineKind, Objective, PlanSpec, SpaceDef, SpaceGrowth, SpaceTier, ValidationStrategy,
    VolcanoML, VolcanoMlOptions,
};
use volcanoml_data::{train_test_split, Metric, Task};
use volcanoml_fe::pipeline::FeSpaceOptions;

fn usage() -> &'static str {
    "usage:\n  volcanoml fit <data.csv> [--evals N] [--tier small|medium|large] \
     [--plan p1|p2|p3|p4|p5] [--engine bo|random|sh|hyperband|mfes-hb] [--seed S] \
     [--cv K] [--ensemble N] [--smote] [--workers N] [--n-jobs N] [--f32-bins] \
     [--cost-aware] [--objective loss|loss_and_cost[:WEIGHT]] \
     [--space fixed|incremental[:EUI_THRESHOLD]] \
     [--journal trials.jsonl] [--trace trace.jsonl] [--metrics metrics.json] \
     [--trial-timeout SECS]\n  volcanoml spaces\n  \
     volcanoml plans\n  \
     volcanoml generate <classification|moons|xor|friedman1|imbalanced> <out.csv> [--seed S]\n  \
     volcanoml report <trace.jsonl> [--journal trials.jsonl] [--metrics metrics.json] [--live]\n  \
     volcanoml serve --dir DIR [--port P] [--workers N] [--resume] [--log-requests]"
}

/// Minimal flag parser: `--key value` pairs after positional arguments.
struct Flags {
    pairs: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        let mut pairs = Vec::new();
        let mut switches = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            let Some(key) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument '{a}'"));
            };
            // Switch-style flags take no value.
            if matches!(
                key,
                "smote" | "live" | "resume" | "f32-bins" | "log-requests" | "cost-aware"
            ) {
                switches.push(key.to_string());
                i += 1;
                continue;
            }
            let Some(value) = args.get(i + 1) else {
                return Err(format!("flag --{key} needs a value"));
            };
            pairs.push((key.to_string(), value.clone()));
            i += 2;
        }
        Ok(Flags { pairs, switches })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }

    fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value '{v}' for --{key}")),
        }
    }
}

fn parse_tier(s: &str) -> Result<SpaceTier, String> {
    match s {
        "small" => Ok(SpaceTier::Small),
        "medium" => Ok(SpaceTier::Medium),
        "large" => Ok(SpaceTier::Large),
        other => Err(format!("unknown tier '{other}'")),
    }
}

fn parse_engine(s: &str) -> Result<EngineKind, String> {
    match s {
        "bo" => Ok(EngineKind::Bo),
        "random" => Ok(EngineKind::Random),
        "sh" => Ok(EngineKind::SuccessiveHalving),
        "hyperband" => Ok(EngineKind::Hyperband),
        "mfes-hb" => Ok(EngineKind::MfesHb),
        other => Err(format!("unknown engine '{other}'")),
    }
}

/// `loss` or `loss_and_cost[:WEIGHT]` (WEIGHT defaults to 100 loss units
/// per second of per-row inference latency).
fn parse_objective(s: &str) -> Result<Objective, String> {
    if s == "loss" {
        return Ok(Objective::Loss);
    }
    let Some(rest) = s.strip_prefix("loss_and_cost") else {
        return Err(format!("unknown objective '{s}' (use loss|loss_and_cost[:WEIGHT])"));
    };
    let latency_weight = match rest.strip_prefix(':') {
        None if rest.is_empty() => 100.0,
        Some(w) => {
            let w: f64 = w
                .parse()
                .map_err(|_| format!("invalid objective weight '{w}'"))?;
            if !w.is_finite() || w < 0.0 {
                return Err(format!("objective weight {w} must be finite and >= 0"));
            }
            w
        }
        None => return Err(format!("unknown objective '{s}'")),
    };
    Ok(Objective::LossAndCost { latency_weight })
}

fn parse_plan(s: &str, engine: EngineKind) -> Result<PlanSpec, String> {
    enumerate_coarse_plans(engine)
        .into_iter()
        .find(|(name, _)| name.to_lowercase().starts_with(s))
        .map(|(_, plan)| plan)
        .ok_or_else(|| format!("unknown plan '{s}' (use p1..p5)"))
}

fn cmd_fit(args: &[String]) -> Result<(), String> {
    let Some(path) = args.first() else {
        return Err("fit needs a CSV path".to_string());
    };
    let flags = Flags::parse(&args[1..])?;
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let dataset = volcanoml_data::csv::from_csv(path, &text).map_err(|e| e.to_string())?;
    println!(
        "loaded {}: {} samples x {} features, task {:?}",
        path,
        dataset.n_samples(),
        dataset.n_features(),
        dataset.task
    );

    let evals: usize = flags.get_parsed("evals", 60)?;
    let seed: u64 = flags.get_parsed("seed", 0)?;
    let ensemble: usize = flags.get_parsed("ensemble", 1)?;
    let workers: usize = flags.get_parsed("workers", 1)?;
    if workers == 0 {
        return Err("--workers must be >= 1".to_string());
    }
    // Threads inside each model fit; orthogonal to --workers (trials).
    let n_jobs: usize = flags.get_parsed("n-jobs", 1)?;
    if n_jobs == 0 {
        return Err("--n-jobs must be >= 1".to_string());
    }
    // f32 feature storage for histogram binning in tree forests.
    let f32_bins = flags.has("f32-bins");
    let cost_aware = flags.has("cost-aware");
    let objective = parse_objective(flags.get("objective").unwrap_or("loss"))?;
    let space_growth =
        SpaceGrowth::parse(flags.get("space").unwrap_or("fixed")).map_err(|e| e.to_string())?;
    let journal_path = flags.get("journal").map(std::path::PathBuf::from);
    let trace_path = flags.get("trace").map(std::path::PathBuf::from);
    let metrics_path = flags.get("metrics").map(std::path::PathBuf::from);
    let trial_deadline = match flags.get("trial-timeout") {
        Some(v) => {
            let secs: f64 = v
                .parse()
                .map_err(|_| "invalid --trial-timeout".to_string())?;
            if !secs.is_finite() || secs <= 0.0 {
                return Err("--trial-timeout must be positive".to_string());
            }
            Some(std::time::Duration::from_secs_f64(secs))
        }
        None => None,
    };
    let tier = parse_tier(flags.get("tier").unwrap_or("large"))?;
    let engine_kind = parse_engine(flags.get("engine").unwrap_or("bo"))?;
    let plan = match flags.get("plan") {
        Some(p) => parse_plan(p, engine_kind)?,
        None => PlanSpec::volcano_default(engine_kind),
    };
    let validation = match flags.get("cv") {
        Some(k) => ValidationStrategy::CrossValidation {
            folds: k.parse().map_err(|_| "invalid --cv".to_string())?,
        },
        None => ValidationStrategy::default(),
    };

    let space = if flags.has("smote") {
        if dataset.task != Task::Classification {
            return Err("--smote only applies to classification".to_string());
        }
        SpaceDef::enriched(
            dataset.task,
            FeSpaceOptions {
                include_smote: true,
                embedding: None,
            },
        )
    } else {
        SpaceDef::tiered(dataset.task, tier)
    };
    println!(
        "space: {} hyper-parameters over {} algorithms | plan: {}",
        space.len(),
        space.algorithms.len(),
        plan.render()
    );

    let (train, test) =
        train_test_split(&dataset, 0.2, seed).map_err(|e| e.to_string())?;
    let engine = VolcanoML::new(
        space,
        VolcanoMlOptions {
            plan,
            max_evaluations: evals,
            seed,
            ensemble_size: ensemble,
            validation,
            n_workers: workers,
            trial_deadline,
            journal_path: journal_path.clone(),
            trace_path: trace_path.clone(),
            metrics_path: metrics_path.clone(),
            model_n_jobs: n_jobs,
            model_f32: f32_bins,
            cost_aware,
            objective,
            space_growth,
            ..Default::default()
        },
    );
    if workers > 1 {
        println!("executing trials on {workers} worker threads");
    }
    if n_jobs > 1 {
        println!("fitting tree ensembles with {n_jobs} threads per trial");
    }
    if f32_bins {
        println!("binning tree-forest features from f32 storage");
    }
    if cost_aware {
        println!("cost-aware scheduling: EI-per-second acquisition, loss-per-second promotion");
    }
    if let Objective::LossAndCost { latency_weight } = objective {
        println!("objective: loss + {latency_weight} x per-row inference seconds");
    }
    if let SpaceGrowth::Incremental { eui_threshold } = space_growth {
        println!(
            "incremental space construction: start minimal, expand when plateau EUI < {eui_threshold}"
        );
    }
    let fitted = engine.fit(&train).map_err(|e| e.to_string())?;
    println!("\nexecution plan after the run:\n{}", fitted.report.plan_explain);
    println!(
        "search: {} evaluations in {:.2}s, best validation loss {:.4}",
        fitted.report.n_evaluations, fitted.report.total_cost, fitted.report.best_loss
    );
    let mut best: Vec<_> = fitted.report.best_assignment.iter().collect();
    best.sort_by(|a, b| a.0.cmp(b.0));
    println!("\nwinning configuration:");
    for (k, v) in best {
        println!("  {k} = {v:.5}");
    }
    let r = &fitted.report;
    let hit_rate = |hits: u64, misses: u64| {
        let total = hits + misses;
        if total == 0 {
            0.0
        } else {
            100.0 * hits as f64 / total as f64
        }
    };
    println!(
        "caches: result {} hits / {} misses ({:.1}%), FE {} hits / {} misses ({:.1}%)",
        r.cache_hits,
        r.cache_misses,
        hit_rate(r.cache_hits, r.cache_misses),
        r.fe_cache_hits,
        r.fe_cache_misses,
        hit_rate(r.fe_cache_hits, r.fe_cache_misses),
    );
    println!(
        "zero-copy: {} gathers skipped, {:.2} MiB gathered",
        r.gathers_skipped,
        r.bytes_gathered as f64 / (1024.0 * 1024.0),
    );
    if r.fidelity_counts.len() > 1 {
        let mix: Vec<String> = r
            .fidelity_counts
            .iter()
            .map(|(f, n)| format!("{f:.3}x{n}"))
            .collect();
        println!("fidelity mix: {}", mix.join(", "));
    }
    if !r.pareto_front.is_empty() && objective.is_cost_sensitive() {
        println!("\nloss / inference-latency Pareto front:");
        for (assignment, loss, infer) in &r.pareto_front {
            let alg = assignment.get("algorithm").copied().unwrap_or(-1.0);
            println!("  loss {loss:.4}  infer {:.2}us/row  algorithm {alg:.0}", infer * 1e6);
        }
    }
    let metric = Metric::default_for(dataset.task);
    let score = fitted.score(&test, metric).map_err(|e| e.to_string())?;
    println!("\nheld-out {}: {score:.4}", metric.name());
    if let Some(journal) = &journal_path {
        println!("trial journal written to {}", journal.display());
    }
    if let Some(trace) = &trace_path {
        println!("span trace written to {}", trace.display());
    }
    if let Some(metrics) = &metrics_path {
        println!("metrics snapshot written to {}", metrics.display());
    }
    Ok(())
}

fn cmd_report(args: &[String]) -> Result<(), String> {
    let Some(trace) = args.first() else {
        return Err("report needs a trace JSONL path".to_string());
    };
    let flags = Flags::parse(&args[1..])?;
    let trace_text =
        std::fs::read_to_string(trace).map_err(|e| format!("cannot read {trace}: {e}"))?;
    let journal_text = match flags.get("journal") {
        Some(p) => {
            Some(std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))?)
        }
        None => None,
    };
    let metrics_text = match flags.get("metrics") {
        Some(p) => {
            Some(std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))?)
        }
        None => None,
    };
    // --live tolerates a torn final line in trace/journal (the run may
    // still be writing them) and marks the report as running/partial.
    let report = if flags.has("live") {
        volcanoml_obs::report::render_live_report(
            &trace_text,
            journal_text.as_deref(),
            metrics_text.as_deref(),
            false,
        )?
    } else {
        volcanoml_obs::report::render_report(
            &trace_text,
            journal_text.as_deref(),
            metrics_text.as_deref(),
        )?
    };
    print!("{report}");
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let Some(dir) = flags.get("dir") else {
        return Err("serve needs --dir DIR for study state".to_string());
    };
    let config = volcanoml_serve::ServeConfig {
        dir: std::path::PathBuf::from(dir),
        workers: flags.get_parsed("workers", 2usize)?.max(1),
        port: flags.get_parsed("port", 0u16)?,
        resume: flags.has("resume"),
        log_requests: flags.has("log-requests"),
    };
    let resume = config.resume;
    let workers = config.workers;
    let server = volcanoml_serve::Server::start(config)?;
    println!(
        "volcanoml-serve listening on http://{} ({} workers{}); study state in {}",
        server.addr(),
        workers,
        if resume { ", resuming" } else { "" },
        dir
    );
    println!("POST /studies to submit; Ctrl-C to stop");
    // Serve until killed. The address is also in <dir>/serve.addr for
    // scripted clients using --port 0.
    loop {
        std::thread::park();
    }
}

fn cmd_spaces() {
    println!("{:<16} {:<8} {:>8} {:>12}", "task", "tier", "vars", "algorithms");
    for task in [Task::Classification, Task::Regression] {
        for (tier, name) in [
            (SpaceTier::Small, "small"),
            (SpaceTier::Medium, "medium"),
            (SpaceTier::Large, "large"),
        ] {
            let s = SpaceDef::tiered(task, tier);
            println!(
                "{:<16} {:<8} {:>8} {:>12}",
                format!("{task:?}"),
                name,
                s.len(),
                s.algorithms.len()
            );
        }
    }
}

fn cmd_plans() {
    for (name, plan) in enumerate_coarse_plans(EngineKind::Bo) {
        println!("{name:<14} {}", plan.render());
    }
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let (Some(kind), Some(out)) = (args.first(), args.get(1)) else {
        return Err("generate needs <kind> <out.csv>".to_string());
    };
    let flags = Flags::parse(&args[2..])?;
    let seed: u64 = flags.get_parsed("seed", 0)?;
    use volcanoml_data::synthetic::*;
    let dataset = match kind.as_str() {
        "classification" => make_classification(&ClassificationSpec::default(), seed),
        "moons" => make_moons(500, 0.15, 2, seed),
        "xor" => make_xor(500, 2, 8, 0.03, seed),
        "friedman1" => make_friedman1(500, 4, 0.5, seed),
        "imbalanced" => make_classification(
            &ClassificationSpec {
                weights: vec![0.9, 0.1],
                ..ClassificationSpec::default()
            },
            seed,
        ),
        other => return Err(format!("unknown generator '{other}'")),
    };
    let text = volcanoml_data::csv::to_csv(&dataset);
    std::fs::write(out, text).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "wrote {} ({} samples x {} features, {:?})",
        out,
        dataset.n_samples(),
        dataset.n_features(),
        dataset.task
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("fit") => cmd_fit(&args[1..]),
        Some("spaces") => {
            cmd_spaces();
            Ok(())
        }
        Some("plans") => {
            cmd_plans();
            Ok(())
        }
        Some("generate") => cmd_generate(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        _ => Err(usage().to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_parser_pairs_and_switches() {
        let args: Vec<String> = ["--evals", "40", "--smote", "--f32-bins", "--seed", "7"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = Flags::parse(&args).unwrap();
        assert_eq!(f.get("evals"), Some("40"));
        assert_eq!(f.get_parsed("seed", 0u64).unwrap(), 7);
        assert!(f.has("smote"));
        assert!(f.has("f32-bins"));
        assert_eq!(f.get_parsed("missing", 3usize).unwrap(), 3);
    }

    #[test]
    fn flag_parser_rejects_bad_input() {
        let args: Vec<String> = ["positional"].iter().map(|s| s.to_string()).collect();
        assert!(Flags::parse(&args).is_err());
        let dangling: Vec<String> = ["--evals"].iter().map(|s| s.to_string()).collect();
        assert!(Flags::parse(&dangling).is_err());
    }

    #[test]
    fn parsers_accept_all_documented_values() {
        for t in ["small", "medium", "large"] {
            parse_tier(t).unwrap();
        }
        assert!(parse_tier("huge").is_err());
        for e in ["bo", "random", "sh", "hyperband", "mfes-hb"] {
            parse_engine(e).unwrap();
        }
        assert!(parse_engine("sgd").is_err());
        for p in ["p1", "p2", "p3", "p4", "p5"] {
            parse_plan(p, EngineKind::Bo).unwrap();
        }
        assert!(parse_plan("p9", EngineKind::Bo).is_err());
    }

    #[test]
    fn objective_flag_parses_and_rejects() {
        assert_eq!(parse_objective("loss").unwrap(), Objective::Loss);
        assert_eq!(
            parse_objective("loss_and_cost").unwrap(),
            Objective::LossAndCost { latency_weight: 100.0 }
        );
        assert_eq!(
            parse_objective("loss_and_cost:2.5").unwrap(),
            Objective::LossAndCost { latency_weight: 2.5 }
        );
        assert!(parse_objective("latency").is_err());
        assert!(parse_objective("loss_and_cost:-1").is_err());
        assert!(parse_objective("loss_and_cost:nope").is_err());
    }

    #[test]
    fn space_flag_parses_and_rejects() {
        let args: Vec<String> = ["--space", "incremental:0.05"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = Flags::parse(&args).unwrap();
        assert_eq!(
            SpaceGrowth::parse(f.get("space").unwrap()).unwrap(),
            SpaceGrowth::Incremental { eui_threshold: 0.05 }
        );
        assert_eq!(SpaceGrowth::parse("fixed").unwrap(), SpaceGrowth::Fixed);
        assert!(SpaceGrowth::parse("huge").is_err());
        assert!(SpaceGrowth::parse("incremental:-3").is_err());
    }

    #[test]
    fn cost_aware_switch_parses() {
        let args: Vec<String> = ["--cost-aware", "--objective", "loss_and_cost:10"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = Flags::parse(&args).unwrap();
        assert!(f.has("cost-aware"));
        assert_eq!(f.get("objective"), Some("loss_and_cost:10"));
    }

    #[test]
    fn executor_flags_parse() {
        let args: Vec<String> = [
            "--workers",
            "4",
            "--n-jobs",
            "2",
            "--journal",
            "trials.jsonl",
            "--trial-timeout",
            "2.5",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let f = Flags::parse(&args).unwrap();
        assert_eq!(f.get_parsed("workers", 1usize).unwrap(), 4);
        assert_eq!(f.get_parsed("n-jobs", 1usize).unwrap(), 2);
        assert_eq!(f.get("journal"), Some("trials.jsonl"));
        assert_eq!(f.get("trial-timeout"), Some("2.5"));
    }
}
