//! Expected improvement and its optimization over a configuration space.

use crate::space::{ConfigSpace, Configuration};
use crate::surrogate::RandomForestSurrogate;
use rand::rngs::StdRng;

/// Standard normal PDF.
pub fn normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Error function (max error ~1.5e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Expected improvement of a (mean, variance) prediction below `best` (we
/// minimize loss). Returns 0 for vanishing variance at or above the best.
pub fn expected_improvement(mean: f64, var: f64, best: f64) -> f64 {
    let std = var.sqrt();
    if std < 1e-12 {
        return (best - mean).max(0.0);
    }
    let z = (best - mean) / std;
    (best - mean) * normal_cdf(z) + std * normal_pdf(z)
}

/// Picks the configuration maximizing EI among random samples plus local
/// neighbors of the incumbent (SMAC's cheap acquisition optimizer).
pub fn maximize_ei(
    space: &ConfigSpace,
    surrogate: &RandomForestSurrogate,
    incumbent: Option<&Configuration>,
    best_loss: f64,
    n_random: usize,
    n_local: usize,
    rng: &mut StdRng,
) -> Configuration {
    let mut candidates: Vec<Configuration> = (0..n_random).map(|_| space.sample(rng)).collect();
    if let Some(inc) = incumbent {
        let mut cur = inc.clone();
        for _ in 0..n_local {
            cur = space.neighbor(&cur, rng);
            candidates.push(cur.clone());
        }
    }
    let mut best_cfg = None;
    let mut best_ei = f64::NEG_INFINITY;
    for c in candidates {
        let enc = space.encode(&c);
        let (mean, var) = surrogate.predict(&enc);
        let ei = expected_improvement(mean, var, best_loss);
        if ei > best_ei {
            best_ei = ei;
            best_cfg = Some(c);
        }
    }
    best_cfg.unwrap_or_else(|| space.default_configuration())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::from_seed;
    use crate::space::Domain;

    #[test]
    fn erf_known_values() {
        assert!(erf(0.0).abs() < 1e-8);
        assert!((erf(1.0) - 0.8427).abs() < 1e-3);
        assert!((erf(-1.0) + 0.8427).abs() < 1e-3);
        assert!((erf(3.0) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn cdf_is_monotone_and_symmetric() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-8);
        assert!(normal_cdf(1.0) > normal_cdf(0.0));
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn ei_prefers_low_mean_and_high_variance() {
        let best = 0.5;
        let low_mean = expected_improvement(0.2, 0.01, best);
        let high_mean = expected_improvement(0.8, 0.01, best);
        assert!(low_mean > high_mean);
        let low_var = expected_improvement(0.6, 1e-6, best);
        let high_var = expected_improvement(0.6, 0.1, best);
        assert!(high_var > low_var);
    }

    #[test]
    fn ei_zero_variance_clamps() {
        assert_eq!(expected_improvement(0.7, 0.0, 0.5), 0.0);
        assert!((expected_improvement(0.3, 0.0, 0.5) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn maximize_ei_moves_toward_optimum() {
        // Surrogate trained on a quadratic: EI maximizer should find points
        // with lower predicted loss than random average.
        let mut space = ConfigSpace::new();
        space
            .add("x", Domain::Float { lo: 0.0, hi: 1.0, log: false }, 0.5)
            .unwrap();
        let mut rng = from_seed(0);
        let xs: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![i as f64 / 199.0])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] - 0.25).powi(2)).collect();
        let mut surrogate = RandomForestSurrogate::new();
        surrogate.fit(&xs, &ys, &mut rng);
        let chosen = maximize_ei(&space, &surrogate, None, 0.2, 200, 0, &mut rng);
        let x = chosen.get(0).unwrap();
        assert!((x - 0.25).abs() < 0.2, "chose {x}");
    }
}
