//! Expected improvement and its optimization over a configuration space.

use crate::cost::CostModel;
use crate::space::{ConfigSpace, Configuration};
use crate::surrogate::RandomForestSurrogate;
use rand::rngs::StdRng;

/// Standard normal PDF.
pub fn normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Error function (max error ~1.5e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Expected improvement of a (mean, variance) prediction below `best` (we
/// minimize loss). Returns 0 for vanishing variance at or above the best.
pub fn expected_improvement(mean: f64, var: f64, best: f64) -> f64 {
    let std = var.sqrt();
    if std < 1e-12 {
        return (best - mean).max(0.0);
    }
    let z = (best - mean) / std;
    (best - mean) * normal_cdf(z) + std * normal_pdf(z)
}

/// How acquisition scores candidates.
#[derive(Clone, Copy)]
pub enum AcquisitionScore<'a> {
    /// Plain expected improvement.
    Ei,
    /// Expected improvement per predicted second (FLAML-style). Falls back
    /// to plain EI while the cost model is still warming up, and cost can
    /// only *scale* a positive EI — a zero-EI candidate stays zero no
    /// matter how cheap it is, so cost never selects on its own.
    EiPerCost(&'a CostModel),
}

/// Picks the configuration maximizing EI among random samples plus local
/// neighbors of the incumbent (SMAC's cheap acquisition optimizer).
pub fn maximize_ei(
    space: &ConfigSpace,
    surrogate: &RandomForestSurrogate,
    incumbent: Option<&Configuration>,
    best_loss: f64,
    n_random: usize,
    n_local: usize,
    rng: &mut StdRng,
) -> Configuration {
    maximize_acquisition(
        space,
        surrogate,
        incumbent,
        best_loss,
        n_random,
        n_local,
        AcquisitionScore::Ei,
        rng,
    )
}

/// Generalized acquisition optimizer: EI or EI-per-predicted-cost.
///
/// When `best_loss` is non-finite (every observation so far failed), EI is
/// inf/NaN for every candidate and comparisons degenerate to "first wins";
/// in that regime selection falls back to pure exploration by minimum
/// predicted mean, which ranks candidates sensibly under a surrogate fit
/// on no finite data (uniform prior) and under partial fits alike.
#[allow(clippy::too_many_arguments)]
pub fn maximize_acquisition(
    space: &ConfigSpace,
    surrogate: &RandomForestSurrogate,
    incumbent: Option<&Configuration>,
    best_loss: f64,
    n_random: usize,
    n_local: usize,
    score: AcquisitionScore<'_>,
    rng: &mut StdRng,
) -> Configuration {
    let mut candidates: Vec<Configuration> = (0..n_random).map(|_| space.sample(rng)).collect();
    if let Some(inc) = incumbent {
        let mut cur = inc.clone();
        for _ in 0..n_local {
            cur = space.neighbor(&cur, rng);
            candidates.push(cur.clone());
        }
    }
    let explore_only = !best_loss.is_finite();
    let mut best_cfg = None;
    let mut best_score = f64::NEG_INFINITY;
    for c in candidates {
        let enc = space.encode(&c);
        let (mean, var) = surrogate.predict(&enc);
        let s = if explore_only {
            // Degenerate incumbent: rank by predicted mean alone.
            -mean
        } else {
            let ei = expected_improvement(mean, var, best_loss);
            match score {
                AcquisitionScore::Ei => ei,
                AcquisitionScore::EiPerCost(cm) if cm.ready() => ei / cm.predict_cost(&enc),
                AcquisitionScore::EiPerCost(_) => ei,
            }
        };
        if s > best_score {
            best_score = s;
            best_cfg = Some(c);
        }
    }
    best_cfg.unwrap_or_else(|| space.default_configuration())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::from_seed;
    use crate::space::Domain;

    #[test]
    fn erf_known_values() {
        assert!(erf(0.0).abs() < 1e-8);
        assert!((erf(1.0) - 0.8427).abs() < 1e-3);
        assert!((erf(-1.0) + 0.8427).abs() < 1e-3);
        assert!((erf(3.0) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn cdf_is_monotone_and_symmetric() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-8);
        assert!(normal_cdf(1.0) > normal_cdf(0.0));
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn ei_prefers_low_mean_and_high_variance() {
        let best = 0.5;
        let low_mean = expected_improvement(0.2, 0.01, best);
        let high_mean = expected_improvement(0.8, 0.01, best);
        assert!(low_mean > high_mean);
        let low_var = expected_improvement(0.6, 1e-6, best);
        let high_var = expected_improvement(0.6, 0.1, best);
        assert!(high_var > low_var);
    }

    #[test]
    fn ei_zero_variance_clamps() {
        assert_eq!(expected_improvement(0.7, 0.0, 0.5), 0.0);
        assert!((expected_improvement(0.3, 0.0, 0.5) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn non_finite_incumbent_falls_back_to_min_predicted_mean() {
        // All-failed history: surrogate fit on inf losses is impossible, so
        // model the realistic state — a surrogate fit only on the finite
        // subset (here: nothing at all is finite, so we fit a shaped
        // surrogate manually to verify the selection rule itself).
        let mut space = ConfigSpace::new();
        space
            .add("x", Domain::Float { lo: 0.0, hi: 1.0, log: false }, 0.5)
            .unwrap();
        let xs: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 / 199.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] - 0.8).powi(2)).collect();
        let mut surrogate = RandomForestSurrogate::new();
        let mut rng = from_seed(7);
        surrogate.fit(&xs, &ys, &mut rng);
        // With best = inf, old behavior picked the first sampled candidate;
        // the fallback must instead track the surrogate's minimum at 0.8.
        let chosen = maximize_ei(&space, &surrogate, None, f64::INFINITY, 300, 0, &mut rng);
        let x = chosen.get(0).unwrap();
        assert!((x - 0.8).abs() < 0.2, "explore-only fallback chose {x}");
        // And it must not depend on candidate order: repeated draws stay in
        // the same basin rather than wandering wherever sample #1 landed.
        let again = maximize_ei(&space, &surrogate, None, f64::NEG_INFINITY, 300, 0, &mut rng);
        let x2 = again.get(0).unwrap();
        assert!((x2 - 0.8).abs() < 0.2, "explore-only fallback chose {x2}");
    }

    #[test]
    fn ei_per_cost_prefers_cheap_among_comparable_ei() {
        // Loss surrogate: flat (same EI everywhere). Cost model: cheap for
        // x < 0.5, ~100x dearer above. EI/cost must concentrate below 0.5.
        let mut space = ConfigSpace::new();
        space
            .add("x", Domain::Float { lo: 0.0, hi: 1.0, log: false }, 0.5)
            .unwrap();
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 99.0]).collect();
        let flat: Vec<f64> = xs.iter().map(|_| 0.4).collect();
        let costs: Vec<f64> = xs.iter().map(|x| if x[0] < 0.5 { 0.1 } else { 10.0 }).collect();
        let mut rng = from_seed(11);
        let mut surrogate = RandomForestSurrogate::new();
        surrogate.fit(&xs, &flat, &mut rng);
        let mut cm = CostModel::new();
        cm.refit(&xs, &costs, &mut rng);
        assert!(cm.ready());
        let mut cheap_picks = 0;
        for seed in 0..10u64 {
            let mut r = from_seed(100 + seed);
            let c = maximize_acquisition(
                &space,
                &surrogate,
                None,
                0.5,
                100,
                0,
                AcquisitionScore::EiPerCost(&cm),
                &mut r,
            );
            if c.get(0).unwrap() < 0.5 {
                cheap_picks += 1;
            }
        }
        assert!(cheap_picks >= 9, "only {cheap_picks}/10 picks were cheap");
    }

    #[test]
    fn zero_ei_cheap_candidate_never_beats_positive_ei_expensive() {
        // Cheap region has zero EI (predicted mean above best, no
        // variance); expensive region has positive EI. Cost scaling must
        // not resurrect the zero-EI region: 0 / cheap == 0.
        let mut space = ConfigSpace::new();
        space
            .add("x", Domain::Float { lo: 0.0, hi: 1.0, log: false }, 0.5)
            .unwrap();
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 99.0]).collect();
        // Below 0.5: loss 0.9 (way above best 0.5 → EI ≈ 0). Above: 0.1.
        let ys: Vec<f64> = xs.iter().map(|x| if x[0] < 0.5 { 0.9 } else { 0.1 }).collect();
        let costs: Vec<f64> = xs.iter().map(|x| if x[0] < 0.5 { 1e-6 } else { 50.0 }).collect();
        let mut rng = from_seed(13);
        let mut surrogate = RandomForestSurrogate::new();
        surrogate.fit(&xs, &ys, &mut rng);
        let mut cm = CostModel::new();
        cm.refit(&xs, &costs, &mut rng);
        for seed in 0..10u64 {
            let mut r = from_seed(200 + seed);
            let c = maximize_acquisition(
                &space,
                &surrogate,
                None,
                0.5,
                200,
                0,
                AcquisitionScore::EiPerCost(&cm),
                &mut r,
            );
            let x = c.get(0).unwrap();
            assert!(x >= 0.45, "cost alone selected a no-improvement point: {x}");
        }
    }

    #[test]
    fn ei_per_cost_matches_plain_ei_before_warmup_and_under_equal_costs() {
        let mut space = ConfigSpace::new();
        space
            .add("x", Domain::Float { lo: 0.0, hi: 1.0, log: false }, 0.5)
            .unwrap();
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 99.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] - 0.3).powi(2)).collect();
        let mut rng = from_seed(17);
        let mut surrogate = RandomForestSurrogate::new();
        surrogate.fit(&xs, &ys, &mut rng);
        // Unready cost model: identical choice to plain EI, same rng stream.
        let cold = CostModel::new();
        let pick = |score: AcquisitionScore<'_>| {
            let mut r = from_seed(42);
            maximize_acquisition(&space, &surrogate, None, 0.2, 150, 0, score, &mut r)
        };
        assert_eq!(
            pick(AcquisitionScore::Ei).values,
            pick(AcquisitionScore::EiPerCost(&cold)).values
        );
        // Uniform-cost model: scaling every EI by the same constant cannot
        // change the argmax.
        let mut cm = CostModel::new();
        let flat_costs: Vec<f64> = xs.iter().map(|_| 3.0).collect();
        cm.refit(&xs, &flat_costs, &mut rng);
        assert!(cm.ready());
        assert_eq!(
            pick(AcquisitionScore::Ei).values,
            pick(AcquisitionScore::EiPerCost(&cm)).values
        );
    }

    #[test]
    fn maximize_ei_moves_toward_optimum() {
        // Surrogate trained on a quadratic: EI maximizer should find points
        // with lower predicted loss than random average.
        let mut space = ConfigSpace::new();
        space
            .add("x", Domain::Float { lo: 0.0, hi: 1.0, log: false }, 0.5)
            .unwrap();
        let mut rng = from_seed(0);
        let xs: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![i as f64 / 199.0])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] - 0.25).powi(2)).collect();
        let mut surrogate = RandomForestSurrogate::new();
        surrogate.fit(&xs, &ys, &mut rng);
        let chosen = maximize_ei(&space, &surrogate, None, 0.2, 200, 0, &mut rng);
        let x = chosen.get(0).unwrap();
        assert!((x - 0.25).abs() < 0.2, "chose {x}");
    }
}
