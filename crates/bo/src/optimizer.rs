//! Sequential optimizers with an ask/tell interface: random search and a
//! SMAC-style BO loop (RF surrogate + EI).

use crate::acquisition::{maximize_acquisition, AcquisitionScore};
use crate::cost::CostModel;
use crate::history::{Observation, RunHistory};
use crate::space::{ConfigSpace, Configuration};
use crate::surrogate::RandomForestSurrogate;
use rand::rngs::StdRng;
use std::sync::Arc;

/// One optimizer observe cycle, reported to an [`ObserveHook`] — the
/// observability tap on the suggest/observe loop.
#[derive(Debug, Clone, Copy)]
pub struct ObserveEvent {
    /// History length *after* this observation.
    pub n_observations: usize,
    /// Fidelity of the observed trial.
    pub fidelity: f64,
    /// Observed loss.
    pub loss: f64,
    /// Trial cost in seconds.
    pub cost: f64,
    /// Incumbent (best finite) loss after this observation, `INFINITY` if
    /// none yet.
    pub incumbent_loss: f64,
}

/// Callback invoked on every real (non-pseudo) observation an optimizer
/// records. Constant-liar pseudo-observations never fire the hook.
pub type ObserveHook = Arc<dyn Fn(&ObserveEvent) + Send + Sync>;

/// Hook slot wrapper so optimizers holding one can keep deriving `Debug`.
#[derive(Default)]
struct HookSlot(Option<ObserveHook>);

impl std::fmt::Debug for HookSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() {
            "HookSlot(set)"
        } else {
            "HookSlot(none)"
        })
    }
}

/// Ask/tell optimizer interface shared by the joint-block engines.
///
/// `suggest` returns a configuration and the fidelity (training-set fraction)
/// it should be evaluated at; `observe` feeds the result back.
pub trait Suggest {
    /// Next configuration to evaluate and its fidelity in `(0, 1]`.
    fn suggest(&mut self) -> (Configuration, f64);

    /// Suggests `k` configurations to evaluate *concurrently* (the batch
    /// path behind `--workers N`). The default simply asks `suggest` `k`
    /// times with no intervening `observe` — correct only for stateless
    /// engines like random search. Engines whose `suggest` depends on
    /// pending results MUST override it: the multi-fidelity engines fill
    /// the batch from their asynchronous bracket set, and model-based
    /// engines decorrelate the batch (see [`Smac::suggest_batch`]'s
    /// constant-liar strategy).
    fn suggest_batch(&mut self, k: usize) -> Vec<(Configuration, f64)> {
        (0..k).map(|_| self.suggest()).collect()
    }

    /// Reports an evaluation result.
    fn observe(&mut self, config: Configuration, fidelity: f64, loss: f64, cost: f64);

    /// Evaluation record.
    fn history(&self) -> &RunHistory;

    /// The space being optimized.
    fn space(&self) -> &ConfigSpace;

    /// Current best configuration (incumbent), default if none evaluated.
    fn best_config(&self) -> Configuration {
        self.history()
            .best()
            .map(|o| o.config.clone())
            .unwrap_or_else(|| self.space().default_configuration())
    }

    /// Warm-starts the optimizer with prior observations (meta-learning).
    fn warm_start(&mut self, observations: &[Observation]) {
        for obs in observations {
            self.observe(obs.config.clone(), obs.fidelity, obs.loss, obs.cost);
        }
    }

    /// Installs an observability hook fired on every real observation.
    /// Default: ignored (schedule-driven engines have nothing extra to
    /// report); model-based engines override it.
    fn set_observe_hook(&mut self, _hook: ObserveHook) {}

    /// Scheduling metadata `(rung, bracket id)` for a suggestion that is
    /// awaiting observation. Multi-fidelity engines override this so the
    /// trial journal and trace can attribute each trial to its rung and
    /// bracket; engines without a bracket schedule return `None`. Callers
    /// must query it *before* `observe` (observing clears the in-flight
    /// entry).
    fn in_flight_meta(&self, _config: &Configuration, _fidelity: f64) -> Option<(usize, u64)> {
        None
    }

    /// Appends canonical, bitwise-stable lines describing the engine's
    /// internal scheduler state — bracket occupancy, per-rung results,
    /// pending queues — to `out`, each prefixed with `path`. Consumed by
    /// crash-resume verification snapshots (`StudyState` in the core
    /// crate), which assert that a journal-replayed engine reaches exactly
    /// the state of the uninterrupted run. Default: nothing — full-fidelity
    /// engines carry no scheduler state beyond their history.
    fn capture_scheduler_state(&self, _path: &str, _out: &mut Vec<String>) {}

    /// Turns cost-aware scheduling on or off. Cost-aware engines score
    /// acquisitions by EI per predicted second and promote by
    /// loss-improvement per second; cost-blind engines (and the default)
    /// ignore the call entirely, so enabling it on e.g. random search is a
    /// harmless no-op. Must be called before the first `suggest` — engines
    /// do not support switching modes mid-run (the surrogate rng stream
    /// would diverge from a resume replay).
    fn set_cost_aware(&mut self, _enabled: bool) {}

    /// Replaces the engine's configuration space with a grown version — an
    /// incremental-space expansion landing mid-run. `new_space` must be a
    /// superset of the current space: every existing variable keeps its
    /// name and domain (categoricals may gain trailing choices) and new
    /// variables carry defaults. Engines remap every stored configuration
    /// through the name→value map, so old observations remain valid (new
    /// variables backfill their defaults — the same discipline as
    /// constant-liar retraction) and model-based engines refit lazily
    /// against the new encoding. Must be called only between a fully
    /// observed batch and the next `suggest`. Default: ignored, for
    /// engines that carry no space of their own.
    fn grow_space(&mut self, _new_space: ConfigSpace) {}
}

/// Remaps every observation of `history` from `old` into `new` by
/// round-tripping through the name→value map: values of shared variables
/// are preserved bitwise (domains are unchanged, so the clamp is the
/// identity), new variables backfill their defaults, and conditional
/// activity is recomputed under the new space.
pub(crate) fn remap_history(
    old: &ConfigSpace,
    new: &ConfigSpace,
    history: &RunHistory,
) -> RunHistory {
    let mut out = RunHistory::new();
    for obs in history.observations() {
        out.push(Observation {
            config: new.from_map(&old.to_map(&obs.config)),
            loss: obs.loss,
            cost: obs.cost,
            fidelity: obs.fidelity,
        });
    }
    out
}

/// Uniform random search (always full fidelity).
#[derive(Debug)]
pub struct RandomSearch {
    space: ConfigSpace,
    history: RunHistory,
    rng: StdRng,
    evaluated_default: bool,
}

impl RandomSearch {
    /// Creates a random-search optimizer.
    pub fn new(space: ConfigSpace, seed: u64) -> Self {
        RandomSearch {
            space,
            history: RunHistory::new(),
            rng: crate::rng::from_seed(seed),
            evaluated_default: false,
        }
    }
}

impl Suggest for RandomSearch {
    fn suggest(&mut self) -> (Configuration, f64) {
        if !self.evaluated_default {
            self.evaluated_default = true;
            return (self.space.default_configuration(), 1.0);
        }
        (self.space.sample(&mut self.rng), 1.0)
    }

    fn observe(&mut self, config: Configuration, fidelity: f64, loss: f64, cost: f64) {
        self.history.push(Observation {
            config,
            loss,
            cost,
            fidelity,
        });
    }

    fn history(&self) -> &RunHistory {
        &self.history
    }

    fn space(&self) -> &ConfigSpace {
        &self.space
    }

    fn grow_space(&mut self, new_space: ConfigSpace) {
        self.history = remap_history(&self.space, &new_space, &self.history);
        self.space = new_space;
    }
}

/// SMAC-style Bayesian optimization: probabilistic random-forest surrogate
/// over the encoded space, expected-improvement acquisition, interleaved
/// random exploration.
#[derive(Debug)]
pub struct Smac {
    space: ConfigSpace,
    history: RunHistory,
    surrogate: RandomForestSurrogate,
    rng: StdRng,
    /// Evaluations before the surrogate turns on.
    pub n_init: usize,
    /// Every k-th suggestion is random (SMAC's interleaving).
    pub random_interleave: usize,
    suggestions: usize,
    stale: bool,
    hook: HookSlot,
    /// When set, acquisition is EI per predicted second (see
    /// [`crate::cost::CostModel`]). Off by default; toggling draws extra
    /// rng for the cost-model fit, so it must be set before the run starts
    /// and match on resume.
    cost_aware: bool,
    cost_model: CostModel,
}

impl Smac {
    /// Creates a SMAC optimizer with standard settings.
    pub fn new(space: ConfigSpace, seed: u64) -> Self {
        Smac {
            space,
            history: RunHistory::new(),
            surrogate: RandomForestSurrogate::new(),
            rng: crate::rng::from_seed(seed),
            n_init: 6,
            random_interleave: 5,
            suggestions: 0,
            stale: true,
            hook: HookSlot::default(),
            cost_aware: false,
            cost_model: CostModel::new(),
        }
    }

    /// The cost model (for tests and state capture).
    pub fn cost_model(&self) -> &CostModel {
        &self.cost_model
    }

    fn refit(&mut self) {
        let full: Vec<&Observation> = self
            .history
            .observations()
            .iter()
            .filter(|o| o.loss.is_finite())
            .collect();
        if full.is_empty() {
            return;
        }
        let xs: Vec<Vec<f64>> = full.iter().map(|o| self.space.encode(&o.config)).collect();
        let ys: Vec<f64> = full.iter().map(|o| o.loss).collect();
        self.surrogate.fit(&xs, &ys, &mut self.rng);
        // The cost model trains on *every* observation with a real cost —
        // a trial that failed still spent real seconds. Fit strictly after
        // the loss surrogate and only in cost-aware mode so the cost-blind
        // rng stream (and hence resumes of cost-blind studies) is
        // byte-identical to before this feature existed.
        if self.cost_aware {
            let all = self.history.observations();
            let cxs: Vec<Vec<f64>> = all.iter().map(|o| self.space.encode(&o.config)).collect();
            let costs: Vec<f64> = all.iter().map(|o| o.cost).collect();
            self.cost_model.refit(&cxs, &costs, &mut self.rng);
        }
        self.stale = false;
    }
}

impl Suggest for Smac {
    fn suggest(&mut self) -> (Configuration, f64) {
        self.suggestions += 1;
        if self.suggestions == 1 {
            return (self.space.default_configuration(), 1.0);
        }
        if self.history.len() < self.n_init
            || self.suggestions.is_multiple_of(self.random_interleave)
        {
            return (self.space.sample(&mut self.rng), 1.0);
        }
        if self.stale {
            self.refit();
        }
        let best_loss = self.history.best_loss().unwrap_or(1.0);
        let incumbent = self.history.best().map(|o| o.config.clone());
        let score = if self.cost_aware {
            AcquisitionScore::EiPerCost(&self.cost_model)
        } else {
            AcquisitionScore::Ei
        };
        let cfg = maximize_acquisition(
            &self.space,
            &self.surrogate,
            incumbent.as_ref(),
            best_loss,
            300,
            20,
            score,
            &mut self.rng,
        );
        (cfg, 1.0)
    }

    /// Constant-liar batch suggestion: after each pick, a pseudo-observation
    /// at the incumbent loss ("the lie") is pushed so EI stops re-proposing
    /// the same region; once all `k` picks are made the lies are retracted
    /// and the surrogate marked stale for honest refitting on real results.
    fn suggest_batch(&mut self, k: usize) -> Vec<(Configuration, f64)> {
        if k <= 1 {
            return (0..k).map(|_| self.suggest()).collect();
        }
        let lie = self.history.best_loss().unwrap_or(1.0);
        let real_len = self.history.len();
        let mut out = Vec::with_capacity(k);
        // Mute the observe hook while lying: pseudo-observations are an
        // internal decorrelation device, not real optimizer progress.
        let hook = self.hook.0.take();
        for i in 0..k {
            let (cfg, fidelity) = self.suggest();
            if i + 1 < k {
                self.observe(cfg.clone(), fidelity, lie, 0.0);
            }
            out.push((cfg, fidelity));
        }
        self.hook.0 = hook;
        self.history.truncate(real_len);
        self.stale = true;
        out
    }

    fn observe(&mut self, config: Configuration, fidelity: f64, loss: f64, cost: f64) {
        self.history.push(Observation {
            config,
            loss,
            cost,
            fidelity,
        });
        self.stale = true;
        if let Some(hook) = &self.hook.0 {
            hook(&ObserveEvent {
                n_observations: self.history.len(),
                fidelity,
                loss,
                cost,
                incumbent_loss: self.history.best_loss().unwrap_or(f64::INFINITY),
            });
        }
    }

    fn history(&self) -> &RunHistory {
        &self.history
    }

    fn space(&self) -> &ConfigSpace {
        &self.space
    }

    fn set_observe_hook(&mut self, hook: ObserveHook) {
        self.hook.0 = Some(hook);
    }

    fn set_cost_aware(&mut self, enabled: bool) {
        self.cost_aware = enabled;
    }

    /// Growing marks the surrogate stale: the next model-based suggestion
    /// refits by re-encoding the (remapped) history in the new space, so no
    /// surrogate migration is needed.
    fn grow_space(&mut self, new_space: ConfigSpace) {
        self.history = remap_history(&self.space, &new_space, &self.history);
        self.space = new_space;
        self.stale = true;
    }

    /// Cost-aware runs add the cost model's fit summary to the snapshot so
    /// crash-resume verification proves the replayed cost model saw the
    /// same data. Cost-blind captures are unchanged (no extra lines).
    fn capture_scheduler_state(&self, path: &str, out: &mut Vec<String>) {
        if self.cost_aware {
            out.push(format!(
                "{path} smac cost_model obs={} ready={}",
                self.cost_model.observations(),
                self.cost_model.ready()
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Domain;

    /// Synthetic objective: conditional quadratic with a categorical branch.
    fn objective(space: &ConfigSpace, c: &Configuration) -> f64 {
        let m = space.to_map(c);
        let branch = *m.get("branch").unwrap_or(&0.0) as usize;
        match branch {
            0 => {
                let x = *m.get("x0").unwrap_or(&0.5);
                0.3 + (x - 0.2).powi(2) // best 0.3
            }
            _ => {
                let x = *m.get("x1").unwrap_or(&0.5);
                0.1 + 2.0 * (x - 0.8).powi(2) // best 0.1 — the good branch
            }
        }
    }

    fn branch_space() -> ConfigSpace {
        let mut s = ConfigSpace::new();
        let b = s.add("branch", Domain::Cat { n: 2 }, 0.0).unwrap();
        s.add_conditional(
            "x0",
            Domain::Float { lo: 0.0, hi: 1.0, log: false },
            0.5,
            Some(crate::space::Condition { parent: b, values: vec![0] }),
        )
        .unwrap();
        s.add_conditional(
            "x1",
            Domain::Float { lo: 0.0, hi: 1.0, log: false },
            0.5,
            Some(crate::space::Condition { parent: b, values: vec![1] }),
        )
        .unwrap();
        s
    }

    fn run<S: Suggest>(opt: &mut S, n: usize) -> f64 {
        for _ in 0..n {
            let (cfg, fidelity) = opt.suggest();
            let loss = objective(opt.space(), &cfg);
            opt.observe(cfg, fidelity, loss, 1.0);
        }
        opt.history().best_loss().unwrap()
    }

    #[test]
    fn random_search_improves_over_default() {
        let mut rs = RandomSearch::new(branch_space(), 0);
        let best = run(&mut rs, 60);
        assert!(best < 0.35, "best {best}");
    }

    #[test]
    fn smac_finds_good_branch() {
        let mut smac = Smac::new(branch_space(), 0);
        let best = run(&mut smac, 60);
        assert!(best < 0.15, "best {best}");
        // The incumbent should be on branch 1.
        let inc = smac.best_config();
        assert_eq!(inc.get(0).map(|v| v as usize), Some(1));
    }

    #[test]
    fn smac_beats_random_on_average() {
        let mut smac_wins = 0;
        for seed in 0..5 {
            let mut smac = Smac::new(branch_space(), seed);
            let s = run(&mut smac, 40);
            let mut rs = RandomSearch::new(branch_space(), seed);
            let r = run(&mut rs, 40);
            if s <= r {
                smac_wins += 1;
            }
        }
        assert!(smac_wins >= 3, "SMAC won only {smac_wins}/5");
    }

    #[test]
    fn first_suggestion_is_default() {
        let mut smac = Smac::new(branch_space(), 0);
        let (cfg, f) = smac.suggest();
        assert_eq!(cfg, smac.space().default_configuration());
        assert_eq!(f, 1.0);
    }

    #[test]
    fn warm_start_sets_incumbent() {
        let space = branch_space();
        let good = {
            let mut m = std::collections::HashMap::new();
            m.insert("branch".to_string(), 1.0);
            m.insert("x1".to_string(), 0.8);
            space.from_map(&m)
        };
        let mut smac = Smac::new(space, 0);
        smac.warm_start(&[Observation {
            config: good.clone(),
            loss: 0.1,
            cost: 1.0,
            fidelity: 1.0,
        }]);
        assert_eq!(smac.best_config(), good);
    }

    #[test]
    fn failed_evaluations_do_not_poison_surrogate() {
        let mut smac = Smac::new(branch_space(), 0);
        for i in 0..20 {
            let (cfg, f) = smac.suggest();
            let loss = if i % 3 == 0 {
                f64::INFINITY
            } else {
                objective(smac.space(), &cfg)
            };
            smac.observe(cfg, f, loss, 1.0);
        }
        assert!(smac.history().best_loss().unwrap().is_finite());
    }

    #[test]
    fn batch_suggestion_retracts_lies_and_decorrelates() {
        let mut smac = Smac::new(branch_space(), 0);
        // Burn in past n_init so EI drives the suggestions.
        for _ in 0..8 {
            let (cfg, f) = smac.suggest();
            let loss = objective(smac.space(), &cfg);
            smac.observe(cfg, f, loss, 1.0);
        }
        let before = smac.history().len();
        let batch = smac.suggest_batch(4);
        assert_eq!(batch.len(), 4);
        // The constant-liar pseudo-observations must be gone.
        assert_eq!(smac.history().len(), before);
        // A batch should not be four copies of one configuration.
        let distinct: std::collections::HashSet<Vec<Option<u64>>> = batch
            .iter()
            .map(|(c, _)| c.values.iter().map(|v| v.map(f64::to_bits)).collect())
            .collect();
        assert!(distinct.len() > 1, "batch collapsed to one configuration");
        // Observing the real results keeps the optimizer consistent.
        for (cfg, f) in batch {
            let loss = objective(smac.space(), &cfg);
            smac.observe(cfg, f, loss, 1.0);
        }
        assert_eq!(smac.history().len(), before + 4);
    }

    #[test]
    fn observe_hook_fires_on_real_observations_only() {
        let mut smac = Smac::new(branch_space(), 0);
        let events = Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink = Arc::clone(&events);
        smac.set_observe_hook(Arc::new(move |e: &ObserveEvent| {
            sink.lock().unwrap().push(*e);
        }));
        for _ in 0..8 {
            let (cfg, f) = smac.suggest();
            let loss = objective(smac.space(), &cfg);
            smac.observe(cfg, f, loss, 1.0);
        }
        assert_eq!(events.lock().unwrap().len(), 8);
        // Constant-liar pseudo-observations must not fire the hook…
        let batch = smac.suggest_batch(4);
        assert_eq!(events.lock().unwrap().len(), 8);
        // …but the real results observed afterwards must.
        for (cfg, f) in batch {
            let loss = objective(smac.space(), &cfg);
            smac.observe(cfg, f, loss, 1.0);
        }
        let events = events.lock().unwrap();
        assert_eq!(events.len(), 12);
        let last = events.last().unwrap();
        assert_eq!(last.n_observations, 12);
        assert!(last.incumbent_loss <= last.loss);
    }

    /// Two branches with *equal* best loss (0.1) but a 10x cost gap:
    /// branch 0 is cheap-good, branch 1 expensive-equal.
    fn symmetric_objective(space: &ConfigSpace, c: &Configuration) -> (f64, f64) {
        let m = space.to_map(c);
        let branch = *m.get("branch").unwrap_or(&0.0) as usize;
        match branch {
            0 => {
                let x = *m.get("x0").unwrap_or(&0.5);
                (0.1 + (x - 0.2).powi(2), 1.0)
            }
            _ => {
                let x = *m.get("x1").unwrap_or(&0.5);
                (0.1 + (x - 0.8).powi(2), 10.0)
            }
        }
    }

    /// Drives `opt` until the incumbent reaches `target` (or `max_n`
    /// trials), returning total evaluation cost spent.
    fn cost_to_target(opt: &mut Smac, target: f64, max_n: usize) -> f64 {
        let mut total = 0.0;
        for _ in 0..max_n {
            let (cfg, fidelity) = opt.suggest();
            let (loss, cost) = symmetric_objective(opt.space(), &cfg);
            total += cost;
            opt.observe(cfg, fidelity, loss, cost);
            if opt.history().best_loss().is_some_and(|b| b <= target) {
                break;
            }
        }
        total
    }

    #[test]
    fn cost_aware_reaches_target_cheaper_on_cheap_good_vs_expensive_equal() {
        // Aggregated across seeds, EI-per-second must reach the target at
        // strictly less total cost than cost-blind EI — the two branches
        // offer the same loss, so steering by cost is pure win.
        // Tight enough that runs outlast the cost model's warm-up — an easy
        // target is hit during the random initial design where cost-aware
        // and cost-blind coincide by construction.
        let target = 0.1005;
        let mut blind_total = 0.0;
        let mut aware_total = 0.0;
        for seed in 0..10 {
            let mut blind = Smac::new(branch_space(), seed);
            blind_total += cost_to_target(&mut blind, target, 250);
            let mut aware = Smac::new(branch_space(), seed);
            aware.set_cost_aware(true);
            aware_total += cost_to_target(&mut aware, target, 250);
        }
        assert!(
            aware_total < blind_total,
            "cost-aware spent {aware_total:.1}, cost-blind {blind_total:.1}"
        );
    }

    #[test]
    fn cost_aware_matches_cost_blind_during_initial_design() {
        // Before the surrogate activates (history < n_init), no refit runs,
        // so cost-aware and cost-blind draw from identical rng streams and
        // must produce identical suggestions. (Past that point the extra
        // cost-model fit advances the rng, so only distributional — not
        // bitwise — equivalence holds until the warm-up threshold.)
        let mut blind = Smac::new(branch_space(), 3);
        let mut aware = Smac::new(branch_space(), 3);
        aware.set_cost_aware(true);
        let n = blind.n_init;
        for _ in 0..n {
            let (cb, fb) = blind.suggest();
            let (ca, fa) = aware.suggest();
            assert_eq!(cb.values, ca.values);
            assert_eq!(fb, fa);
            let (loss, cost) = symmetric_objective(blind.space(), &cb);
            blind.observe(cb, fb, loss, cost);
            aware.observe(ca, fa, loss, cost);
        }
    }

    /// `branch_space` grown by one trailing branch choice, one conditional
    /// child for it, and one new unconditional variable with a default.
    fn grown_branch_space() -> ConfigSpace {
        let mut s = ConfigSpace::new();
        let b = s.add("branch", Domain::Cat { n: 3 }, 0.0).unwrap();
        s.add_conditional(
            "x0",
            Domain::Float { lo: 0.0, hi: 1.0, log: false },
            0.5,
            Some(crate::space::Condition { parent: b, values: vec![0] }),
        )
        .unwrap();
        s.add_conditional(
            "x1",
            Domain::Float { lo: 0.0, hi: 1.0, log: false },
            0.5,
            Some(crate::space::Condition { parent: b, values: vec![1] }),
        )
        .unwrap();
        s.add_conditional(
            "x2",
            Domain::Float { lo: 0.0, hi: 1.0, log: false },
            0.5,
            Some(crate::space::Condition { parent: b, values: vec![2] }),
        )
        .unwrap();
        s.add("extra", Domain::Cat { n: 2 }, 0.0).unwrap();
        s
    }

    #[test]
    fn grow_space_preserves_history_bitwise_and_keeps_optimizing() {
        for grow_smac in [false, true] {
            let mut opt: Box<dyn Suggest> = if grow_smac {
                Box::new(Smac::new(branch_space(), 4))
            } else {
                Box::new(RandomSearch::new(branch_space(), 4))
            };
            for _ in 0..12 {
                let (cfg, f) = opt.suggest();
                let loss = objective(opt.space(), &cfg);
                opt.observe(cfg, f, loss, 1.0);
            }
            let old_space = opt.space().clone();
            let old: Vec<(std::collections::HashMap<String, f64>, u64)> = opt
                .history()
                .observations()
                .iter()
                .map(|o| (old_space.to_map(&o.config), o.loss.to_bits()))
                .collect();
            let best_before = opt.history().best_loss().unwrap();
            opt.grow_space(grown_branch_space());
            assert_eq!(opt.space().len(), 5);
            assert_eq!(opt.history().len(), old.len());
            for (obs, (map, loss_bits)) in opt.history().observations().iter().zip(&old) {
                assert_eq!(obs.loss.to_bits(), *loss_bits);
                opt.space().validate(&obs.config).unwrap();
                let new_map = opt.space().to_map(&obs.config);
                // Shared variables keep their values bitwise…
                for (k, v) in map {
                    assert_eq!(new_map.get(k).map(|x| x.to_bits()), Some(v.to_bits()), "{k}");
                }
                // …and the new unconditional variable backfills its default.
                assert_eq!(new_map.get("extra"), Some(&0.0));
            }
            assert_eq!(opt.history().best_loss(), Some(best_before));
            // The grown engine keeps suggesting valid configurations and
            // can reach the new branch.
            for _ in 0..30 {
                let (cfg, f) = opt.suggest();
                opt.space().validate(&cfg).unwrap();
                let loss = objective(opt.space(), &cfg);
                opt.observe(cfg, f, loss, 1.0);
            }
        }
    }

    #[test]
    fn default_batch_equals_repeated_suggest() {
        let mut a = RandomSearch::new(branch_space(), 9);
        let mut b = RandomSearch::new(branch_space(), 9);
        let batch = a.suggest_batch(3);
        let serial: Vec<(Configuration, f64)> = (0..3).map(|_| b.suggest()).collect();
        assert_eq!(batch.len(), serial.len());
        for ((ca, fa), (cb, fb)) in batch.iter().zip(serial.iter()) {
            assert_eq!(ca, cb);
            assert_eq!(fa, fb);
        }
    }
}
