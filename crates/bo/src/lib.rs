//! Black-box optimization substrate for VolcanoML: conditional configuration
//! spaces, a probabilistic random-forest surrogate, expected improvement,
//! a SMAC-style Bayesian-optimization loop, random search, Successive
//! Halving / Hyperband, and MFES-HB (§3.3.1 of the paper).
//!
//! This crate is deliberately self-contained (only `rand`): the surrogate
//! forest is a compact re-implementation specialized for the unit-cube
//! encoding with a `-1` sentinel for inactive conditional parameters —
//! standard SMAC practice — rather than a reuse of the model zoo's forest.

pub mod acquisition;
pub mod cost;
pub mod history;
pub mod multifidelity;
pub mod optimizer;
pub mod space;
pub mod surrogate;

pub use cost::CostModel;
pub use history::{Observation, RunHistory};
pub use multifidelity::{Hyperband, MfesHb, SuccessiveHalving};
pub use optimizer::{ObserveEvent, ObserveHook, RandomSearch, Smac, Suggest};
pub use space::{Condition, ConfigSpace, Configuration, Domain, Hyperparameter};

/// Errors produced by the optimization substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum BoError {
    /// Malformed space definition (duplicate names, child before parent, …).
    InvalidSpace(String),
    /// A configuration does not match its space.
    InvalidConfiguration(String),
}

impl std::fmt::Display for BoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BoError::InvalidSpace(s) => write!(f, "invalid space: {s}"),
            BoError::InvalidConfiguration(s) => write!(f, "invalid configuration: {s}"),
        }
    }
}

impl std::error::Error for BoError {}

/// Convenience alias for BO results.
pub type Result<T> = std::result::Result<T, BoError>;

/// Seeded RNG helpers (duplicated from the data crate to keep this crate
/// dependency-free).
pub(crate) mod rng {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    pub fn from_seed(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }
}
