//! Run histories: observations, incumbent tracking, and best-so-far
//! trajectories (the raw material for the EU/EUI estimators in the core
//! crate's building blocks).

use crate::space::Configuration;

/// One completed evaluation.
#[derive(Debug, Clone)]
pub struct Observation {
    /// Evaluated configuration.
    pub config: Configuration,
    /// Loss (lower is better).
    pub loss: f64,
    /// Evaluation cost in budget units (e.g. seconds).
    pub cost: f64,
    /// Fidelity in `(0, 1]` (1 = full training set).
    pub fidelity: f64,
}

/// Chronological record of evaluations.
#[derive(Debug, Clone, Default)]
pub struct RunHistory {
    observations: Vec<Observation>,
    best_idx: Option<usize>,
}

impl RunHistory {
    /// Creates an empty history.
    pub fn new() -> Self {
        RunHistory::default()
    }

    /// Records an evaluation. Only full-fidelity observations compete for
    /// the incumbent (low-fidelity losses are not comparable).
    pub fn push(&mut self, obs: Observation) {
        let is_full = obs.fidelity >= 1.0 - 1e-9;
        let better = is_full
            && obs.loss.is_finite()
            && self
                .best_idx
                .is_none_or(|i| obs.loss < self.observations[i].loss);
        self.observations.push(obs);
        if better {
            self.best_idx = Some(self.observations.len() - 1);
        }
    }

    /// All observations in evaluation order.
    pub fn observations(&self) -> &[Observation] {
        &self.observations
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// True when no evaluation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// The incumbent (best full-fidelity observation), if any.
    pub fn best(&self) -> Option<&Observation> {
        self.best_idx.map(|i| &self.observations[i])
    }

    /// The incumbent loss, `None` before the first full-fidelity success.
    pub fn best_loss(&self) -> Option<f64> {
        self.best().map(|o| o.loss)
    }

    /// Best-so-far loss after each full-fidelity observation — the
    /// "utility curve" that rising-bandit bounds extrapolate.
    pub fn trajectory(&self) -> Vec<f64> {
        let mut best = f64::INFINITY;
        let mut out = Vec::new();
        for obs in &self.observations {
            if obs.fidelity >= 1.0 - 1e-9 && obs.loss.is_finite() {
                best = best.min(obs.loss);
                out.push(best);
            }
        }
        out
    }

    /// Total evaluation cost spent.
    pub fn total_cost(&self) -> f64 {
        self.observations.iter().map(|o| o.cost).sum()
    }

    /// Observations at (approximately) the given fidelity.
    pub fn at_fidelity(&self, fidelity: f64) -> Vec<&Observation> {
        self.observations
            .iter()
            .filter(|o| (o.fidelity - fidelity).abs() < 1e-9)
            .collect()
    }

    /// Merges another history into this one (used by meta-learning warm
    /// starts).
    pub fn extend_from(&mut self, other: &RunHistory) {
        for obs in &other.observations {
            self.push(obs.clone());
        }
    }

    /// Drops every observation past `len` and recomputes the incumbent.
    /// Batch suggestion uses this to retract constant-liar
    /// pseudo-observations once real results arrive.
    pub fn truncate(&mut self, len: usize) {
        if len >= self.observations.len() {
            return;
        }
        self.observations.truncate(len);
        // Recompute with `push`'s tie-breaking (first strict minimum wins).
        self.best_idx = None;
        for (i, o) in self.observations.iter().enumerate() {
            let is_full = o.fidelity >= 1.0 - 1e-9;
            let better = is_full
                && o.loss.is_finite()
                && self
                    .best_idx
                    .is_none_or(|b| o.loss < self.observations[b].loss);
            if better {
                self.best_idx = Some(i);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(loss: f64, fidelity: f64) -> Observation {
        Observation {
            config: Configuration { values: vec![Some(loss)] },
            loss,
            cost: 1.0,
            fidelity,
        }
    }

    #[test]
    fn incumbent_tracks_minimum() {
        let mut h = RunHistory::new();
        h.push(obs(0.5, 1.0));
        h.push(obs(0.3, 1.0));
        h.push(obs(0.4, 1.0));
        assert_eq!(h.best_loss(), Some(0.3));
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn low_fidelity_does_not_become_incumbent() {
        let mut h = RunHistory::new();
        h.push(obs(0.1, 0.25));
        assert_eq!(h.best_loss(), None);
        h.push(obs(0.4, 1.0));
        assert_eq!(h.best_loss(), Some(0.4));
    }

    #[test]
    fn non_finite_losses_are_ignored_for_incumbent() {
        let mut h = RunHistory::new();
        h.push(obs(f64::INFINITY, 1.0));
        assert_eq!(h.best_loss(), None);
        h.push(obs(0.2, 1.0));
        assert_eq!(h.best_loss(), Some(0.2));
    }

    #[test]
    fn trajectory_is_monotone() {
        let mut h = RunHistory::new();
        for &l in &[0.9, 0.5, 0.7, 0.4, 0.6] {
            h.push(obs(l, 1.0));
        }
        assert_eq!(h.trajectory(), vec![0.9, 0.5, 0.5, 0.4, 0.4]);
    }

    #[test]
    fn cost_accumulates() {
        let mut h = RunHistory::new();
        h.push(obs(0.5, 1.0));
        h.push(obs(0.4, 0.5));
        assert_eq!(h.total_cost(), 2.0);
    }

    #[test]
    fn at_fidelity_filters() {
        let mut h = RunHistory::new();
        h.push(obs(0.5, 0.25));
        h.push(obs(0.4, 1.0));
        h.push(obs(0.3, 0.25));
        assert_eq!(h.at_fidelity(0.25).len(), 2);
        assert_eq!(h.at_fidelity(1.0).len(), 1);
    }

    #[test]
    fn extend_from_merges_and_retracks() {
        let mut a = RunHistory::new();
        a.push(obs(0.5, 1.0));
        let mut b = RunHistory::new();
        b.push(obs(0.2, 1.0));
        a.extend_from(&b);
        assert_eq!(a.best_loss(), Some(0.2));
        assert_eq!(a.len(), 2);
    }
}
