//! Conditional configuration spaces.
//!
//! A [`ConfigSpace`] is an ordered list of hyper-parameters; each may carry a
//! [`Condition`] that activates it only when a categorical *parent* parameter
//! (declared earlier in the list) takes one of the listed values. A
//! [`Configuration`] stores one `Option<f64>` per parameter — `None` when the
//! parameter is inactive — and can be encoded to a fixed-width vector for the
//! surrogate (`-1` marks inactive slots, active values are scaled into
//! `[0, 1]`).

use crate::{BoError, Result};
use rand::rngs::StdRng;
use rand::RngExt;
use std::collections::HashMap;

/// Value domain of a hyper-parameter.
#[derive(Debug, Clone, PartialEq)]
pub enum Domain {
    /// Continuous in `[lo, hi]` (log-uniform sampling when `log`).
    Float {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
        /// Log-scale flag.
        log: bool,
    },
    /// Integer in `[lo, hi]` inclusive.
    Int {
        /// Lower bound.
        lo: i64,
        /// Upper bound.
        hi: i64,
        /// Log-scale flag.
        log: bool,
    },
    /// Categorical with `n` choices, values are indices `0..n`.
    Cat {
        /// Number of choices.
        n: usize,
    },
}

impl Domain {
    /// Number of distinct values (∞ ⇒ `None`) — used by grid-style baselines.
    pub fn cardinality(&self) -> Option<usize> {
        match self {
            Domain::Float { .. } => None,
            Domain::Int { lo, hi, .. } => Some((hi - lo + 1).max(0) as usize),
            Domain::Cat { n } => Some(*n),
        }
    }

    fn clamp(&self, v: f64) -> f64 {
        match self {
            Domain::Float { lo, hi, .. } => v.clamp(*lo, *hi),
            Domain::Int { lo, hi, .. } => v.round().clamp(*lo as f64, *hi as f64),
            Domain::Cat { n } => v.round().clamp(0.0, (*n as f64 - 1.0).max(0.0)),
        }
    }

    /// Scales a domain value into `[0, 1]` for the surrogate encoding.
    pub fn to_unit(&self, v: f64) -> f64 {
        match self {
            Domain::Float { lo, hi, log } => {
                if *log {
                    ((v.max(1e-300).ln() - lo.max(1e-300).ln())
                        / (hi.max(1e-300).ln() - lo.max(1e-300).ln()).max(1e-12))
                    .clamp(0.0, 1.0)
                } else {
                    ((v - lo) / (hi - lo).max(1e-12)).clamp(0.0, 1.0)
                }
            }
            Domain::Int { lo, hi, log } => {
                let (lo, hi, v) = (*lo as f64, *hi as f64, v);
                if *log {
                    ((v.max(1.0).ln() - lo.max(1.0).ln()) / (hi.max(1.0).ln() - lo.max(1.0).ln()).max(1e-12))
                        .clamp(0.0, 1.0)
                } else {
                    ((v - lo) / (hi - lo).max(1e-12)).clamp(0.0, 1.0)
                }
            }
            Domain::Cat { n } => {
                if *n <= 1 {
                    0.0
                } else {
                    (v / (*n as f64 - 1.0)).clamp(0.0, 1.0)
                }
            }
        }
    }

    /// Maps a unit value back into the domain (inverse of [`Domain::to_unit`]).
    pub fn from_unit(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        match self {
            Domain::Float { lo, hi, log } => {
                if *log {
                    (lo.max(1e-300).ln() + u * (hi.max(1e-300).ln() - lo.max(1e-300).ln())).exp()
                } else {
                    lo + u * (hi - lo)
                }
            }
            Domain::Int { lo, hi, log } => {
                let (lof, hif) = (*lo as f64, *hi as f64);
                let raw = if *log {
                    (lof.max(1.0).ln() + u * (hif.max(1.0).ln() - lof.max(1.0).ln())).exp()
                } else {
                    lof + u * (hif - lof)
                };
                raw.round().clamp(lof, hif)
            }
            Domain::Cat { n } => (u * (*n as f64 - 1.0)).round().clamp(0.0, (*n - 1) as f64),
        }
    }

    fn sample(&self, rng: &mut StdRng) -> f64 {
        self.from_unit(rng.random::<f64>())
    }
}

/// Activation condition: active iff the parent categorical takes one of the
/// listed choice indices.
#[derive(Debug, Clone, PartialEq)]
pub struct Condition {
    /// Index of the parent parameter in the space.
    pub parent: usize,
    /// Parent values that activate this parameter.
    pub values: Vec<usize>,
}

/// A named hyper-parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Hyperparameter {
    /// Unique name within the space.
    pub name: String,
    /// Value domain.
    pub domain: Domain,
    /// Default value (must lie in the domain).
    pub default: f64,
    /// Optional activation condition.
    pub condition: Option<Condition>,
}

/// An ordered, conditional configuration space.
#[derive(Debug, Clone, Default)]
pub struct ConfigSpace {
    params: Vec<Hyperparameter>,
    by_name: HashMap<String, usize>,
}

impl ConfigSpace {
    /// Creates an empty space.
    pub fn new() -> Self {
        ConfigSpace::default()
    }

    /// Appends an unconditional parameter. Returns its index.
    pub fn add(&mut self, name: impl Into<String>, domain: Domain, default: f64) -> Result<usize> {
        self.add_conditional(name, domain, default, None)
    }

    /// Appends a parameter with an optional condition. The parent must have
    /// been added earlier and must be categorical.
    pub fn add_conditional(
        &mut self,
        name: impl Into<String>,
        domain: Domain,
        default: f64,
        condition: Option<Condition>,
    ) -> Result<usize> {
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(BoError::InvalidSpace(format!("duplicate parameter {name}")));
        }
        if let Some(cond) = &condition {
            if cond.parent >= self.params.len() {
                return Err(BoError::InvalidSpace(format!(
                    "{name}: parent index {} not yet defined",
                    cond.parent
                )));
            }
            match self.params[cond.parent].domain {
                Domain::Cat { n } => {
                    if cond.values.iter().any(|&v| v >= n) {
                        return Err(BoError::InvalidSpace(format!(
                            "{name}: condition value out of range for parent"
                        )));
                    }
                }
                _ => {
                    return Err(BoError::InvalidSpace(format!(
                        "{name}: parent must be categorical"
                    )))
                }
            }
        }
        let clamped_default = domain.clamp(default);
        let idx = self.params.len();
        self.by_name.insert(name.clone(), idx);
        self.params.push(Hyperparameter {
            name,
            domain,
            default: clamped_default,
            condition,
        });
        Ok(idx)
    }

    /// Number of parameters (active or not).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when the space has no parameters.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Parameter list in order.
    pub fn params(&self) -> &[Hyperparameter] {
        &self.params
    }

    /// Index of a parameter by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// Whether parameter `idx` is active under the given raw values.
    fn is_active(&self, idx: usize, values: &[Option<f64>]) -> bool {
        match &self.params[idx].condition {
            None => true,
            Some(cond) => match values[cond.parent] {
                Some(v) => {
                    // Parent must itself be active.
                    self.is_active(cond.parent, values)
                        && cond.values.contains(&(v.round().max(0.0) as usize))
                }
                None => false,
            },
        }
    }

    /// The all-defaults configuration.
    pub fn default_configuration(&self) -> Configuration {
        let mut values: Vec<Option<f64>> = self.params.iter().map(|p| Some(p.default)).collect();
        self.deactivate_inactive(&mut values);
        Configuration { values }
    }

    /// Samples a configuration uniformly (respecting conditions).
    pub fn sample(&self, rng: &mut StdRng) -> Configuration {
        let mut values: Vec<Option<f64>> = Vec::with_capacity(self.params.len());
        for i in 0..self.params.len() {
            // Parents precede children, so activity is decidable on the fly.
            let active = match &self.params[i].condition {
                None => true,
                Some(cond) => match values[cond.parent] {
                    Some(v) => cond.values.contains(&(v.round().max(0.0) as usize)),
                    None => false,
                },
            };
            values.push(if active {
                Some(self.params[i].domain.sample(rng))
            } else {
                None
            });
        }
        Configuration { values }
    }

    /// Clears values of parameters whose conditions do not hold.
    fn deactivate_inactive(&self, values: &mut [Option<f64>]) {
        for i in 0..self.params.len() {
            if !self.is_active(i, values) {
                values[i] = None;
            }
        }
    }

    /// Produces a neighbor of `config` by perturbing one active parameter
    /// (local-search move for acquisition optimization).
    pub fn neighbor(&self, config: &Configuration, rng: &mut StdRng) -> Configuration {
        let active: Vec<usize> = (0..self.params.len())
            .filter(|&i| config.values[i].is_some())
            .collect();
        if active.is_empty() {
            return config.clone();
        }
        let pick = active[rng.random_range(0..active.len())];
        let mut values = config.values.clone();
        let p = &self.params[pick];
        let new_value = match &p.domain {
            Domain::Cat { n } => {
                if *n <= 1 {
                    0.0
                } else {
                    let cur = values[pick].unwrap_or(0.0).round() as usize;
                    let mut next = rng.random_range(0..*n - 1);
                    if next >= cur {
                        next += 1;
                    }
                    next as f64
                }
            }
            domain => {
                let cur_unit = domain.to_unit(values[pick].unwrap_or(p.default));
                // Gaussian step in unit space (Box–Muller, local move).
                let u1: f64 = rng.random::<f64>().max(1e-12);
                let u2: f64 = rng.random();
                let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                domain.from_unit((cur_unit + 0.2 * g).clamp(0.0, 1.0))
            }
        };
        values[pick] = Some(new_value);
        // Re-activate/deactivate children: inactive children get fresh
        // defaults when they become active.
        for i in 0..self.params.len() {
            if self.is_active(i, &values) {
                if values[i].is_none() {
                    values[i] = Some(self.params[i].default);
                }
            } else {
                values[i] = None;
            }
        }
        Configuration { values }
    }

    /// Encodes a configuration for the surrogate: one slot per parameter,
    /// active values scaled into `[0, 1]`, inactive slots `-1`.
    pub fn encode(&self, config: &Configuration) -> Vec<f64> {
        config
            .values
            .iter()
            .zip(self.params.iter())
            .map(|(v, p)| match v {
                Some(v) => p.domain.to_unit(*v),
                None => -1.0,
            })
            .collect()
    }

    /// Active `(name, value)` pairs as a map — the interface to pipeline and
    /// model factories.
    pub fn to_map(&self, config: &Configuration) -> HashMap<String, f64> {
        config
            .values
            .iter()
            .zip(self.params.iter())
            .filter_map(|(v, p)| v.map(|v| (p.name.clone(), v)))
            .collect()
    }

    /// Validates that a configuration matches the space (width, domains,
    /// activity pattern).
    pub fn validate(&self, config: &Configuration) -> Result<()> {
        if config.values.len() != self.params.len() {
            return Err(BoError::InvalidConfiguration(format!(
                "width {} vs space {}",
                config.values.len(),
                self.params.len()
            )));
        }
        for (i, (v, p)) in config.values.iter().zip(self.params.iter()).enumerate() {
            let should_be_active = self.is_active(i, &config.values);
            match (v, should_be_active) {
                (Some(_), false) => {
                    return Err(BoError::InvalidConfiguration(format!(
                        "{} is set but inactive",
                        p.name
                    )))
                }
                (None, true) => {
                    return Err(BoError::InvalidConfiguration(format!(
                        "{} is active but unset",
                        p.name
                    )))
                }
                (Some(v), true) => {
                    let clamped = p.domain.clamp(*v);
                    if (clamped - v).abs() > 1e-9 {
                        return Err(BoError::InvalidConfiguration(format!(
                            "{} = {v} outside domain",
                            p.name
                        )));
                    }
                }
                (None, false) => {}
            }
        }
        Ok(())
    }

    /// Builds a configuration from a name→value map; unset active parameters
    /// take defaults, and values are clamped into their domains.
    pub fn from_map(&self, map: &HashMap<String, f64>) -> Configuration {
        let mut values: Vec<Option<f64>> = self
            .params
            .iter()
            .map(|p| Some(p.domain.clamp(*map.get(&p.name).unwrap_or(&p.default))))
            .collect();
        self.deactivate_inactive(&mut values);
        Configuration { values }
    }
}

/// One point in a configuration space.
#[derive(Debug, Clone, PartialEq)]
pub struct Configuration {
    /// Per-parameter raw values; `None` = inactive.
    pub values: Vec<Option<f64>>,
}

impl Configuration {
    /// Value of parameter `idx` if active.
    pub fn get(&self, idx: usize) -> Option<f64> {
        self.values.get(idx).copied().flatten()
    }

    /// Stable hash key for caching (bit-exact on values).
    pub fn cache_key(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for v in &self.values {
            let bits = match v {
                Some(v) => v.to_bits(),
                None => u64::MAX,
            };
            h ^= bits;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::from_seed;

    fn toy_space() -> ConfigSpace {
        let mut s = ConfigSpace::new();
        let alg = s.add("alg", Domain::Cat { n: 3 }, 0.0).unwrap();
        s.add_conditional(
            "c_svm",
            Domain::Float { lo: 0.1, hi: 10.0, log: true },
            1.0,
            Some(Condition { parent: alg, values: vec![0] }),
        )
        .unwrap();
        s.add_conditional(
            "trees",
            Domain::Int { lo: 10, hi: 100, log: false },
            50.0,
            Some(Condition { parent: alg, values: vec![1, 2] }),
        )
        .unwrap();
        s.add("lr", Domain::Float { lo: 1e-4, hi: 1.0, log: true }, 0.01)
            .unwrap();
        s
    }

    #[test]
    fn default_configuration_respects_conditions() {
        let s = toy_space();
        let c = s.default_configuration();
        assert_eq!(c.get(0), Some(0.0));
        assert!(c.get(1).is_some()); // active (alg == 0)
        assert!(c.get(2).is_none()); // inactive
        s.validate(&c).unwrap();
    }

    #[test]
    fn sampling_respects_conditions_and_domains() {
        let s = toy_space();
        let mut rng = from_seed(0);
        for _ in 0..200 {
            let c = s.sample(&mut rng);
            s.validate(&c).unwrap();
            let alg = c.get(0).unwrap() as usize;
            if alg == 0 {
                assert!(c.get(1).is_some() && c.get(2).is_none());
                let v = c.get(1).unwrap();
                assert!((0.1..=10.0).contains(&v));
            } else {
                assert!(c.get(1).is_none() && c.get(2).is_some());
                let t = c.get(2).unwrap();
                assert!(t.fract() == 0.0 && (10.0..=100.0).contains(&t));
            }
        }
    }

    #[test]
    fn log_sampling_covers_decades() {
        let mut s = ConfigSpace::new();
        s.add("x", Domain::Float { lo: 1e-4, hi: 1.0, log: true }, 0.01)
            .unwrap();
        let mut rng = from_seed(1);
        let mut small = 0;
        for _ in 0..1000 {
            let c = s.sample(&mut rng);
            if c.get(0).unwrap() < 1e-2 {
                small += 1;
            }
        }
        // Log-uniform: ~half the draws below the geometric midpoint.
        assert!((350..=650).contains(&small), "{small}");
    }

    #[test]
    fn encode_marks_inactive_with_sentinel() {
        let s = toy_space();
        let c = s.default_configuration();
        let e = s.encode(&c);
        assert_eq!(e.len(), 4);
        assert_eq!(e[2], -1.0);
        assert!(e.iter().all(|&v| v == -1.0 || (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn unit_roundtrip() {
        let d = Domain::Float { lo: 1e-3, hi: 1e3, log: true };
        for v in [1e-3, 0.1, 1.0, 10.0, 1e3] {
            let u = d.to_unit(v);
            assert!((d.from_unit(u) - v).abs() / v < 1e-9);
        }
        let i = Domain::Int { lo: 2, hi: 20, log: false };
        assert_eq!(i.from_unit(i.to_unit(7.0)), 7.0);
        let c = Domain::Cat { n: 4 };
        for v in 0..4 {
            assert_eq!(c.from_unit(c.to_unit(v as f64)), v as f64);
        }
    }

    #[test]
    fn neighbor_stays_valid_and_differs() {
        let s = toy_space();
        let mut rng = from_seed(3);
        let base = s.default_configuration();
        let mut changed = 0;
        for _ in 0..100 {
            let n = s.neighbor(&base, &mut rng);
            s.validate(&n).unwrap();
            if n != base {
                changed += 1;
            }
        }
        assert!(changed > 90);
    }

    #[test]
    fn neighbor_activates_children_with_defaults() {
        let s = toy_space();
        let mut rng = from_seed(4);
        let base = s.default_configuration();
        // Find a neighbor that flips alg to 1 or 2: trees must become active.
        for _ in 0..500 {
            let n = s.neighbor(&base, &mut rng);
            if n.get(0).map(|v| v as usize) != Some(0) {
                assert!(n.get(2).is_some());
                assert!(n.get(1).is_none());
                return;
            }
        }
        panic!("never flipped the categorical");
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut s = ConfigSpace::new();
        s.add("x", Domain::Cat { n: 2 }, 0.0).unwrap();
        assert!(s.add("x", Domain::Cat { n: 2 }, 0.0).is_err());
    }

    #[test]
    fn child_before_parent_rejected() {
        let mut s = ConfigSpace::new();
        let r = s.add_conditional(
            "child",
            Domain::Cat { n: 2 },
            0.0,
            Some(Condition { parent: 5, values: vec![0] }),
        );
        assert!(r.is_err());
    }

    #[test]
    fn non_categorical_parent_rejected() {
        let mut s = ConfigSpace::new();
        let p = s.add("x", Domain::Float { lo: 0.0, hi: 1.0, log: false }, 0.5).unwrap();
        let r = s.add_conditional(
            "child",
            Domain::Cat { n: 2 },
            0.0,
            Some(Condition { parent: p, values: vec![0] }),
        );
        assert!(r.is_err());
    }

    #[test]
    fn validate_catches_mismatches() {
        let s = toy_space();
        let mut c = s.default_configuration();
        c.values[2] = Some(50.0); // inactive param set
        assert!(s.validate(&c).is_err());
        let mut c2 = s.default_configuration();
        c2.values[1] = Some(1e9); // out of domain
        assert!(s.validate(&c2).is_err());
    }

    #[test]
    fn from_map_and_to_map_roundtrip() {
        let s = toy_space();
        let mut m = HashMap::new();
        m.insert("alg".to_string(), 1.0);
        m.insert("trees".to_string(), 64.0);
        let c = s.from_map(&m);
        s.validate(&c).unwrap();
        let back = s.to_map(&c);
        assert_eq!(back.get("alg"), Some(&1.0));
        assert_eq!(back.get("trees"), Some(&64.0));
        assert!(!back.contains_key("c_svm"));
    }

    #[test]
    fn cache_key_distinguishes_configs() {
        let s = toy_space();
        let mut rng = from_seed(9);
        let a = s.sample(&mut rng);
        let b = s.sample(&mut rng);
        assert_eq!(a.cache_key(), a.clone().cache_key());
        if a != b {
            assert_ne!(a.cache_key(), b.cache_key());
        }
    }
}
