//! Probabilistic random-forest surrogate over encoded configurations.
//!
//! A compact regression forest specialized for SMAC-style use: inputs are the
//! unit-cube encodings produced by [`crate::ConfigSpace::encode`] (with `-1`
//! sentinels for inactive conditional parameters), predictions expose
//! mean *and* variance across trees. Split search is histogram-based: the
//! encodings are quantized once per `fit` into at most
//! [`SURROGATE_MAX_BINS`] roughly equal-frequency bins per dimension, and
//! each node draws a handful of random candidate features whose bin
//! boundaries are scanned for the lowest-MSE split. Randomized feature
//! tries keep the trees decorrelated (well-calibrated ensemble variance)
//! while the bin scan finds locally exact thresholds fast.

use rand::rngs::StdRng;
use rand::RngExt;

/// Bins per encoded dimension; encodings live in the unit cube (plus `-1`
/// sentinels), so a modest resolution loses nothing.
const SURROGATE_MAX_BINS: usize = 64;

/// Quantized view of the fitted configurations (column-major codes).
struct BinnedConfigs {
    n: usize,
    d: usize,
    /// `codes[f * n + i]` is row `i`'s bin for dimension `f`.
    codes: Vec<u8>,
    /// `cuts[f][b]` is the raw threshold between bins `b` and `b + 1`.
    cuts: Vec<Vec<f64>>,
}

impl BinnedConfigs {
    fn from_rows(xs: &[Vec<f64>]) -> BinnedConfigs {
        let n = xs.len();
        let d = xs[0].len();
        let mut codes = vec![0u8; n * d];
        let mut cuts = Vec::with_capacity(d);
        let mut sorted: Vec<f64> = Vec::with_capacity(n);
        for f in 0..d {
            sorted.clear();
            sorted.extend(xs.iter().map(|x| x[f]));
            sorted.sort_by(f64::total_cmp);
            let mut distinct: Vec<(f64, usize)> = Vec::new();
            for &v in sorted.iter() {
                match distinct.last_mut() {
                    Some((last, count)) if v - *last < 1e-12 => *count += 1,
                    _ => distinct.push((v, 1)),
                }
            }
            let feature_cuts: Vec<f64> = if distinct.len() <= SURROGATE_MAX_BINS {
                distinct.windows(2).map(|w| (w[0].0 + w[1].0) / 2.0).collect()
            } else {
                let target = n.div_ceil(SURROGATE_MAX_BINS);
                let mut c = Vec::new();
                let mut in_bin = 0usize;
                for (j, &(v, count)) in distinct.iter().enumerate() {
                    in_bin += count;
                    if in_bin >= target
                        && j + 1 < distinct.len()
                        && c.len() + 2 <= SURROGATE_MAX_BINS
                    {
                        c.push((v + distinct[j + 1].0) / 2.0);
                        in_bin = 0;
                    }
                }
                c
            };
            let col = &mut codes[f * n..(f + 1) * n];
            for (i, code) in col.iter_mut().enumerate() {
                *code = feature_cuts.partition_point(|&c| xs[i][f] > c) as u8;
            }
            cuts.push(feature_cuts);
        }
        BinnedConfigs { n, d, codes, cuts }
    }

    fn column(&self, f: usize) -> &[u8] {
        &self.codes[f * self.n..(f + 1) * self.n]
    }

    fn n_bins(&self, f: usize) -> usize {
        self.cuts[f].len() + 1
    }
}

/// One fitted surrogate tree (flattened node array).
#[derive(Debug, Clone)]
struct SurrogateTree {
    // (feature, threshold, left, right); feature == usize::MAX marks a leaf
    // whose prediction is stored in threshold.
    nodes: Vec<(usize, f64, usize, usize)>,
}

impl SurrogateTree {
    fn predict(&self, x: &[f64]) -> f64 {
        let mut i = 0usize;
        loop {
            let (feature, threshold, left, right) = self.nodes[i];
            if feature == usize::MAX {
                return threshold;
            }
            i = if x[feature] <= threshold { left } else { right };
        }
    }
}

/// Random-forest regression surrogate with predictive variance.
#[derive(Debug, Clone)]
pub struct RandomForestSurrogate {
    /// Number of trees.
    pub n_trees: usize,
    /// Minimum leaf size.
    pub min_leaf: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    trees: Vec<SurrogateTree>,
}

impl RandomForestSurrogate {
    /// Creates an unfitted surrogate with SMAC-ish defaults.
    pub fn new() -> Self {
        RandomForestSurrogate {
            n_trees: 24,
            min_leaf: 2,
            max_depth: 18,
            trees: Vec::new(),
        }
    }

    /// True once `fit` has run on at least one point.
    pub fn is_fitted(&self) -> bool {
        !self.trees.is_empty()
    }

    /// Fits the forest on encoded configurations `xs` and losses `ys`.
    pub fn fit(&mut self, xs: &[Vec<f64>], ys: &[f64], rng: &mut StdRng) {
        self.trees.clear();
        if xs.is_empty() || xs.len() != ys.len() {
            return;
        }
        let n = xs.len();
        let binned = BinnedConfigs::from_rows(xs);
        for _ in 0..self.n_trees {
            // Bootstrap sample.
            let idx: Vec<usize> = (0..n).map(|_| rng.random_range(0..n)).collect();
            let mut nodes = Vec::new();
            build_tree(
                &binned,
                ys,
                &idx,
                0,
                self.max_depth,
                self.min_leaf,
                rng,
                &mut nodes,
            );
            self.trees.push(SurrogateTree { nodes });
        }
    }

    /// Predictive mean and variance at one encoded point.
    pub fn predict(&self, x: &[f64]) -> (f64, f64) {
        if self.trees.is_empty() {
            return (0.5, 1.0); // uninformed prior
        }
        let preds: Vec<f64> = self.trees.iter().map(|t| t.predict(x)).collect();
        let mean = preds.iter().sum::<f64>() / preds.len() as f64;
        let var = preds
            .iter()
            .map(|p| (p - mean) * (p - mean))
            .sum::<f64>()
            / preds.len() as f64;
        (mean, var)
    }
}

impl Default for RandomForestSurrogate {
    fn default() -> Self {
        RandomForestSurrogate::new()
    }
}

#[allow(clippy::too_many_arguments)]
fn build_tree(
    xs: &BinnedConfigs,
    ys: &[f64],
    indices: &[usize],
    depth: usize,
    max_depth: usize,
    min_leaf: usize,
    rng: &mut StdRng,
    nodes: &mut Vec<(usize, f64, usize, usize)>,
) -> usize {
    let mean = indices.iter().map(|&i| ys[i]).sum::<f64>() / indices.len().max(1) as f64;
    let make_leaf = |nodes: &mut Vec<(usize, f64, usize, usize)>| {
        nodes.push((usize::MAX, mean, 0, 0));
        nodes.len() - 1
    };
    if depth >= max_depth || indices.len() < 2 * min_leaf {
        return make_leaf(nodes);
    }
    // Variance check.
    let var = indices
        .iter()
        .map(|&i| (ys[i] - mean) * (ys[i] - mean))
        .sum::<f64>()
        / indices.len() as f64;
    if var < 1e-14 {
        return make_leaf(nodes);
    }

    let d = xs.d;
    // Draw a handful of random candidate features; scan each one's bin
    // boundaries for the lowest weighted child MSE. (feature, bin, score)
    let mut best: Option<(usize, usize, f64)> = None;
    let tries = d.clamp(4, 24);
    let mut hist = vec![(0.0f64, 0.0f64, 0usize); SURROGATE_MAX_BINS]; // (sum, sumsq, count)
    for _ in 0..tries {
        let f = rng.random_range(0..d);
        let nb = xs.n_bins(f);
        if nb < 2 {
            continue;
        }
        hist[..nb].fill((0.0, 0.0, 0));
        let col = xs.column(f);
        let (mut ts, mut tq) = (0.0, 0.0);
        for &i in indices {
            let b = &mut hist[col[i] as usize];
            b.0 += ys[i];
            b.1 += ys[i] * ys[i];
            b.2 += 1;
            ts += ys[i];
            tq += ys[i] * ys[i];
        }
        let (mut ls, mut lq, mut lc) = (0.0, 0.0, 0usize);
        for (b, &(s, q, c)) in hist[..nb - 1].iter().enumerate() {
            ls += s;
            lq += q;
            lc += c;
            let rc = indices.len() - lc;
            if lc < min_leaf || rc < min_leaf {
                continue;
            }
            let lvar = lq / lc as f64 - (ls / lc as f64).powi(2);
            let rvar = (tq - lq) / rc as f64 - ((ts - ls) / rc as f64).powi(2);
            let score = (lc as f64 * lvar + rc as f64 * rvar) / indices.len() as f64;
            if best.is_none_or(|(_, _, bs)| score < bs) {
                best = Some((f, b, score));
            }
        }
    }
    let Some((f, bin, _)) = best else {
        return make_leaf(nodes);
    };
    let threshold = xs.cuts[f][bin];
    let col = xs.column(f);
    let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
        indices.iter().partition(|&&i| (col[i] as usize) <= bin);

    let me = nodes.len();
    nodes.push((f, threshold, 0, 0));
    let left = build_tree(xs, ys, &left_idx, depth + 1, max_depth, min_leaf, rng, nodes);
    let right = build_tree(xs, ys, &right_idx, depth + 1, max_depth, min_leaf, rng, nodes);
    nodes[me].2 = left;
    nodes[me].3 = right;
    me
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::from_seed;

    fn quadratic_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = from_seed(seed);
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.random::<f64>(), rng.random::<f64>()])
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| (x[0] - 0.3).powi(2) + 0.5 * (x[1] - 0.7).powi(2))
            .collect();
        (xs, ys)
    }

    #[test]
    fn fits_smooth_function() {
        let (xs, ys) = quadratic_data(300, 0);
        let mut s = RandomForestSurrogate::new();
        let mut rng = from_seed(1);
        s.fit(&xs, &ys, &mut rng);
        // Predict near the optimum and far from it.
        let (near, _) = s.predict(&[0.3, 0.7]);
        let (far, _) = s.predict(&[1.0, 0.0]);
        assert!(near < far, "near {near} far {far}");
    }

    #[test]
    fn unfitted_returns_prior() {
        let s = RandomForestSurrogate::new();
        let (m, v) = s.predict(&[0.0]);
        assert_eq!((m, v), (0.5, 1.0));
    }

    #[test]
    fn variance_nonnegative_and_varies() {
        let (xs, ys) = quadratic_data(100, 2);
        let mut s = RandomForestSurrogate::new();
        let mut rng = from_seed(3);
        s.fit(&xs, &ys, &mut rng);
        let mut vars = Vec::new();
        for x in &xs {
            let (_, v) = s.predict(x);
            assert!(v >= 0.0);
            vars.push(v);
        }
        assert!(vars.iter().any(|&v| v > 0.0));
    }

    #[test]
    fn handles_sentinel_encoding() {
        // Points where the second slot is -1 (inactive) vs active.
        let xs = vec![
            vec![0.1, -1.0],
            vec![0.9, -1.0],
            vec![0.1, 0.5],
            vec![0.9, 0.5],
        ];
        let ys = vec![0.0, 0.0, 1.0, 1.0];
        let mut s = RandomForestSurrogate::new();
        let mut rng = from_seed(4);
        s.fit(&xs, &ys, &mut rng);
        let (inactive, _) = s.predict(&[0.5, -1.0]);
        let (active, _) = s.predict(&[0.5, 0.5]);
        assert!(inactive < active, "{inactive} vs {active}");
    }

    #[test]
    fn single_point_fit_is_safe() {
        let mut s = RandomForestSurrogate::new();
        let mut rng = from_seed(5);
        s.fit(&[vec![0.5]], &[0.3], &mut rng);
        let (m, _) = s.predict(&[0.5]);
        assert!((m - 0.3).abs() < 1e-9);
    }

    #[test]
    fn mismatched_input_is_noop() {
        let mut s = RandomForestSurrogate::new();
        let mut rng = from_seed(6);
        s.fit(&[vec![0.5]], &[0.3, 0.4], &mut rng);
        assert!(!s.is_fitted());
    }
}
