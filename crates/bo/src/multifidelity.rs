//! Early-stopping / multi-fidelity optimizers: Successive Halving,
//! Hyperband, and MFES-HB (multi-fidelity ensemble surrogate Hyperband,
//! Li et al. 2020) — the engines the paper plugs into joint blocks for large
//! datasets (§3.3.1).
//!
//! Fidelity is the training-set fraction in `(0, 1]`; the evaluator
//! subsamples accordingly. All optimizers implement the [`Suggest`]
//! interface *including* a real `suggest_batch`: brackets are asynchronous
//! (ASHA-style), so any number of configurations may be in flight at once
//! and a rung promotes its best observed survivor as soon as enough results
//! accumulate — no rung barrier, no full-fidelity random fallback. When the
//! active brackets cannot supply a requested batch slot, the next bracket
//! (for Hyperband: the next `s`) opens early instead.

use crate::acquisition::expected_improvement;
use crate::history::{Observation, RunHistory};
use crate::optimizer::Suggest;
use crate::space::{ConfigSpace, Configuration};
use crate::surrogate::RandomForestSurrogate;
use rand::rngs::StdRng;

/// One observed result at a rung of an asynchronous bracket.
#[derive(Debug, Clone)]
struct RungResult {
    config: Configuration,
    loss: f64,
    /// Measured evaluation cost (seconds) of this trial — consulted only by
    /// cost-aware promotion.
    cost: f64,
    promoted: bool,
}

/// One asynchronous Successive-Halving bracket (ASHA-style).
///
/// Unlike the classic rung-barrier formulation, the bracket tracks a *set*
/// of in-flight `(config, rung)` entries: [`Bracket::next`] hands out work
/// (promotions first, then fresh rung-0 configurations) and
/// [`Bracket::record`] files results. A rung promotes its best *observed
/// finite* survivor as soon as `eta` observed results accumulate per
/// promotion slot; once a rung is closed (nothing more can arrive) at least
/// one survivor is promoted even when fewer than `eta` results exist, so
/// small brackets still finish their ladder. Non-finite losses (crashed or
/// timed-out trials) never count as survivors and can never climb.
#[derive(Debug, Clone)]
struct Bracket {
    /// Stable id for journal/trace attribution.
    id: u64,
    /// Fidelity per rung, ascending, last = 1.0.
    rungs: Vec<f64>,
    /// Index of `rungs[0]` in the engine's full ladder (Hyperband brackets
    /// start part-way up).
    rung_offset: usize,
    eta: usize,
    /// Rung-0 configurations not yet handed out.
    queue: Vec<Configuration>,
    /// In-flight `(config, rung)` entries awaiting observation.
    in_flight: Vec<(Configuration, usize)>,
    /// Observed results per rung.
    results: Vec<Vec<RungResult>>,
    /// When set, promotion ranks by loss-improvement per second instead of
    /// raw loss (see [`Bracket::promotable`]).
    cost_aware: bool,
}

impl Bracket {
    fn new(
        configs: Vec<Configuration>,
        rungs: Vec<f64>,
        rung_offset: usize,
        eta: usize,
        id: u64,
        cost_aware: bool,
    ) -> Bracket {
        let n_rungs = rungs.len();
        Bracket {
            id,
            rungs,
            rung_offset,
            eta: eta.max(2),
            queue: configs,
            in_flight: Vec::new(),
            results: vec![Vec::new(); n_rungs],
            cost_aware,
        }
    }

    /// Whether rung `r` can receive no further results: every upstream
    /// source of entrants is exhausted and nothing is in flight at `r`.
    fn closed(&self, r: usize) -> bool {
        if self.in_flight.iter().any(|(_, fr)| *fr == r) {
            return false;
        }
        if r == 0 {
            self.queue.is_empty()
        } else {
            self.closed(r - 1) && self.promotable(r - 1).is_none()
        }
    }

    /// Index into `results[r]` of the best observed finite configuration
    /// eligible for promotion to rung `r + 1` right now, if any.
    ///
    /// The asynchronous quota is `floor(finite_observed / eta)`; a closed
    /// rung with at least one finite result always gets a quota of ≥ 1 so
    /// under-populated brackets (Hyperband's small `n`) still promote.
    ///
    /// Cost-blind brackets rank candidates by raw loss. Cost-aware brackets
    /// rank by *loss improvement per second at this rung's measured cost* —
    /// `(worst_finite_loss − loss) / cost` — so a configuration that buys
    /// nearly the same loss at a fraction of the cost climbs first; ties
    /// (e.g. equal losses) break toward the cheaper trial, then lower loss.
    fn promotable(&self, r: usize) -> Option<usize> {
        if r + 1 >= self.rungs.len() {
            return None;
        }
        let mut finite: Vec<usize> = (0..self.results[r].len())
            .filter(|&i| self.results[r][i].loss.is_finite())
            .collect();
        if finite.is_empty() {
            return None;
        }
        if self.cost_aware {
            let worst = finite
                .iter()
                .map(|&i| self.results[r][i].loss)
                .fold(f64::NEG_INFINITY, f64::max);
            let rate = |i: usize| {
                let res = &self.results[r][i];
                (worst - res.loss) / res.cost.max(1e-9)
            };
            finite.sort_by(|&a, &b| {
                rate(b)
                    .total_cmp(&rate(a))
                    .then_with(|| self.results[r][a].cost.total_cmp(&self.results[r][b].cost))
                    .then_with(|| self.results[r][a].loss.total_cmp(&self.results[r][b].loss))
            });
        } else {
            finite.sort_by(|&a, &b| self.results[r][a].loss.total_cmp(&self.results[r][b].loss));
        }
        let promoted = self.results[r].iter().filter(|x| x.promoted).count();
        let mut quota = finite.len() / self.eta;
        if quota == 0 && self.closed(r) {
            quota = 1;
        }
        if promoted < quota {
            finite.into_iter().find(|&i| !self.results[r][i].promoted)
        } else {
            None
        }
    }

    /// All work handed out and observed, and no promotion remains. (The old
    /// single-in-flight `done()` had an `&&`/`||` precedence bug that made
    /// its `finished.len() <= 1` clause unreachable; the async predicate is
    /// simply "no work left anywhere".)
    fn done(&self) -> bool {
        self.queue.is_empty()
            && self.in_flight.is_empty()
            && (0..self.rungs.len().saturating_sub(1)).all(|r| self.promotable(r).is_none())
    }

    /// Pops the next unit of work: the most-advanced promotion available,
    /// else a fresh rung-0 configuration. Returns `(config, fidelity)`;
    /// `None` when every remaining step awaits an in-flight observation.
    fn next(&mut self) -> Option<(Configuration, f64)> {
        for r in (0..self.rungs.len().saturating_sub(1)).rev() {
            if let Some(i) = self.promotable(r) {
                self.results[r][i].promoted = true;
                let config = self.results[r][i].config.clone();
                self.in_flight.push((config.clone(), r + 1));
                return Some((config, self.rungs[r + 1]));
            }
        }
        if let Some(config) = self.queue.pop() {
            self.in_flight.push((config.clone(), 0));
            return Some((config, self.rungs[0]));
        }
        None
    }

    /// Files an observation for an in-flight entry matching `(config,
    /// fidelity)`. Returns `false` when this bracket never issued the trial
    /// (the caller then routes it to history only), so foreign observations
    /// — meta-learning warm starts, constant-liar pseudo-observations — can
    /// never distort promotion quotas.
    fn record(&mut self, config: &Configuration, fidelity: f64, loss: f64, cost: f64) -> bool {
        let pos = self.in_flight.iter().position(|(c, r)| {
            c == config && (self.rungs[*r] - fidelity).abs() < 1e-9
        });
        match pos {
            Some(pos) => {
                let (config, r) = self.in_flight.swap_remove(pos);
                self.results[r].push(RungResult {
                    config,
                    loss,
                    cost,
                    promoted: false,
                });
                true
            }
            None => false,
        }
    }

    /// Rung (in the engine's full ladder) of an in-flight `(config,
    /// fidelity)` entry.
    fn in_flight_rung(&self, config: &Configuration, fidelity: f64) -> Option<usize> {
        self.in_flight
            .iter()
            .find(|(c, r)| c == config && (self.rungs[*r] - fidelity).abs() < 1e-9)
            .map(|(_, r)| self.rung_offset + r)
    }

    /// Remaps every stored configuration (queue, in-flight, rung results)
    /// from `old` into `new` — the bracket-side half of [`Suggest::grow_space`].
    fn remap_space(&mut self, old: &ConfigSpace, new: &ConfigSpace) {
        let remap = |c: &Configuration| new.from_map(&old.to_map(c));
        for c in &mut self.queue {
            *c = remap(c);
        }
        for (c, _) in &mut self.in_flight {
            *c = remap(c);
        }
        for rung in &mut self.results {
            for res in rung {
                res.config = remap(&res.config);
            }
        }
    }
}

/// The set of concurrently active brackets behind a multi-fidelity engine.
///
/// `next` drains brackets in opening order (oldest first, so earlier
/// brackets finish their ladders before new exploration starts); `record`
/// routes an observation to the bracket that issued it and prunes completed
/// brackets.
#[derive(Debug, Default)]
struct BracketScheduler {
    brackets: Vec<Bracket>,
    next_id: u64,
}

impl BracketScheduler {
    /// Opens a new bracket over `configs` and returns its id.
    fn open(
        &mut self,
        configs: Vec<Configuration>,
        rungs: Vec<f64>,
        rung_offset: usize,
        eta: usize,
        cost_aware: bool,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.brackets
            .push(Bracket::new(configs, rungs, rung_offset, eta, id, cost_aware));
        id
    }

    /// Next unit of work from the oldest bracket able to supply one.
    fn next(&mut self) -> Option<(Configuration, f64)> {
        for bracket in &mut self.brackets {
            if let Some(pick) = bracket.next() {
                return Some(pick);
            }
        }
        None
    }

    /// Routes an observation to its issuing bracket. `false` when no active
    /// bracket has a matching in-flight entry.
    fn record(&mut self, config: &Configuration, fidelity: f64, loss: f64, cost: f64) -> bool {
        let mut matched = false;
        for bracket in &mut self.brackets {
            if bracket.record(config, fidelity, loss, cost) {
                matched = true;
                break;
            }
        }
        self.brackets.retain(|b| !b.done());
        matched
    }

    /// `(rung, bracket id)` of an in-flight suggestion.
    fn meta(&self, config: &Configuration, fidelity: f64) -> Option<(usize, u64)> {
        self.brackets
            .iter()
            .find_map(|b| b.in_flight_rung(config, fidelity).map(|r| (r, b.id)))
    }

    /// Remaps every active bracket's configurations into the grown space.
    fn remap_space(&mut self, old: &ConfigSpace, new: &ConfigSpace) {
        for bracket in &mut self.brackets {
            bracket.remap_space(old, new);
        }
    }
}

/// Canonical bitwise rendering of a configuration for scheduler-state
/// snapshots: one 16-hex-digit word per value, `-` for inactive
/// conditionals.
fn config_bits(c: &Configuration) -> String {
    c.values
        .iter()
        .map(|v| match v {
            Some(x) => format!("{:016x}", x.to_bits()),
            None => "-".to_string(),
        })
        .collect::<Vec<_>>()
        .join(",")
}

impl Bracket {
    /// Appends canonical lines describing this bracket's full occupancy:
    /// shape, pending queue, in-flight set, and per-rung results. In-flight
    /// and result lines are sorted so pooled observation timing can never
    /// perturb the snapshot.
    fn capture_state(&self, path: &str, out: &mut Vec<String>) {
        let rungs = self
            .rungs
            .iter()
            .map(|f| format!("{:016x}", f.to_bits()))
            .collect::<Vec<_>>()
            .join(",");
        out.push(format!(
            "{path} bracket={} offset={} eta={} rungs={rungs} queued={}",
            self.id,
            self.rung_offset,
            self.eta,
            self.queue.len()
        ));
        for c in &self.queue {
            out.push(format!("{path} bracket={} queue config={}", self.id, config_bits(c)));
        }
        let mut in_flight: Vec<String> = self
            .in_flight
            .iter()
            .map(|(c, r)| {
                format!("{path} bracket={} in_flight rung={r} config={}", self.id, config_bits(c))
            })
            .collect();
        in_flight.sort();
        out.append(&mut in_flight);
        for (r, results) in self.results.iter().enumerate() {
            let mut rows: Vec<String> = results
                .iter()
                .map(|res| {
                    // Cost-aware promotion ranks on cost, so cost-aware
                    // snapshots must pin it bitwise; cost-blind snapshots
                    // keep the historical format (cost is inert there).
                    let cost = if self.cost_aware {
                        format!(" cost={:016x}", res.cost.to_bits())
                    } else {
                        String::new()
                    };
                    format!(
                        "{path} bracket={} rung={r} loss={:016x} promoted={}{cost} config={}",
                        self.id,
                        res.loss.to_bits(),
                        res.promoted,
                        config_bits(&res.config)
                    )
                })
                .collect();
            rows.sort();
            out.append(&mut rows);
        }
    }
}

impl BracketScheduler {
    /// Appends every active bracket's state (in opening order) plus the id
    /// counter, so two schedulers dump identically iff their occupancy is
    /// identical.
    fn capture_state(&self, path: &str, out: &mut Vec<String>) {
        out.push(format!("{path} next_bracket_id={}", self.next_id));
        for bracket in &self.brackets {
            bracket.capture_state(path, out);
        }
    }
}

/// Running per-fidelity mean-cost table — the "per-arm cost model" behind
/// cost-aware bracket floors. Keys are fidelity bit patterns (fidelities are
/// positive, so bit order equals numeric order).
#[derive(Debug, Default, Clone)]
struct FidelityCostTable {
    /// fidelity bits → (total cost, count).
    table: std::collections::BTreeMap<u64, (f64, usize)>,
}

impl FidelityCostTable {
    /// Files one measured cost. Non-finite and non-positive costs (timed-out
    /// trials, constant-liar lies, journal rows for cached replays) carry no
    /// cost information and are dropped.
    fn record(&mut self, fidelity: f64, cost: f64) {
        if cost.is_finite() && cost > 0.0 {
            let e = self.table.entry(fidelity.to_bits()).or_insert((0.0, 0));
            e.0 += cost;
            e.1 += 1;
        }
    }

    fn mean(&self, fidelity: f64) -> Option<f64> {
        self.table
            .get(&fidelity.to_bits())
            .map(|(s, n)| s / *n as f64)
    }

    /// Lowest viable starting rung of `ladder` given measured costs: the
    /// first rung that is either unmeasured (optimism — trust the η-ladder
    /// until evidence arrives) or measured to cost at most `1/eta` of a
    /// measured full-fidelity trial. A rung whose trials cost nearly as
    /// much as full fidelity (fixed per-trial overhead dominating the
    /// subsample saving) is a waste of ladder steps, so it is skipped.
    /// When every measured rung fails the test, only full fidelity pays.
    fn floor(&self, ladder: &[f64], eta: usize) -> usize {
        let full = match self.mean(1.0) {
            Some(c) => c,
            None => return 0,
        };
        for (i, &f) in ladder.iter().enumerate().take(ladder.len().saturating_sub(1)) {
            match self.mean(f) {
                None => return i,
                Some(c) if c * eta as f64 <= full => return i,
                Some(_) => continue,
            }
        }
        ladder.len().saturating_sub(1)
    }

    /// Canonical bitwise lines for crash-resume snapshots.
    fn capture(&self, path: &str, out: &mut Vec<String>) {
        for (bits, (sum, n)) in &self.table {
            out.push(format!(
                "{path} fid_cost fidelity={bits:016x} total={:016x} n={n}",
                sum.to_bits()
            ));
        }
    }
}

/// Standard Hyperband rung ladder for `eta` and `r_min` (smallest fidelity).
fn rung_ladder(r_min: f64, eta: usize) -> Vec<f64> {
    let mut rungs = Vec::new();
    let mut r = r_min.clamp(1e-3, 1.0);
    while r < 1.0 - 1e-9 {
        rungs.push(r);
        r *= eta as f64;
    }
    rungs.push(1.0);
    rungs
}

/// Successive Halving: brackets of `n0` random configurations climb the
/// rung ladder, the top `1/eta` surviving each rung; a fresh bracket opens
/// whenever the active ones cannot supply more work (batch mode opens it
/// early rather than waiting on in-flight trials).
#[derive(Debug)]
pub struct SuccessiveHalving {
    space: ConfigSpace,
    history: RunHistory,
    sched: BracketScheduler,
    rng: StdRng,
    n0: usize,
    eta: usize,
    r_min: f64,
    cost_aware: bool,
    fid_cost: FidelityCostTable,
}

impl SuccessiveHalving {
    /// Creates an SH optimizer with `n0` initial configurations per bracket.
    pub fn new(space: ConfigSpace, n0: usize, r_min: f64, eta: usize, seed: u64) -> Self {
        SuccessiveHalving {
            space,
            history: RunHistory::new(),
            sched: BracketScheduler::default(),
            rng: crate::rng::from_seed(seed),
            n0: n0.max(2),
            eta: eta.max(2),
            r_min,
            cost_aware: false,
            fid_cost: FidelityCostTable::default(),
        }
    }

    fn open_bracket(&mut self) {
        let configs: Vec<Configuration> = (0..self.n0)
            .map(|_| self.space.sample(&mut self.rng))
            .collect();
        let ladder = rung_ladder(self.r_min, self.eta);
        // Cost-aware: start the bracket at the measured cost floor instead
        // of the fixed η-ladder bottom (see FidelityCostTable::floor).
        let offset = if self.cost_aware {
            self.fid_cost.floor(&ladder, self.eta)
        } else {
            0
        };
        self.sched
            .open(configs, ladder[offset..].to_vec(), offset, self.eta, self.cost_aware);
    }
}

impl Suggest for SuccessiveHalving {
    fn suggest(&mut self) -> (Configuration, f64) {
        self.suggest_batch(1).pop().expect("batch of one")
    }

    /// Fills all `k` slots from the bracket set, opening fresh brackets as
    /// needed — never a random full-fidelity draw.
    fn suggest_batch(&mut self, k: usize) -> Vec<(Configuration, f64)> {
        let mut out = Vec::with_capacity(k);
        while out.len() < k {
            match self.sched.next() {
                Some(pick) => out.push(pick),
                None => self.open_bracket(),
            }
        }
        out
    }

    fn observe(&mut self, config: Configuration, fidelity: f64, loss: f64, cost: f64) {
        self.sched.record(&config, fidelity, loss, cost);
        self.fid_cost.record(fidelity, cost);
        self.history.push(Observation {
            config,
            loss,
            cost,
            fidelity,
        });
    }

    fn in_flight_meta(&self, config: &Configuration, fidelity: f64) -> Option<(usize, u64)> {
        self.sched.meta(config, fidelity)
    }

    fn capture_scheduler_state(&self, path: &str, out: &mut Vec<String>) {
        if self.cost_aware {
            self.fid_cost.capture(path, out);
        }
        self.sched.capture_state(path, out);
    }

    fn set_cost_aware(&mut self, enabled: bool) {
        self.cost_aware = enabled;
    }

    fn history(&self) -> &RunHistory {
        &self.history
    }

    fn space(&self) -> &ConfigSpace {
        &self.space
    }

    /// Grows the space: history *and* bracket occupancy (queues, in-flight
    /// entries, rung results) remap into the new space so promotion
    /// bookkeeping — which matches configurations by equality — survives
    /// the expansion. Fresh brackets sample from the grown space.
    fn grow_space(&mut self, new_space: ConfigSpace) {
        self.history = crate::optimizer::remap_history(&self.space, &new_space, &self.history);
        self.sched.remap_space(&self.space, &new_space);
        self.space = new_space;
    }
}

/// Hyperband: cycles through brackets with different exploration/
/// exploitation trade-offs (different initial counts and starting rungs).
/// Brackets run concurrently: when the active ones cannot supply a batch
/// slot, the next `s` opens early.
#[derive(Debug)]
pub struct Hyperband {
    space: ConfigSpace,
    history: RunHistory,
    sched: BracketScheduler,
    rng: StdRng,
    eta: usize,
    r_min: f64,
    s: usize,     // next bracket index to open (s_max .. 0, cycling)
    s_max: usize, // number of rungs - 1
    cost_aware: bool,
    fid_cost: FidelityCostTable,
}

impl Hyperband {
    /// Creates a Hyperband optimizer with minimum fidelity `r_min`.
    pub fn new(space: ConfigSpace, r_min: f64, eta: usize, seed: u64) -> Self {
        let s_max = rung_ladder(r_min, eta).len() - 1;
        Hyperband {
            space,
            history: RunHistory::new(),
            sched: BracketScheduler::default(),
            rng: crate::rng::from_seed(seed),
            eta: eta.max(2),
            r_min,
            s: s_max,
            s_max,
            cost_aware: false,
            fid_cost: FidelityCostTable::default(),
        }
    }

    /// Shape of the bracket at the current `s`: `(n, rungs, rung_offset)`.
    /// Bracket `s` starts at rung `s_max - s` with `n = ceil(eta^s * (s+1) /
    /// (s_max+1))` configs — the standard Hyperband allocation, modestly
    /// sized for interactive use. Cost-aware runs additionally clamp the
    /// starting rung to the measured cost floor: a bracket may never start
    /// below a rung whose trials cost nearly as much as full fidelity.
    fn bracket_shape(&self) -> (usize, Vec<f64>, usize) {
        let ladder = rung_ladder(self.r_min, self.eta);
        let mut start = self.s_max - self.s;
        if self.cost_aware {
            start = start.max(self.fid_cost.floor(&ladder, self.eta));
        }
        let rungs = ladder[start..].to_vec();
        let n = ((self.eta.pow(self.s as u32) as f64) * (self.s as f64 + 1.0)
            / (self.s_max as f64 + 1.0))
            .ceil() as usize;
        (n.max(1), rungs, start)
    }

    /// Cycles `s` to the next bracket index (s_max → 0 → s_max …).
    fn advance_s(&mut self) {
        self.s = if self.s == 0 { self.s_max } else { self.s - 1 };
    }

    fn open_bracket(&mut self) {
        let (n, rungs, offset) = self.bracket_shape();
        let configs: Vec<Configuration> =
            (0..n).map(|_| self.space.sample(&mut self.rng)).collect();
        self.sched.open(configs, rungs, offset, self.eta, self.cost_aware);
        self.advance_s();
    }
}

impl Suggest for Hyperband {
    fn suggest(&mut self) -> (Configuration, f64) {
        self.suggest_batch(1).pop().expect("batch of one")
    }

    /// Fills all `k` slots from the bracket set, opening the next `s`
    /// bracket early when the active ones cannot supply more work.
    fn suggest_batch(&mut self, k: usize) -> Vec<(Configuration, f64)> {
        let mut out = Vec::with_capacity(k);
        while out.len() < k {
            match self.sched.next() {
                Some(pick) => out.push(pick),
                None => self.open_bracket(),
            }
        }
        out
    }

    fn observe(&mut self, config: Configuration, fidelity: f64, loss: f64, cost: f64) {
        self.sched.record(&config, fidelity, loss, cost);
        self.fid_cost.record(fidelity, cost);
        self.history.push(Observation {
            config,
            loss,
            cost,
            fidelity,
        });
    }

    fn in_flight_meta(&self, config: &Configuration, fidelity: f64) -> Option<(usize, u64)> {
        self.sched.meta(config, fidelity)
    }

    fn capture_scheduler_state(&self, path: &str, out: &mut Vec<String>) {
        out.push(format!("{path} hyperband.s={} s_max={}", self.s, self.s_max));
        if self.cost_aware {
            self.fid_cost.capture(path, out);
        }
        self.sched.capture_state(path, out);
    }

    fn set_cost_aware(&mut self, enabled: bool) {
        self.cost_aware = enabled;
    }

    fn history(&self) -> &RunHistory {
        &self.history
    }

    fn space(&self) -> &ConfigSpace {
        &self.space
    }

    /// Same contract as [`SuccessiveHalving::grow_space`].
    fn grow_space(&mut self, new_space: ConfigSpace) {
        self.history = crate::optimizer::remap_history(&self.space, &new_space, &self.history);
        self.sched.remap_space(&self.space, &new_space);
        self.space = new_space;
    }
}

/// MFES-HB: Hyperband whose bracket configurations are proposed by a
/// multi-fidelity *ensemble* surrogate — one RF per fidelity level, combined
/// with weights proportional to each level's rank agreement with the highest
/// fidelity observed so far.
#[derive(Debug)]
pub struct MfesHb {
    inner: Hyperband,
    /// Candidate pool size per surrogate-guided proposal.
    pub n_candidates: usize,
}

impl MfesHb {
    /// Creates an MFES-HB optimizer.
    pub fn new(space: ConfigSpace, r_min: f64, eta: usize, seed: u64) -> Self {
        MfesHb {
            inner: Hyperband::new(space, r_min, eta, seed),
            n_candidates: 100,
        }
    }

    /// Fits the per-fidelity surrogates and their ensemble weights.
    fn ensemble(&mut self) -> Option<Vec<(RandomForestSurrogate, f64)>> {
        let ladder = rung_ladder(self.inner.r_min, self.inner.eta);
        let mut members = Vec::new();
        // Reference ranking: the highest fidelity with ≥4 observations.
        let reference: Option<Vec<(Vec<f64>, f64)>> = ladder
            .iter()
            .rev()
            .map(|&f| {
                self.inner
                    .history
                    .at_fidelity(f)
                    .iter()
                    .filter(|o| o.loss.is_finite())
                    .map(|o| (self.inner.space.encode(&o.config), o.loss))
                    .collect::<Vec<_>>()
            })
            .find(|v: &Vec<(Vec<f64>, f64)>| v.len() >= 4);
        let reference = reference?;

        for &f in &ladder {
            let obs = self.inner.history.at_fidelity(f);
            let finite: Vec<_> = obs.iter().filter(|o| o.loss.is_finite()).collect();
            if finite.len() < 4 {
                continue;
            }
            let xs: Vec<Vec<f64>> = finite
                .iter()
                .map(|o| self.inner.space.encode(&o.config))
                .collect();
            let ys: Vec<f64> = finite.iter().map(|o| o.loss).collect();
            let mut surrogate = RandomForestSurrogate::new();
            surrogate.fit(&xs, &ys, &mut self.inner.rng);
            // Weight: pairwise ranking agreement with the reference set.
            let mut agree = 0usize;
            let mut total = 0usize;
            for i in 0..reference.len() {
                for j in i + 1..reference.len() {
                    let (mi, _) = surrogate.predict(&reference[i].0);
                    let (mj, _) = surrogate.predict(&reference[j].0);
                    let true_order = reference[i].1 < reference[j].1;
                    let pred_order = mi < mj;
                    total += 1;
                    if true_order == pred_order {
                        agree += 1;
                    }
                }
            }
            let weight = if total == 0 {
                0.5
            } else {
                (agree as f64 / total as f64).max(0.05)
            };
            members.push((surrogate, weight));
        }
        if members.is_empty() {
            None
        } else {
            let total: f64 = members.iter().map(|(_, w)| w).sum();
            for (_, w) in &mut members {
                *w /= total;
            }
            Some(members)
        }
    }

    /// Proposes bracket seeds via the ensemble (falls back to random).
    fn propose(&mut self, n: usize) -> Vec<Configuration> {
        let best = self.inner.history.best_loss().unwrap_or(1.0);
        match self.ensemble() {
            None => (0..n)
                .map(|_| self.inner.space.sample(&mut self.inner.rng))
                .collect(),
            Some(ensemble) => {
                let mut scored: Vec<(f64, Configuration)> = (0..self.n_candidates.max(n))
                    .map(|_| {
                        let cfg = self.inner.space.sample(&mut self.inner.rng);
                        let enc = self.inner.space.encode(&cfg);
                        let (mut mean, mut var) = (0.0, 0.0);
                        for (s, w) in &ensemble {
                            let (m, v) = s.predict(&enc);
                            mean += w * m;
                            var += w * v;
                        }
                        (expected_improvement(mean, var, best), cfg)
                    })
                    .collect();
                scored.sort_by(|a, b| b.0.total_cmp(&a.0));
                scored.into_iter().take(n).map(|(_, c)| c).collect()
            }
        }
    }

    fn open_bracket(&mut self) {
        let (n, rungs, offset) = self.inner.bracket_shape();
        let configs = self.propose(n);
        self.inner
            .sched
            .open(configs, rungs, offset, self.inner.eta, self.inner.cost_aware);
        self.inner.advance_s();
    }
}

impl Suggest for MfesHb {
    fn suggest(&mut self) -> (Configuration, f64) {
        self.suggest_batch(1).pop().expect("batch of one")
    }

    /// Fills all `k` slots from the bracket set; new brackets are seeded by
    /// surrogate-guided proposals.
    fn suggest_batch(&mut self, k: usize) -> Vec<(Configuration, f64)> {
        let mut out = Vec::with_capacity(k);
        while out.len() < k {
            match self.inner.sched.next() {
                Some(pick) => out.push(pick),
                None => self.open_bracket(),
            }
        }
        out
    }

    fn observe(&mut self, config: Configuration, fidelity: f64, loss: f64, cost: f64) {
        self.inner.observe(config, fidelity, loss, cost);
    }

    fn in_flight_meta(&self, config: &Configuration, fidelity: f64) -> Option<(usize, u64)> {
        self.inner.sched.meta(config, fidelity)
    }

    fn capture_scheduler_state(&self, path: &str, out: &mut Vec<String>) {
        self.inner.capture_scheduler_state(path, out);
    }

    fn set_cost_aware(&mut self, enabled: bool) {
        self.inner.set_cost_aware(enabled);
    }

    fn history(&self) -> &RunHistory {
        &self.inner.history
    }

    fn space(&self) -> &ConfigSpace {
        &self.inner.space
    }

    /// The per-fidelity surrogate ensemble re-encodes the (remapped)
    /// history on every fit, so delegating the remap to the inner
    /// Hyperband is sufficient.
    fn grow_space(&mut self, new_space: ConfigSpace) {
        self.inner.grow_space(new_space);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Domain;

    fn space_1d() -> ConfigSpace {
        let mut s = ConfigSpace::new();
        s.add("x", Domain::Float { lo: 0.0, hi: 1.0, log: false }, 0.5)
            .unwrap();
        s
    }

    /// Quadratic objective with fidelity-dependent noise: low fidelity is a
    /// biased but correlated estimate (the realistic multi-fidelity regime).
    fn objective(c: &Configuration, fidelity: f64) -> f64 {
        let x = c.get(0).unwrap_or(0.5);
        let true_loss = (x - 0.7).powi(2);
        true_loss + (1.0 - fidelity) * 0.05 * ((x * 37.0).sin())
    }

    fn drive<S: Suggest>(opt: &mut S, n: usize) {
        for _ in 0..n {
            let (cfg, f) = opt.suggest();
            let loss = objective(&cfg, f);
            opt.observe(cfg, f, loss, f);
        }
    }

    /// Drives an optimizer through the batch interface: suggest `k` at a
    /// time, then observe all of them (the pooled execution pattern).
    fn drive_batched<S: Suggest>(opt: &mut S, rounds: usize, k: usize) {
        for _ in 0..rounds {
            let batch = opt.suggest_batch(k);
            assert_eq!(batch.len(), k, "suggest_batch must fill every slot");
            for (cfg, f) in batch {
                let loss = objective(&cfg, f);
                opt.observe(cfg, f, loss, f);
            }
        }
    }

    #[test]
    fn rung_ladder_ends_at_one() {
        let l = rung_ladder(1.0 / 9.0, 3);
        assert_eq!(l.len(), 3);
        assert!((l[0] - 1.0 / 9.0).abs() < 1e-12);
        assert_eq!(*l.last().unwrap(), 1.0);
        assert_eq!(rung_ladder(1.0, 3), vec![1.0]);
    }

    #[test]
    fn sh_promotes_good_configs_to_full_fidelity() {
        let mut sh = SuccessiveHalving::new(space_1d(), 9, 1.0 / 9.0, 3, 0);
        drive(&mut sh, 40);
        let best = sh.history().best_loss().expect("has full-fidelity obs");
        assert!(best < 0.1, "best {best}");
        // Fidelity mix: most evaluations cheap, some full.
        let full = sh.history().at_fidelity(1.0).len();
        let cheap = sh.history().at_fidelity(1.0 / 9.0).len();
        assert!(cheap > full, "cheap {cheap} full {full}");
    }

    #[test]
    fn hyperband_cycles_brackets() {
        let mut hb = Hyperband::new(space_1d(), 1.0 / 9.0, 3, 0);
        drive(&mut hb, 60);
        assert!(hb.history().best_loss().unwrap() < 0.1);
        // All three fidelities appear.
        for f in [1.0 / 9.0, 1.0 / 3.0, 1.0] {
            assert!(
                !hb.history().at_fidelity(f).is_empty(),
                "no observations at fidelity {f}"
            );
        }
    }

    #[test]
    fn mfes_hb_runs_and_improves() {
        let mut mfes = MfesHb::new(space_1d(), 1.0 / 9.0, 3, 0);
        drive(&mut mfes, 80);
        let best = mfes.history().best_loss().unwrap();
        assert!(best < 0.05, "best {best}");
    }

    #[test]
    fn mfes_not_worse_than_hyperband_on_average() {
        // On a 1-d quadratic both converge quickly; assert the ensemble
        // guidance does not hurt (the speedup shows on larger spaces, which
        // the blocks-ablation bench measures).
        let (mut m_sum, mut h_sum) = (0.0, 0.0);
        for seed in 0..5 {
            let mut mfes = MfesHb::new(space_1d(), 1.0 / 9.0, 3, seed);
            drive(&mut mfes, 60);
            m_sum += mfes.history().best_loss().unwrap();
            let mut hb = Hyperband::new(space_1d(), 1.0 / 9.0, 3, seed);
            drive(&mut hb, 60);
            h_sum += hb.history().best_loss().unwrap();
        }
        assert!(m_sum <= h_sum + 0.05, "mfes {m_sum} vs hb {h_sum}");
    }

    #[test]
    fn suggest_observe_contract_holds() {
        // Every suggested fidelity is in the ladder; bracket bookkeeping
        // never panics over a long run.
        let mut sh = SuccessiveHalving::new(space_1d(), 5, 0.25, 2, 1);
        for _ in 0..100 {
            let (cfg, f) = sh.suggest();
            assert!(f > 0.0 && f <= 1.0);
            sh.observe(cfg, f, 0.5, f);
        }
    }

    /// Regression for the old `Bracket::done()` precedence bug: the
    /// `finished.len() <= 1` clause was unreachable (`a && b || (a && c)`
    /// parses as `(a && b) || (a && c)`), so `done()` reduced to "queue and
    /// in-flight empty at the last rung". The async bracket's predicate is
    /// "no work left anywhere" — verify it flips exactly when the last
    /// observation lands and pending promotions keep it false.
    #[test]
    fn bracket_done_flips_only_when_all_work_is_observed() {
        let mut rng = crate::rng::from_seed(7);
        let space = space_1d();
        let configs: Vec<Configuration> = (0..4).map(|_| space.sample(&mut rng)).collect();
        let mut b = Bracket::new(configs, vec![0.5, 1.0], 0, 2, 0, false);
        assert!(!b.done());
        // Hand out and observe all rung-0 work.
        let mut picks = Vec::new();
        while let Some(p) = b.next() {
            picks.push(p);
        }
        assert_eq!(picks.len(), 4);
        assert!(!b.done(), "in-flight work pending");
        for (i, (cfg, f)) in picks.into_iter().enumerate() {
            assert!(b.record(&cfg, f, 0.1 * i as f64, 1.0));
        }
        // 4 finite results at eta=2 → quota 2: promotions still pending, so
        // the bracket must NOT report done (the old bug's failure mode).
        assert!(!b.done(), "pending promotions must keep the bracket open");
        let mut promoted = Vec::new();
        while let Some((cfg, f)) = b.next() {
            assert_eq!(f, 1.0);
            promoted.push(cfg);
        }
        assert_eq!(promoted.len(), 2, "top 1/eta of 4 configs climb");
        assert!(!b.done());
        for cfg in promoted {
            assert!(b.record(&cfg, 1.0, 0.05, 1.0));
        }
        assert!(b.done(), "all rungs observed, nothing promotable");
    }

    /// NaN/infinite losses (crashed or timed-out trials) must never climb
    /// the ladder: promotion quotas count only finite results.
    #[test]
    fn non_finite_losses_never_promote() {
        let mut rng = crate::rng::from_seed(3);
        let space = space_1d();
        let configs: Vec<Configuration> = (0..4).map(|_| space.sample(&mut rng)).collect();
        let mut b = Bracket::new(configs, vec![0.25, 1.0], 0, 2, 0, false);
        let mut picks = Vec::new();
        while let Some(p) = b.next() {
            picks.push(p);
        }
        // Two crashes (NaN, +inf) and one finite survivor; one more finite.
        let losses = [f64::NAN, f64::INFINITY, 0.3, 0.1];
        let crashed: Vec<Configuration> = picks[..2].iter().map(|(c, _)| c.clone()).collect();
        for ((cfg, f), loss) in picks.into_iter().zip(losses) {
            assert!(b.record(&cfg, f, loss, 1.0));
        }
        // quota = floor(2 finite / 2) = 1: exactly one promotion, and it is
        // the best finite config — never a crashed one.
        let (promoted, f) = b.next().expect("one promotion");
        assert_eq!(f, 1.0);
        assert!(!crashed.contains(&promoted), "crashed config climbed the ladder");
        b.record(&promoted, 1.0, 0.05, 1.0);
        // The remaining finite config promotes once the rung closes
        // (closed-rung quota ≥ 1 applies only to never-promoted rungs, so
        // nothing else climbs here), and the bracket finishes.
        while let Some((cfg, f)) = b.next() {
            assert!(!crashed.contains(&cfg));
            b.record(&cfg, f, 0.2, 1.0);
        }
        assert!(b.done());
    }

    /// A bracket whose rung-0 results are ALL non-finite must terminate
    /// without promoting anything to higher fidelity.
    #[test]
    fn all_crashed_bracket_terminates_without_promotions() {
        let mut rng = crate::rng::from_seed(5);
        let space = space_1d();
        let configs: Vec<Configuration> = (0..3).map(|_| space.sample(&mut rng)).collect();
        let mut b = Bracket::new(configs, vec![0.5, 1.0], 0, 2, 0, false);
        let mut picks = Vec::new();
        while let Some(p) = b.next() {
            picks.push(p);
        }
        for (cfg, f) in picks {
            assert_eq!(f, 0.5);
            assert!(b.record(&cfg, f, f64::INFINITY, 1.0));
        }
        assert!(b.next().is_none(), "no finite survivor may promote");
        assert!(b.done());
    }

    /// Observations for configurations the bracket never issued (warm
    /// starts, pseudo-observations) must be rejected, not appended to the
    /// rung results where they would distort promotion quotas.
    #[test]
    fn foreign_observations_route_to_history_only() {
        let mut sh = SuccessiveHalving::new(space_1d(), 4, 0.5, 2, 0);
        // Warm-start via the trait default: observe a config the bracket
        // never suggested.
        let mut rng = crate::rng::from_seed(99);
        let foreign = sh.space().sample(&mut rng);
        sh.observe(foreign.clone(), 1.0, 0.01, 1.0);
        // It lands in history…
        assert_eq!(sh.history().len(), 1);
        // …but no bracket claims it, so the schedule is unchanged: the
        // engine still hands out all n0 rung-0 configs first.
        let batch = sh.suggest_batch(4);
        assert!(batch.iter().all(|(_, f)| (*f - 0.5).abs() < 1e-12));
        assert!(batch.iter().all(|(c, _)| *c != foreign));
    }

    /// The tentpole property: for every multi-fidelity engine and batch
    /// size k ∈ {1, 2, 4, 8}, `suggest_batch(k)` fills every slot with a
    /// fidelity from the η-ladder — the random full-fidelity fallback is
    /// gone — and sub-1.0 fidelities actually appear.
    #[test]
    fn suggest_batch_never_falls_back_to_random_full_fidelity() {
        let ladder = rung_ladder(1.0 / 9.0, 3);
        let on_ladder = |f: f64| ladder.iter().any(|&r| (r - f).abs() < 1e-9);
        for k in [1usize, 2, 4, 8] {
            let rounds = 48 / k.max(1);
            let check = |label: &str, fids: Vec<f64>| {
                assert!(
                    fids.iter().all(|&f| on_ladder(f)),
                    "{label} k={k}: off-ladder fidelity in {fids:?}"
                );
                assert!(
                    fids.iter().any(|&f| f < 1.0),
                    "{label} k={k}: no sub-1.0 fidelity exercised"
                );
            };
            let mut sh = SuccessiveHalving::new(space_1d(), 9, 1.0 / 9.0, 3, 42);
            drive_batched(&mut sh, rounds, k);
            check("sh", sh.history().observations().iter().map(|o| o.fidelity).collect());
            let mut hb = Hyperband::new(space_1d(), 1.0 / 9.0, 3, 42);
            drive_batched(&mut hb, rounds, k);
            check("hyperband", hb.history().observations().iter().map(|o| o.fidelity).collect());
            let mut mfes = MfesHb::new(space_1d(), 1.0 / 9.0, 3, 42);
            drive_batched(&mut mfes, rounds, k);
            check("mfes-hb", mfes.history().observations().iter().map(|o| o.fidelity).collect());
        }
    }

    /// Batched execution keeps many configurations in flight: one
    /// `suggest_batch(8)` call on a fresh bracket yields 8 *distinct*
    /// configurations (the old single-slot bracket could supply only one).
    #[test]
    fn batch_slots_hold_distinct_in_flight_configs() {
        let mut sh = SuccessiveHalving::new(space_1d(), 9, 1.0 / 9.0, 3, 1);
        let batch = sh.suggest_batch(8);
        let distinct: std::collections::HashSet<Vec<Option<u64>>> = batch
            .iter()
            .map(|(c, _)| c.values.iter().map(|v| v.map(f64::to_bits)).collect())
            .collect();
        assert_eq!(distinct.len(), 8, "batch must not repeat configurations");
        assert!(batch.iter().all(|(_, f)| (*f - 1.0 / 9.0).abs() < 1e-12));
    }

    /// The bracket schedule is a deterministic function of the seed and the
    /// observed losses — replaying the same pooled run yields an identical
    /// (config, fidelity) sequence.
    #[test]
    fn pooled_schedule_is_deterministic_across_replays() {
        let run = || {
            let mut sh = SuccessiveHalving::new(space_1d(), 6, 0.25, 2, 11);
            let mut sequence: Vec<(Vec<Option<u64>>, u64)> = Vec::new();
            for _ in 0..10 {
                let batch = sh.suggest_batch(4);
                for (cfg, f) in batch {
                    sequence.push((
                        cfg.values.iter().map(|v| v.map(f64::to_bits)).collect(),
                        f.to_bits(),
                    ));
                    let loss = objective(&cfg, f);
                    sh.observe(cfg, f, loss, f);
                }
            }
            sequence
        };
        assert_eq!(run(), run());
    }

    /// Serial and pooled drives of the same seeded engine agree on the
    /// result: same best loss within the low-fidelity noise band, and both
    /// exercise the full rung ladder up to fidelity 1.0.
    #[test]
    fn serial_and_pooled_reach_equivalent_best() {
        for seed in 0..3 {
            let mut serial = MfesHb::new(space_1d(), 1.0 / 9.0, 3, seed);
            drive(&mut serial, 48);
            let mut pooled = MfesHb::new(space_1d(), 1.0 / 9.0, 3, seed);
            drive_batched(&mut pooled, 12, 4);
            let s = serial.history().best_loss().unwrap();
            let p = pooled.history().best_loss().unwrap();
            assert!((s - p).abs() < 0.1, "seed {seed}: serial {s} vs pooled {p}");
            assert!(!pooled.history().at_fidelity(1.0).is_empty());
            assert!(!pooled.history().at_fidelity(1.0 / 9.0).is_empty());
        }
    }

    /// `in_flight_meta` reports the rung (global ladder index) and bracket
    /// id for suggestions awaiting observation, and forgets them once
    /// observed.
    #[test]
    fn in_flight_meta_tracks_rung_and_bracket() {
        let mut sh = SuccessiveHalving::new(space_1d(), 4, 1.0 / 9.0, 3, 2);
        let (cfg, f) = sh.suggest();
        let (rung, bracket) = sh.in_flight_meta(&cfg, f).expect("meta for in-flight");
        assert_eq!(rung, 0);
        assert_eq!(bracket, 0);
        sh.observe(cfg.clone(), f, 0.2, f);
        assert!(sh.in_flight_meta(&cfg, f).is_none(), "observed → no longer in flight");
        // Drive until a promotion appears; its rung must be > 0.
        let mut saw_promotion = false;
        for _ in 0..20 {
            let (cfg, f) = sh.suggest();
            if let Some((rung, _)) = sh.in_flight_meta(&cfg, f) {
                if rung > 0 {
                    assert!(f > 1.0 / 9.0);
                    saw_promotion = true;
                }
            }
            sh.observe(cfg.clone(), f, objective(&cfg, f), f);
        }
        assert!(saw_promotion, "no promotion within 20 serial steps");
    }

    /// Growing the space mid-bracket must keep the promotion bookkeeping
    /// intact: queued, in-flight, and observed configurations remap into
    /// the wider space so observations filed after the grow still match
    /// their in-flight entries and the ladder completes.
    #[test]
    fn grow_space_mid_bracket_keeps_promotions_matching() {
        let grown = || {
            let mut s = ConfigSpace::new();
            s.add("x", Domain::Float { lo: 0.0, hi: 1.0, log: false }, 0.5)
                .unwrap();
            s.add("extra", Domain::Cat { n: 3 }, 0.0).unwrap();
            s
        };
        for engine in 0..3usize {
            let mut opt: Box<dyn Suggest> = match engine {
                0 => Box::new(SuccessiveHalving::new(space_1d(), 6, 1.0 / 9.0, 3, 8)),
                1 => Box::new(Hyperband::new(space_1d(), 1.0 / 9.0, 3, 8)),
                _ => Box::new(MfesHb::new(space_1d(), 1.0 / 9.0, 3, 8)),
            };
            // Observe a few trials so the grow lands with rung results and
            // pending promotions live inside the bracket.
            for _ in 0..5 {
                let (cfg, f) = opt.suggest();
                let loss = objective(&cfg, f);
                opt.observe(cfg, f, loss, f);
            }
            let n_before = opt.history().len();
            opt.grow_space(grown());
            assert_eq!(opt.space().len(), 2, "engine {engine}");
            assert_eq!(opt.history().len(), n_before);
            for obs in opt.history().observations() {
                opt.space().validate(&obs.config).unwrap_or_else(|e| {
                    panic!("engine {engine}: remapped history invalid: {e:?}")
                });
            }
            // The ladder still promotes to full fidelity after the grow.
            for _ in 0..60 {
                let (cfg, f) = opt.suggest();
                opt.space().validate(&cfg).unwrap();
                let loss = objective(&cfg, f);
                opt.observe(cfg, f, loss, f);
            }
            assert!(
                !opt.history().at_fidelity(1.0).is_empty(),
                "engine {engine}: no full-fidelity trial after grow"
            );
            assert!(opt.history().best_loss().is_some());
        }
    }

    /// Cost-aware promotion ranks by loss-improvement per second: a config
    /// within a hair of the best at 1/100th the cost climbs first, while a
    /// cost-blind bracket fed the same results promotes the raw-loss best.
    #[test]
    fn cost_aware_promotion_prefers_improvement_per_second() {
        let mut rng = crate::rng::from_seed(21);
        let space = space_1d();
        let configs: Vec<Configuration> = (0..4).map(|_| space.sample(&mut rng)).collect();
        // (loss, cost): expensive-best, cheap-near-best, cheap-bad, cheap-mid.
        let outcomes = [(0.10, 100.0), (0.12, 1.0), (0.50, 1.0), (0.40, 1.0)];
        let run = |cost_aware: bool| -> Configuration {
            let mut b = Bracket::new(configs.clone(), vec![0.5, 1.0], 0, 2, 0, cost_aware);
            let mut picks = Vec::new();
            while let Some(p) = b.next() {
                picks.push(p);
            }
            // queue.pop() hands configs out in reverse; map results by pick
            // order so every run files identical (config, loss, cost) rows.
            for ((cfg, f), (loss, cost)) in picks.into_iter().zip(outcomes) {
                assert!(b.record(&cfg, f, loss, cost));
            }
            let (promoted, f) = b.next().expect("a promotion is due");
            assert_eq!(f, 1.0);
            promoted
        };
        let blind_pick = run(false);
        let aware_pick = run(true);
        // Identify which outcome each promoted config corresponds to: the
        // pick order is deterministic, so recompute it.
        let mut b = Bracket::new(configs.clone(), vec![0.5, 1.0], 0, 2, 0, false);
        let mut order = Vec::new();
        while let Some((cfg, _)) = b.next() {
            order.push(cfg);
        }
        let loss_of = |c: &Configuration| {
            outcomes[order.iter().position(|o| o == c).unwrap()].0
        };
        assert_eq!(loss_of(&blind_pick), 0.10, "cost-blind promotes raw best");
        assert_eq!(
            loss_of(&aware_pick),
            0.12,
            "cost-aware promotes the near-best config that is 100x cheaper"
        );
    }

    /// Cost-aware snapshots pin per-result costs bitwise; cost-blind
    /// snapshots keep the historical format with no cost tokens.
    #[test]
    fn capture_state_includes_cost_only_when_cost_aware() {
        let mut rng = crate::rng::from_seed(23);
        let space = space_1d();
        let configs: Vec<Configuration> = (0..2).map(|_| space.sample(&mut rng)).collect();
        for cost_aware in [false, true] {
            let mut b = Bracket::new(configs.clone(), vec![0.5, 1.0], 0, 2, 7, cost_aware);
            while let Some((cfg, f)) = b.next() {
                if !b.record(&cfg, f, 0.3, 2.5) {
                    break;
                }
            }
            let mut lines = Vec::new();
            b.capture_state("p", &mut lines);
            let has_cost = lines.iter().any(|l| l.contains(" cost="));
            assert_eq!(has_cost, cost_aware, "lines: {lines:?}");
        }
    }

    /// The per-fidelity cost table's bracket floor: optimistic (0) while
    /// unmeasured, skips rungs measured to cost nearly as much as full
    /// fidelity, and collapses to full-only when no rung is worth it.
    #[test]
    fn fidelity_cost_floor_tracks_measured_costs() {
        let ladder = vec![1.0 / 9.0, 1.0 / 3.0, 1.0];
        let mut t = FidelityCostTable::default();
        // Unmeasured: trust the ladder.
        assert_eq!(t.floor(&ladder, 3), 0);
        // Full fidelity measured at 9s; rung 0 measured at 1s → 1 * 3 ≤ 9
        // keeps the floor at 0.
        t.record(1.0, 9.0);
        t.record(1.0 / 9.0, 1.0);
        assert_eq!(t.floor(&ladder, 3), 0);
        // Rung 0 dominated by fixed overhead (8s ≈ full) → floor climbs to
        // the unmeasured middle rung.
        let mut t = FidelityCostTable::default();
        t.record(1.0, 9.0);
        t.record(1.0 / 9.0, 8.0);
        assert_eq!(t.floor(&ladder, 3), 1);
        // Every sub-full rung measured and not worth eta× its cost → only
        // full fidelity pays.
        let mut t = FidelityCostTable::default();
        t.record(1.0, 9.0);
        t.record(1.0 / 9.0, 8.0);
        t.record(1.0 / 3.0, 8.5);
        assert_eq!(t.floor(&ladder, 3), 2);
    }

    /// End-to-end: a cost-aware SH engine whose low rungs are measured as
    /// overhead-dominated stops opening brackets at the bottom of the
    /// ladder, while the cost-blind twin keeps paying the overhead.
    #[test]
    fn cost_aware_sh_raises_bracket_floor_under_flat_costs() {
        let cost_of = |_f: f64| 1.0; // every fidelity costs the same second
        let run = |cost_aware: bool| {
            let mut sh = SuccessiveHalving::new(space_1d(), 4, 1.0 / 9.0, 3, 5);
            if cost_aware {
                sh.set_cost_aware(true);
            }
            let mut low_fid = 0usize;
            // First bracket measures the costs; later brackets react.
            for _ in 0..60 {
                let (cfg, f) = sh.suggest();
                if f < 1.0 / 3.0 {
                    low_fid += 1;
                }
                let loss = objective(&cfg, f);
                sh.observe(cfg, f, loss, cost_of(f));
            }
            low_fid
        };
        let blind = run(false);
        let aware = run(true);
        assert!(
            aware < blind,
            "cost-aware drew {aware} bottom-rung trials, cost-blind {blind}"
        );
    }
}
