//! Early-stopping / multi-fidelity optimizers: Successive Halving,
//! Hyperband, and MFES-HB (multi-fidelity ensemble surrogate Hyperband,
//! Li et al. 2020) — the engines the paper plugs into joint blocks for large
//! datasets (§3.3.1).
//!
//! Fidelity is the training-set fraction in `(0, 1]`; the evaluator
//! subsamples accordingly. All optimizers implement the sequential
//! [`Suggest`] interface: one configuration in flight at a time.

use crate::acquisition::expected_improvement;
use crate::history::{Observation, RunHistory};
use crate::optimizer::Suggest;
use crate::space::{ConfigSpace, Configuration};
use crate::surrogate::RandomForestSurrogate;
use rand::rngs::StdRng;

/// One rung-climbing bracket of Successive Halving.
#[derive(Debug, Clone)]
struct Bracket {
    /// Fidelity per rung, ascending, last = 1.0.
    rungs: Vec<f64>,
    rung: usize,
    queue: Vec<Configuration>,
    finished: Vec<(Configuration, f64)>,
    in_flight: Option<Configuration>,
    eta: usize,
}

impl Bracket {
    fn new(configs: Vec<Configuration>, rungs: Vec<f64>, eta: usize) -> Bracket {
        Bracket {
            rungs,
            rung: 0,
            queue: configs,
            finished: Vec::new(),
            in_flight: None,
            eta: eta.max(2),
        }
    }

    fn fidelity(&self) -> f64 {
        self.rungs[self.rung]
    }

    fn done(&self) -> bool {
        self.queue.is_empty() && self.in_flight.is_none() && self.rung + 1 >= self.rungs.len()
            && self.finished.len() <= 1
            || (self.queue.is_empty()
                && self.in_flight.is_none()
                && self.rung + 1 >= self.rungs.len())
    }

    /// Pops the next configuration to evaluate, promoting survivors to the
    /// next rung when the current one is exhausted.
    fn next(&mut self) -> Option<(Configuration, f64)> {
        loop {
            if let Some(cfg) = self.queue.pop() {
                self.in_flight = Some(cfg.clone());
                return Some((cfg, self.fidelity()));
            }
            if self.in_flight.is_some() {
                // The caller must observe the in-flight config first.
                return None;
            }
            if self.rung + 1 >= self.rungs.len() {
                return None; // bracket complete
            }
            // Promote top 1/eta to the next rung.
            self.finished.sort_by(|a, b| {
                a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal)
            });
            let keep = (self.finished.len() / self.eta).max(1);
            let survivors: Vec<Configuration> = self
                .finished
                .drain(..)
                .take(keep)
                .map(|(c, _)| c)
                .collect();
            self.rung += 1;
            self.queue = survivors;
        }
    }

    fn record(&mut self, config: &Configuration, loss: f64) {
        if self.in_flight.as_ref() == Some(config) {
            self.in_flight = None;
        }
        self.finished.push((config.clone(), loss));
    }
}

/// Standard Hyperband rung ladder for `eta` and `r_min` (smallest fidelity).
fn rung_ladder(r_min: f64, eta: usize) -> Vec<f64> {
    let mut rungs = Vec::new();
    let mut r = r_min.clamp(1e-3, 1.0);
    while r < 1.0 - 1e-9 {
        rungs.push(r);
        r *= eta as f64;
    }
    rungs.push(1.0);
    rungs
}

/// Single-bracket Successive Halving: `n0` random configurations climb the
/// rung ladder, the top `1/eta` survive each rung.
#[derive(Debug)]
pub struct SuccessiveHalving {
    space: ConfigSpace,
    history: RunHistory,
    bracket: Bracket,
    rng: StdRng,
    n0: usize,
    eta: usize,
    r_min: f64,
}

impl SuccessiveHalving {
    /// Creates an SH optimizer with `n0` initial configurations.
    pub fn new(space: ConfigSpace, n0: usize, r_min: f64, eta: usize, seed: u64) -> Self {
        let mut rng = crate::rng::from_seed(seed);
        let configs: Vec<Configuration> = (0..n0.max(2)).map(|_| space.sample(&mut rng)).collect();
        let bracket = Bracket::new(configs, rung_ladder(r_min, eta), eta);
        SuccessiveHalving {
            space,
            history: RunHistory::new(),
            bracket,
            rng,
            n0: n0.max(2),
            eta: eta.max(2),
            r_min,
        }
    }
}

impl Suggest for SuccessiveHalving {
    fn suggest(&mut self) -> (Configuration, f64) {
        if let Some(next) = self.bracket.next() {
            return next;
        }
        if self.bracket.done() {
            // Start a fresh bracket.
            let configs: Vec<Configuration> = (0..self.n0)
                .map(|_| self.space.sample(&mut self.rng))
                .collect();
            self.bracket = Bracket::new(configs, rung_ladder(self.r_min, self.eta), self.eta);
            if let Some(next) = self.bracket.next() {
                return next;
            }
        }
        // In-flight conflict (shouldn't happen in sequential use): fall back
        // to a random full-fidelity draw.
        (self.space.sample(&mut self.rng), 1.0)
    }

    fn observe(&mut self, config: Configuration, fidelity: f64, loss: f64, cost: f64) {
        self.bracket.record(&config, loss);
        self.history.push(Observation {
            config,
            loss,
            cost,
            fidelity,
        });
    }

    fn history(&self) -> &RunHistory {
        &self.history
    }

    fn space(&self) -> &ConfigSpace {
        &self.space
    }
}

/// Hyperband: cycles through brackets with different exploration/exploitation
/// trade-offs (different initial counts and starting rungs).
#[derive(Debug)]
pub struct Hyperband {
    space: ConfigSpace,
    history: RunHistory,
    bracket: Bracket,
    rng: StdRng,
    eta: usize,
    r_min: f64,
    s: usize,     // current bracket index (s_max .. 0)
    s_max: usize, // number of rungs - 1
}

impl Hyperband {
    /// Creates a Hyperband optimizer with minimum fidelity `r_min`.
    pub fn new(space: ConfigSpace, r_min: f64, eta: usize, seed: u64) -> Self {
        let rungs = rung_ladder(r_min, eta);
        let s_max = rungs.len() - 1;
        let mut hb = Hyperband {
            space,
            history: RunHistory::new(),
            bracket: Bracket::new(Vec::new(), vec![1.0], eta),
            rng: crate::rng::from_seed(seed),
            eta: eta.max(2),
            r_min,
            s: s_max,
            s_max,
        };
        hb.start_bracket();
        hb
    }

    fn bracket_shape(&self) -> (usize, Vec<f64>) {
        // Bracket s starts at rung (s_max - s) with n = ceil(eta^s * (s+1) /
        // (s_max+1)) configs — the standard Hyperband allocation, modestly
        // sized for sequential use.
        let ladder = rung_ladder(self.r_min, self.eta);
        let start = self.s_max - self.s;
        let rungs = ladder[start..].to_vec();
        let n = ((self.eta.pow(self.s as u32) as f64) * (self.s as f64 + 1.0)
            / (self.s_max as f64 + 1.0))
            .ceil() as usize;
        (n.max(1), rungs)
    }

    fn start_bracket(&mut self) {
        let (n, rungs) = self.bracket_shape();
        let configs: Vec<Configuration> =
            (0..n).map(|_| self.space.sample(&mut self.rng)).collect();
        self.bracket = Bracket::new(configs, rungs, self.eta);
    }

    fn advance_bracket(&mut self) {
        self.s = if self.s == 0 { self.s_max } else { self.s - 1 };
        self.start_bracket();
    }
}

impl Suggest for Hyperband {
    fn suggest(&mut self) -> (Configuration, f64) {
        if let Some(next) = self.bracket.next() {
            return next;
        }
        self.advance_bracket();
        if let Some(next) = self.bracket.next() {
            return next;
        }
        (self.space.sample(&mut self.rng), 1.0)
    }

    fn observe(&mut self, config: Configuration, fidelity: f64, loss: f64, cost: f64) {
        self.bracket.record(&config, loss);
        self.history.push(Observation {
            config,
            loss,
            cost,
            fidelity,
        });
    }

    fn history(&self) -> &RunHistory {
        &self.history
    }

    fn space(&self) -> &ConfigSpace {
        &self.space
    }
}

/// MFES-HB: Hyperband whose bracket configurations are proposed by a
/// multi-fidelity *ensemble* surrogate — one RF per fidelity level, combined
/// with weights proportional to each level's rank agreement with the highest
/// fidelity observed so far.
#[derive(Debug)]
pub struct MfesHb {
    inner: Hyperband,
    /// Candidate pool size per surrogate-guided proposal.
    pub n_candidates: usize,
}

impl MfesHb {
    /// Creates an MFES-HB optimizer.
    pub fn new(space: ConfigSpace, r_min: f64, eta: usize, seed: u64) -> Self {
        MfesHb {
            inner: Hyperband::new(space, r_min, eta, seed),
            n_candidates: 100,
        }
    }

    /// Fits the per-fidelity surrogates and their ensemble weights.
    fn ensemble(&mut self) -> Option<Vec<(RandomForestSurrogate, f64)>> {
        let ladder = rung_ladder(self.inner.r_min, self.inner.eta);
        let mut members = Vec::new();
        // Reference ranking: the highest fidelity with ≥4 observations.
        let reference: Option<Vec<(Vec<f64>, f64)>> = ladder
            .iter()
            .rev()
            .map(|&f| {
                self.inner
                    .history
                    .at_fidelity(f)
                    .iter()
                    .map(|o| (self.inner.space.encode(&o.config), o.loss))
                    .collect::<Vec<_>>()
            })
            .find(|v: &Vec<(Vec<f64>, f64)>| v.len() >= 4);
        let reference = reference?;

        for &f in &ladder {
            let obs = self.inner.history.at_fidelity(f);
            if obs.len() < 4 {
                continue;
            }
            let xs: Vec<Vec<f64>> = obs.iter().map(|o| self.inner.space.encode(&o.config)).collect();
            let ys: Vec<f64> = obs.iter().map(|o| o.loss).collect();
            let mut surrogate = RandomForestSurrogate::new();
            surrogate.fit(&xs, &ys, &mut self.inner.rng);
            // Weight: pairwise ranking agreement with the reference set.
            let mut agree = 0usize;
            let mut total = 0usize;
            for i in 0..reference.len() {
                for j in i + 1..reference.len() {
                    let (mi, _) = surrogate.predict(&reference[i].0);
                    let (mj, _) = surrogate.predict(&reference[j].0);
                    let true_order = reference[i].1 < reference[j].1;
                    let pred_order = mi < mj;
                    total += 1;
                    if true_order == pred_order {
                        agree += 1;
                    }
                }
            }
            let weight = if total == 0 {
                0.5
            } else {
                (agree as f64 / total as f64).max(0.05)
            };
            members.push((surrogate, weight));
        }
        if members.is_empty() {
            None
        } else {
            let total: f64 = members.iter().map(|(_, w)| w).sum();
            for (_, w) in &mut members {
                *w /= total;
            }
            Some(members)
        }
    }

    /// Proposes bracket seeds via the ensemble (falls back to random).
    fn propose(&mut self, n: usize) -> Vec<Configuration> {
        let best = self.inner.history.best_loss().unwrap_or(1.0);
        match self.ensemble() {
            None => (0..n)
                .map(|_| self.inner.space.sample(&mut self.inner.rng))
                .collect(),
            Some(ensemble) => {
                let mut scored: Vec<(f64, Configuration)> = (0..self.n_candidates.max(n))
                    .map(|_| {
                        let cfg = self.inner.space.sample(&mut self.inner.rng);
                        let enc = self.inner.space.encode(&cfg);
                        let (mut mean, mut var) = (0.0, 0.0);
                        for (s, w) in &ensemble {
                            let (m, v) = s.predict(&enc);
                            mean += w * m;
                            var += w * v;
                        }
                        (expected_improvement(mean, var, best), cfg)
                    })
                    .collect();
                scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
                scored.into_iter().take(n).map(|(_, c)| c).collect()
            }
        }
    }
}

impl Suggest for MfesHb {
    fn suggest(&mut self) -> (Configuration, f64) {
        if let Some(next) = self.inner.bracket.next() {
            return next;
        }
        // New bracket: seed with surrogate-guided proposals.
        self.inner.s = if self.inner.s == 0 {
            self.inner.s_max
        } else {
            self.inner.s - 1
        };
        let (n, rungs) = self.inner.bracket_shape();
        let configs = self.propose(n);
        self.inner.bracket = Bracket::new(configs, rungs, self.inner.eta);
        if let Some(next) = self.inner.bracket.next() {
            return next;
        }
        (self.inner.space.sample(&mut self.inner.rng), 1.0)
    }

    fn observe(&mut self, config: Configuration, fidelity: f64, loss: f64, cost: f64) {
        self.inner.observe(config, fidelity, loss, cost);
    }

    fn history(&self) -> &RunHistory {
        &self.inner.history
    }

    fn space(&self) -> &ConfigSpace {
        &self.inner.space
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Domain;

    fn space_1d() -> ConfigSpace {
        let mut s = ConfigSpace::new();
        s.add("x", Domain::Float { lo: 0.0, hi: 1.0, log: false }, 0.5)
            .unwrap();
        s
    }

    /// Quadratic objective with fidelity-dependent noise: low fidelity is a
    /// biased but correlated estimate (the realistic multi-fidelity regime).
    fn objective(c: &Configuration, fidelity: f64) -> f64 {
        let x = c.get(0).unwrap_or(0.5);
        let true_loss = (x - 0.7).powi(2);
        true_loss + (1.0 - fidelity) * 0.05 * ((x * 37.0).sin())
    }

    fn drive<S: Suggest>(opt: &mut S, n: usize) {
        for _ in 0..n {
            let (cfg, f) = opt.suggest();
            let loss = objective(&cfg, f);
            opt.observe(cfg, f, loss, f);
        }
    }

    #[test]
    fn rung_ladder_ends_at_one() {
        let l = rung_ladder(1.0 / 9.0, 3);
        assert_eq!(l.len(), 3);
        assert!((l[0] - 1.0 / 9.0).abs() < 1e-12);
        assert_eq!(*l.last().unwrap(), 1.0);
        assert_eq!(rung_ladder(1.0, 3), vec![1.0]);
    }

    #[test]
    fn sh_promotes_good_configs_to_full_fidelity() {
        let mut sh = SuccessiveHalving::new(space_1d(), 9, 1.0 / 9.0, 3, 0);
        drive(&mut sh, 40);
        let best = sh.history().best_loss().expect("has full-fidelity obs");
        assert!(best < 0.1, "best {best}");
        // Fidelity mix: most evaluations cheap, some full.
        let full = sh.history().at_fidelity(1.0).len();
        let cheap = sh.history().at_fidelity(1.0 / 9.0).len();
        assert!(cheap > full, "cheap {cheap} full {full}");
    }

    #[test]
    fn hyperband_cycles_brackets() {
        let mut hb = Hyperband::new(space_1d(), 1.0 / 9.0, 3, 0);
        drive(&mut hb, 60);
        assert!(hb.history().best_loss().unwrap() < 0.1);
        // All three fidelities appear.
        for f in [1.0 / 9.0, 1.0 / 3.0, 1.0] {
            assert!(
                !hb.history().at_fidelity(f).is_empty(),
                "no observations at fidelity {f}"
            );
        }
    }

    #[test]
    fn mfes_hb_runs_and_improves() {
        let mut mfes = MfesHb::new(space_1d(), 1.0 / 9.0, 3, 0);
        drive(&mut mfes, 80);
        let best = mfes.history().best_loss().unwrap();
        assert!(best < 0.05, "best {best}");
    }

    #[test]
    fn mfes_not_worse_than_hyperband_on_average() {
        // On a 1-d quadratic both converge quickly; assert the ensemble
        // guidance does not hurt (the speedup shows on larger spaces, which
        // the blocks-ablation bench measures).
        let (mut m_sum, mut h_sum) = (0.0, 0.0);
        for seed in 0..5 {
            let mut mfes = MfesHb::new(space_1d(), 1.0 / 9.0, 3, seed);
            drive(&mut mfes, 60);
            m_sum += mfes.history().best_loss().unwrap();
            let mut hb = Hyperband::new(space_1d(), 1.0 / 9.0, 3, seed);
            drive(&mut hb, 60);
            h_sum += hb.history().best_loss().unwrap();
        }
        assert!(m_sum <= h_sum + 0.05, "mfes {m_sum} vs hb {h_sum}");
    }

    #[test]
    fn suggest_observe_contract_holds() {
        // Every suggested fidelity is in the ladder; bracket bookkeeping
        // never panics over a long run.
        let mut sh = SuccessiveHalving::new(space_1d(), 5, 0.25, 2, 1);
        for _ in 0..100 {
            let (cfg, f) = sh.suggest();
            assert!(f > 0.0 && f <= 1.0);
            sh.observe(cfg, f, 0.5, f);
        }
    }
}
