//! Cost surrogate for cost-aware acquisition (FLAML-style EI-per-second).
//!
//! A second [`RandomForestSurrogate`] fit on `log(cost)` of the same
//! observations the loss surrogate sees. Costs span orders of magnitude
//! (a decision stump at fidelity 0.1 vs. a deep forest at full fidelity),
//! so the log transform keeps the forest's MSE splits from being dominated
//! by the expensive tail. Predictions are exponentiated back and floored
//! at a small positive epsilon so EI-per-cost ratios stay finite.
//!
//! The model deliberately refuses to predict until it has seen
//! [`CostModel::WARMUP`] real cost observations — early in a run the cost
//! signal is one or two points, and dividing EI by a surrogate
//! extrapolated from those would distort the search far more than staying
//! cost-blind for a few more trials.

use crate::surrogate::RandomForestSurrogate;
use rand::rngs::StdRng;

/// Floor applied to predicted costs: keeps EI/cost finite even when the
/// forest extrapolates to (numerically) free configurations.
const MIN_PREDICTED_COST: f64 = 1e-9;

/// Random-forest model of `log(trial cost)` over encoded configurations.
#[derive(Debug)]
pub struct CostModel {
    surrogate: RandomForestSurrogate,
    /// Real (finite, positive-cost) observations seen at last refit.
    n_obs: usize,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::new()
    }
}

impl CostModel {
    /// Real cost observations required before predictions are trusted.
    pub const WARMUP: usize = 8;

    /// An unfitted cost model.
    pub fn new() -> Self {
        CostModel {
            surrogate: RandomForestSurrogate::new(),
            n_obs: 0,
        }
    }

    /// Refits on aligned `(encoding, cost)` pairs. Rows with non-finite or
    /// non-positive cost are dropped — cached replays journal cost 0 and
    /// constant-liar pseudo-observations lie at cost 0; neither is a real
    /// measurement of anything.
    pub fn refit(&mut self, xs: &[Vec<f64>], costs: &[f64], rng: &mut StdRng) {
        let mut fx: Vec<Vec<f64>> = Vec::new();
        let mut fy: Vec<f64> = Vec::new();
        for (x, &c) in xs.iter().zip(costs) {
            if c.is_finite() && c > 0.0 {
                fx.push(x.clone());
                fy.push(c.ln());
            }
        }
        self.n_obs = fx.len();
        self.surrogate.fit(&fx, &fy, rng);
    }

    /// Whether enough real cost data has been seen to trust predictions.
    pub fn ready(&self) -> bool {
        self.n_obs >= Self::WARMUP && self.surrogate.is_fitted()
    }

    /// Number of real cost observations behind the current fit.
    pub fn observations(&self) -> usize {
        self.n_obs
    }

    /// Predicted cost (seconds) for an encoded configuration, floored to a
    /// small positive value. Meaningful only when [`CostModel::ready`].
    pub fn predict_cost(&self, x: &[f64]) -> f64 {
        let (log_mean, _) = self.surrogate.predict(x);
        log_mean.exp().max(MIN_PREDICTED_COST)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::from_seed;

    fn grid(costs: impl Fn(f64) -> f64, n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| costs(x[0])).collect();
        (xs, ys)
    }

    #[test]
    fn warmup_gate_holds_until_enough_real_observations() {
        let mut cm = CostModel::new();
        assert!(!cm.ready());
        let mut rng = from_seed(0);
        let (xs, ys) = grid(|x| 1.0 + x, CostModel::WARMUP - 1);
        cm.refit(&xs, &ys, &mut rng);
        assert!(!cm.ready(), "below warm-up threshold must stay not-ready");
        let (xs, ys) = grid(|x| 1.0 + x, CostModel::WARMUP);
        cm.refit(&xs, &ys, &mut rng);
        assert!(cm.ready());
    }

    #[test]
    fn zero_and_infinite_costs_are_excluded_from_the_fit() {
        let mut cm = CostModel::new();
        let mut rng = from_seed(1);
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 19.0]).collect();
        // Half the rows are cache-replay zeros / timed-out infs.
        let ys: Vec<f64> = (0..20)
            .map(|i| match i % 4 {
                0 => 0.0,
                1 => f64::INFINITY,
                _ => 2.0,
            })
            .collect();
        cm.refit(&xs, &ys, &mut rng);
        assert_eq!(cm.observations(), 10);
        assert!(cm.ready());
        // All real costs are 2.0; the prediction must reflect that, not be
        // dragged toward 0 by the excluded rows.
        let p = cm.predict_cost(&[0.5]);
        assert!((p - 2.0).abs() < 0.5, "predicted {p}, want ≈ 2.0");
    }

    #[test]
    fn predicts_orders_of_magnitude_separation() {
        let mut cm = CostModel::new();
        let mut rng = from_seed(2);
        // Cheap region (x < 0.5): cost ~0.01; expensive region: cost ~10.
        let (xs, ys) = grid(|x| if x < 0.5 { 0.01 } else { 10.0 }, 40);
        cm.refit(&xs, &ys, &mut rng);
        assert!(cm.ready());
        let cheap = cm.predict_cost(&[0.1]);
        let dear = cm.predict_cost(&[0.9]);
        assert!(
            dear > cheap * 10.0,
            "cost model must separate regimes: cheap={cheap} dear={dear}"
        );
    }

    #[test]
    fn predictions_are_floored_positive() {
        let mut cm = CostModel::new();
        let mut rng = from_seed(3);
        let (xs, ys) = grid(|_| 1e-300_f64.max(f64::MIN_POSITIVE), 12);
        cm.refit(&xs, &ys, &mut rng);
        let p = cm.predict_cost(&[0.5]);
        assert!(p > 0.0 && p.is_finite());
    }
}
