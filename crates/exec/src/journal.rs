//! The JSONL trial journal.
//!
//! One line per trial, machine-readable, append-only. Schema (all keys
//! always present, stable order; `schema` is the row-format version,
//! currently [`JOURNAL_SCHEMA_VERSION`]):
//!
//! ```json
//! {"schema":1,"trial":17,"worker":2,"start_s":0.0132,"end_s":0.0518,
//!  "fidelity":1.0,"rung":2,"bracket":0,"loss":0.2184,"cost":0.0386,
//!  "cached":false,"fe_cached":true,"panicked":false,"timed_out":false,
//!  "arm":"algorithm=1","digest":"9f3c2a11d04b77e6"}
//! ```
//!
//! `start_s`/`end_s` are seconds since the journal was opened (monotonic
//! clock), `cost` is the evaluator-measured training wall time, `loss` is
//! serialized as `"inf"` when infinite so the file stays valid JSON. All
//! floats use Rust's shortest round-trip `Display`, so a parsed row is
//! bit-identical to the recorded one — the property the crash-resume
//! replay path relies on. `rung`/`bracket` attribute the trial to a
//! multi-fidelity scheduler: the rung index in the engine's full η-ladder
//! and the issuing bracket's stable id, both `-1` when the trial was not
//! scheduled by a multi-fidelity engine (full-fidelity engines, warm
//! starts, seeds). `arm` is the bandit-arm label of the conditioning pull
//! that issued the trial (empty when no arm was in scope) and `digest` is
//! the evaluator's stable assignment hash rendered as 16 hex digits (empty
//! when unknown) — both join journal rows to `volcanoml-obs` trace spans,
//! which carry the same `trial` id, arm, and digest.
//!
//! Schema version 2 adds a second row kind, the *space expansion* row,
//! discriminated by an `"event"` key (trial rows carry no `event` key):
//!
//! ```json
//! {"schema":2,"event":"expansion","stage":1,"name":"transform_stage",
//!  "trigger_eui":0.00042,"trial":23}
//! ```
//!
//! `stage` is the space's stage number after applying the expansion (stage 0
//! is the seed space), `name` the expansion's ladder name, `trigger_eui` the
//! plateau EUI reading that fired it, and `trial` the number of trials
//! journaled before the expansion landed — which orders expansions relative
//! to trial rows for reporting. Trial rows are unchanged from version 1, so
//! version-1 trial rows remain readable.
//!
//! Durability: the journal is `Sync` (workers append concurrently through
//! an internal mutex) and the file mirror flushes periodically — every
//! [`Journal::set_flush_policy`] rows or seconds, plus on [`Journal::flush`]
//! and on drop — so a `kill -9` loses at most the last flush window, never
//! the whole buffer. [`Journal::resume_from_path`] reopens an existing
//! journal after a crash: it replays every complete row, truncates a torn
//! final line (the hard-kill signature), continues trial ids past the
//! largest replayed id, and keeps `elapsed_s` monotone across the restart.
//! Rows with an unknown `schema` version (or none at all) are rejected
//! with a clear error rather than silently misread.

use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Version stamped into every journal row's `schema` field. Bump when the
/// row format changes incompatibly; [`Journal::resume_from_path`] refuses
/// to replay rows from other versions.
pub const JOURNAL_SCHEMA_VERSION: u64 = 2;

/// Schema versions whose trial rows this build can read. Version 2 only
/// *added* the expansion row kind; trial rows are identical across both.
const READABLE_SCHEMA_VERSIONS: [u64; 2] = [1, 2];

/// Default flush threshold: rows buffered before an automatic flush.
const DEFAULT_FLUSH_ROWS: usize = 16;

/// Default flush threshold: time since the last flush.
const DEFAULT_FLUSH_INTERVAL: Duration = Duration::from_secs(1);

/// One trial's journal entry.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRecord {
    /// Monotonically increasing trial id (unique per evaluator).
    pub trial_id: u64,
    /// Worker that executed the trial (0 for serial execution).
    pub worker: usize,
    /// Trial start, seconds since the journal epoch.
    pub start_s: f64,
    /// Trial end, seconds since the journal epoch.
    pub end_s: f64,
    /// Fidelity the trial ran at.
    pub fidelity: f64,
    /// Rung index in the scheduler's full η-ladder, `-1` when the trial was
    /// not issued by a multi-fidelity engine.
    pub rung: i64,
    /// Stable id of the issuing bracket, `-1` when not bracket-scheduled.
    pub bracket: i64,
    /// Observed loss (`INFINITY` for failed/panicked/timed-out trials).
    pub loss: f64,
    /// Evaluation cost in seconds (0 for cache hits and timeouts).
    pub cost: f64,
    /// Whether the result came from the evaluator cache.
    pub cached: bool,
    /// Whether the trial reused a fitted FE transform from the evaluator's
    /// cross-trial FE cache (false on full result-cache hits).
    pub fe_cached: bool,
    /// Whether the trial panicked.
    pub panicked: bool,
    /// Whether the trial exceeded its deadline and was abandoned.
    pub timed_out: bool,
    /// Bandit-arm label of the pull that issued the trial (e.g.
    /// `algorithm=1`), empty when no arm was in scope.
    pub arm: String,
    /// Stable assignment digest as 16 lowercase hex digits, empty when
    /// unknown. Matches the `digest` field on obs trace spans.
    pub digest: String,
}

impl TrialRecord {
    /// Renders the record as one JSON line (without trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"schema\":{},\"trial\":{},\"worker\":{},\"start_s\":{},\"end_s\":{},\
             \"fidelity\":{},\"rung\":{},\"bracket\":{},\"loss\":{},\
             \"cost\":{},\"cached\":{},\
             \"fe_cached\":{},\"panicked\":{},\"timed_out\":{},\
             \"arm\":\"{}\",\"digest\":\"{}\"}}",
            JOURNAL_SCHEMA_VERSION,
            self.trial_id,
            self.worker,
            json_f64(self.start_s),
            json_f64(self.end_s),
            json_f64(self.fidelity),
            self.rung,
            self.bracket,
            json_f64(self.loss),
            json_f64(self.cost),
            self.cached,
            self.fe_cached,
            self.panicked,
            self.timed_out,
            json_str(&self.arm),
            json_str(&self.digest)
        )
    }

    /// Parses one journal line back into a record. Unknown keys are
    /// ignored (forward compatibility); missing required keys, malformed
    /// values, and rows whose `schema` version this build cannot read are
    /// errors.
    pub fn from_json(line: &str) -> Result<TrialRecord, String> {
        let fields = parse_flat_object(line)?;
        check_schema(&fields)?;
        if field(&fields, "event").is_some() {
            return Err("row is an event row, not a trial row".to_string());
        }
        let req = |key: &str| {
            field(&fields, key).ok_or_else(|| format!("missing required key \"{key}\""))
        };
        Ok(TrialRecord {
            trial_id: as_u64(req("trial")?, "trial")?,
            worker: as_u64(req("worker")?, "worker")? as usize,
            start_s: as_f64(req("start_s")?, "start_s")?,
            end_s: as_f64(req("end_s")?, "end_s")?,
            fidelity: as_f64(req("fidelity")?, "fidelity")?,
            rung: as_i64(req("rung")?, "rung")?,
            bracket: as_i64(req("bracket")?, "bracket")?,
            loss: as_f64(req("loss")?, "loss")?,
            cost: as_f64(req("cost")?, "cost")?,
            cached: as_bool(req("cached")?, "cached")?,
            fe_cached: as_bool(req("fe_cached")?, "fe_cached")?,
            panicked: as_bool(req("panicked")?, "panicked")?,
            timed_out: as_bool(req("timed_out")?, "timed_out")?,
            arm: as_string(req("arm")?, "arm")?,
            digest: as_string(req("digest")?, "digest")?,
        })
    }
}

/// One space-expansion journal entry (schema version 2; see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct ExpansionRecord {
    /// Stage number after applying the expansion (stage 0 = seed space).
    pub stage: u64,
    /// The expansion's name in the growth ladder.
    pub name: String,
    /// Plateau EUI reading that triggered the expansion.
    pub trigger_eui: f64,
    /// Number of trials journaled before the expansion landed — orders
    /// expansion rows relative to trial rows.
    pub trial: u64,
}

impl ExpansionRecord {
    /// Renders the record as one JSON line (without trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"schema\":{},\"event\":\"expansion\",\"stage\":{},\"name\":\"{}\",\
             \"trigger_eui\":{},\"trial\":{}}}",
            JOURNAL_SCHEMA_VERSION,
            self.stage,
            json_str(&self.name),
            json_f64(self.trigger_eui),
            self.trial
        )
    }

    /// Parses one expansion row back, bit-exactly (same float round-trip
    /// guarantee as trial rows).
    pub fn from_json(line: &str) -> Result<ExpansionRecord, String> {
        let fields = parse_flat_object(line)?;
        check_schema(&fields)?;
        match field(&fields, "event") {
            Some(Val::Str(e)) if e == "expansion" => {}
            Some(_) => return Err("unknown event kind in journal row".to_string()),
            None => return Err("row is a trial row, not an event row".to_string()),
        }
        let req = |key: &str| {
            field(&fields, key).ok_or_else(|| format!("missing required key \"{key}\""))
        };
        Ok(ExpansionRecord {
            stage: as_u64(req("stage")?, "stage")?,
            name: as_string(req("name")?, "name")?,
            trigger_eui: as_f64(req("trigger_eui")?, "trigger_eui")?,
            trial: as_u64(req("trial")?, "trial")?,
        })
    }
}

/// Any journal row, dispatched on the `event` discriminator.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRow {
    /// A trial row (no `event` key).
    Trial(TrialRecord),
    /// A space-expansion row (`"event":"expansion"`).
    Expansion(ExpansionRecord),
}

impl JournalRow {
    /// Parses one journal line into the right row kind.
    pub fn from_json(line: &str) -> Result<JournalRow, String> {
        let fields = parse_flat_object(line)?;
        check_schema(&fields)?;
        match field(&fields, "event") {
            None => TrialRecord::from_json(line).map(JournalRow::Trial),
            Some(Val::Str(e)) if e == "expansion" => {
                ExpansionRecord::from_json(line).map(JournalRow::Expansion)
            }
            Some(Val::Str(e)) => Err(format!("unknown journal event kind \"{e}\"")),
            Some(_) => Err("key \"event\": expected a string".to_string()),
        }
    }

    /// Renders the row as one JSON line.
    pub fn to_json(&self) -> String {
        match self {
            JournalRow::Trial(r) => r.to_json(),
            JournalRow::Expansion(r) => r.to_json(),
        }
    }
}

/// Validates a row's `schema` field against the versions this build reads.
fn check_schema(fields: &[(String, Val)]) -> Result<(), String> {
    let schema = match field(fields, "schema") {
        None => {
            return Err(
                "row has no \"schema\" field (journal predates versioned rows)".to_string(),
            )
        }
        Some(v) => as_u64(v, "schema")?,
    };
    if !READABLE_SCHEMA_VERSIONS.contains(&schema) {
        return Err(format!(
            "unsupported journal schema version {schema} \
             (this build reads versions {READABLE_SCHEMA_VERSIONS:?})"
        ));
    }
    Ok(())
}

/// Escapes a string for embedding in a JSON document.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// JSON has no Infinity/NaN literals; encode them as strings.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else if v.is_nan() {
        "\"nan\"".to_string()
    } else if v > 0.0 {
        "\"inf\"".to_string()
    } else {
        "\"-inf\"".to_string()
    }
}

/// One scalar value in a journal row.
enum Val {
    Num(f64),
    Bool(bool),
    Str(String),
}

/// Looks up a key in the parsed field list.
fn field<'a>(fields: &'a [(String, Val)], key: &str) -> Option<&'a Val> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn as_f64(v: &Val, key: &str) -> Result<f64, String> {
    match v {
        Val::Num(x) => Ok(*x),
        Val::Str(s) => match s.as_str() {
            "inf" => Ok(f64::INFINITY),
            "-inf" => Ok(f64::NEG_INFINITY),
            "nan" => Ok(f64::NAN),
            other => Err(format!("key \"{key}\": expected a number, got \"{other}\"")),
        },
        Val::Bool(_) => Err(format!("key \"{key}\": expected a number, got a bool")),
    }
}

fn as_u64(v: &Val, key: &str) -> Result<u64, String> {
    match v {
        Val::Num(x) if x.fract() == 0.0 && *x >= 0.0 => Ok(*x as u64),
        _ => Err(format!("key \"{key}\": expected a non-negative integer")),
    }
}

fn as_i64(v: &Val, key: &str) -> Result<i64, String> {
    match v {
        Val::Num(x) if x.fract() == 0.0 => Ok(*x as i64),
        _ => Err(format!("key \"{key}\": expected an integer")),
    }
}

fn as_bool(v: &Val, key: &str) -> Result<bool, String> {
    match v {
        Val::Bool(b) => Ok(*b),
        _ => Err(format!("key \"{key}\": expected true/false")),
    }
}

fn as_string(v: &Val, key: &str) -> Result<String, String> {
    match v {
        Val::Str(s) => Ok(s.clone()),
        _ => Err(format!("key \"{key}\": expected a string")),
    }
}

/// Minimal scanner for the flat (no nesting) JSON objects journal rows
/// are. Kept local so this crate stays dependency-free and below
/// `volcanoml-obs` in the workspace graph.
struct Scanner<'a> {
    src: &'a str,
    s: &'a [u8],
    i: usize,
}

impl<'a> Scanner<'a> {
    fn new(src: &'a str) -> Scanner<'a> {
        Scanner {
            src,
            s: src.as_bytes(),
            i: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.i))
        }
    }

    fn expect_lit(&mut self, lit: &str) -> Result<(), String> {
        if self.s[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(format!("expected `{lit}` at byte {}", self.i))
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            self.i += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return Err("unterminated escape".to_string());
                    };
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.i + 4 > self.s.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex = &self.src[self.i..self.i + 4];
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            self.i += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("bad \\u codepoint {code}"))?,
                            );
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: step back and take the whole char.
                    self.i -= 1;
                    let c = self.src[self.i..].chars().next().expect("valid utf-8");
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<f64, String> {
        let start = self.i;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.i += 1;
            } else {
                break;
            }
        }
        if self.i == start {
            return Err(format!("expected a value at byte {start}"));
        }
        self.src[start..self.i]
            .parse::<f64>()
            .map_err(|e| format!("bad number `{}`: {e}", &self.src[start..self.i]))
    }

    fn parse_value(&mut self) -> Result<Val, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => Ok(Val::Str(self.parse_string()?)),
            Some(b't') => {
                self.expect_lit("true")?;
                Ok(Val::Bool(true))
            }
            Some(b'f') => {
                self.expect_lit("false")?;
                Ok(Val::Bool(false))
            }
            Some(_) => Ok(Val::Num(self.parse_number()?)),
            None => Err("unexpected end of line".to_string()),
        }
    }
}

/// Parses one flat JSON object (string/number/bool values only) into its
/// key/value pairs, in document order. Errors on nesting, trailing
/// garbage, or truncation — the caller decides whether a failure means a
/// torn tail or real corruption.
fn parse_flat_object(line: &str) -> Result<Vec<(String, Val)>, String> {
    let mut sc = Scanner::new(line);
    sc.expect(b'{')?;
    let mut fields = Vec::new();
    sc.skip_ws();
    if sc.peek() == Some(b'}') {
        sc.i += 1;
    } else {
        loop {
            sc.skip_ws();
            let key = sc.parse_string()?;
            sc.expect(b':')?;
            let val = sc.parse_value()?;
            fields.push((key, val));
            sc.skip_ws();
            match sc.peek() {
                Some(b',') => sc.i += 1,
                Some(b'}') => {
                    sc.i += 1;
                    break;
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", sc.i)),
            }
        }
    }
    sc.skip_ws();
    if sc.i != sc.s.len() {
        return Err(format!("trailing garbage at byte {}", sc.i));
    }
    Ok(fields)
}

/// Thread-safe JSONL journal of executed trials.
pub struct Journal {
    epoch: Instant,
    /// Seconds already elapsed when the journal was (re)opened — nonzero
    /// only after [`Journal::resume_from_path`], so `elapsed_s` stays
    /// monotone across a crash-restart.
    epoch_offset: f64,
    next_id: AtomicU64,
    /// Whether resume dropped a torn (incompletely written) final line.
    torn_tail: bool,
    /// Number of rows replayed from disk at resume time.
    resumed: usize,
    state: Mutex<JournalState>,
}

struct JournalState {
    lines: Vec<TrialRecord>,
    /// Space-expansion rows, in append order; each row's `trial` field
    /// orders it relative to `lines`.
    expansions: Vec<ExpansionRecord>,
    file: Option<std::io::BufWriter<std::fs::File>>,
    /// Rows written since the last flush.
    unflushed: usize,
    last_flush: Instant,
    flush_rows: usize,
    flush_interval: Duration,
    /// Flush durations (seconds) not yet drained by
    /// [`Journal::take_flush_observations`]. Bounded so a run with no
    /// observability layer attached never grows it past a page.
    flush_obs: Vec<f64>,
}

/// Cap on pending flush-latency observations (see `JournalState::flush_obs`).
const MAX_PENDING_FLUSH_OBS: usize = 1024;

impl JournalState {
    fn fresh(file: Option<std::io::BufWriter<std::fs::File>>) -> JournalState {
        JournalState {
            lines: Vec::new(),
            expansions: Vec::new(),
            file,
            unflushed: 0,
            last_flush: Instant::now(),
            flush_rows: DEFAULT_FLUSH_ROWS,
            flush_interval: DEFAULT_FLUSH_INTERVAL,
            flush_obs: Vec::new(),
        }
    }

    fn note_flush(&mut self, seconds: f64) {
        if self.flush_obs.len() < MAX_PENDING_FLUSH_OBS {
            self.flush_obs.push(seconds);
        }
    }
}

impl Journal {
    /// An in-memory journal (tests, programmatic consumption).
    pub fn in_memory() -> Journal {
        Journal {
            epoch: Instant::now(),
            epoch_offset: 0.0,
            next_id: AtomicU64::new(0),
            torn_tail: false,
            resumed: 0,
            state: Mutex::new(JournalState::fresh(None)),
        }
    }

    /// A journal mirrored to a JSONL file at `path` (truncates).
    pub fn to_path(path: &std::path::Path) -> std::io::Result<Journal> {
        let file = std::fs::File::create(path)?;
        Ok(Journal {
            epoch: Instant::now(),
            epoch_offset: 0.0,
            next_id: AtomicU64::new(0),
            torn_tail: false,
            resumed: 0,
            state: Mutex::new(JournalState::fresh(Some(std::io::BufWriter::new(file)))),
        })
    }

    /// Reopens an existing journal after a crash and prepares it for
    /// appending:
    ///
    /// - every complete row is replayed into memory ([`Journal::records`]);
    /// - a torn final line (no trailing newline, unparseable — the
    ///   `kill -9` signature) is dropped and the file truncated to the
    ///   valid prefix;
    /// - a complete final line missing only its newline is kept and
    ///   rewritten terminated;
    /// - an unparseable line *inside* the file, or any row with a missing
    ///   or unsupported `schema` version, is an error — that is corruption
    ///   or a version mismatch, not a crash artifact;
    /// - trial ids continue from the largest replayed id + 1 and
    ///   [`Journal::elapsed_s`] continues from the largest replayed
    ///   `end_s`, so resumed rows never collide with or time-travel before
    ///   the originals.
    pub fn resume_from_path(path: &std::path::Path) -> std::io::Result<Journal> {
        use std::io::{Error, ErrorKind};
        let text = std::fs::read_to_string(path)?;
        let n_bytes = text.len();
        let mut records: Vec<TrialRecord> = Vec::new();
        let mut expansions: Vec<ExpansionRecord> = Vec::new();
        // Byte length of the newline-terminated valid prefix.
        let mut valid_prefix: usize = 0;
        // A final line that parsed but lacked its newline (crash landed
        // exactly after the closing brace): re-append it terminated.
        let mut reappend: Option<JournalRow> = None;
        let mut torn_tail = false;
        let mut offset = 0usize;
        let mut line_no = 0usize;
        while offset < n_bytes {
            line_no += 1;
            let rest = &text[offset..];
            let (line, line_len, terminated) = match rest.find('\n') {
                Some(p) => (&rest[..p], p + 1, true),
                None => (rest, rest.len(), false),
            };
            let is_last = offset + line_len >= n_bytes;
            if line.trim().is_empty() {
                if terminated {
                    valid_prefix = offset + line_len;
                }
                offset += line_len;
                continue;
            }
            match JournalRow::from_json(line) {
                Ok(row) => {
                    match &row {
                        JournalRow::Trial(rec) => records.push(rec.clone()),
                        JournalRow::Expansion(rec) => expansions.push(rec.clone()),
                    }
                    if terminated {
                        valid_prefix = offset + line_len;
                    } else {
                        reappend = Some(row);
                    }
                }
                Err(e) => {
                    if is_last && !terminated {
                        // Torn tail from a hard kill: drop it.
                        torn_tail = true;
                    } else {
                        return Err(Error::new(
                            ErrorKind::InvalidData,
                            format!("{}:{line_no}: {e}", path.display()),
                        ));
                    }
                }
            }
            offset += line_len;
        }
        let file = std::fs::OpenOptions::new().append(true).open(path)?;
        if valid_prefix < n_bytes {
            // Cut the torn tail (or the unterminated-but-valid line we are
            // about to rewrite) so appends never extend a partial line.
            file.set_len(valid_prefix as u64)?;
        }
        let mut writer = std::io::BufWriter::new(file);
        if let Some(row) = &reappend {
            writeln!(writer, "{}", row.to_json())?;
            writer.flush()?;
        }
        let next_id = records.iter().map(|r| r.trial_id + 1).max().unwrap_or(0);
        let epoch_offset = records.iter().map(|r| r.end_s).fold(0.0, f64::max);
        let resumed = records.len();
        let mut state = JournalState::fresh(Some(writer));
        state.lines = records;
        state.expansions = expansions;
        Ok(Journal {
            epoch: Instant::now(),
            epoch_offset,
            next_id: AtomicU64::new(next_id),
            torn_tail,
            resumed,
            state: Mutex::new(state),
        })
    }

    /// Whether [`Journal::resume_from_path`] dropped a torn final line.
    pub fn skipped_torn_tail(&self) -> bool {
        self.torn_tail
    }

    /// Number of rows replayed from disk when this journal was resumed
    /// (0 for fresh journals).
    pub fn resumed_records(&self) -> usize {
        self.resumed
    }

    /// Allocates the next trial id.
    pub fn next_trial_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Seconds elapsed since the journal was first opened (monotone across
    /// a crash-resume: a resumed journal starts at the last recorded
    /// `end_s` rather than 0).
    pub fn elapsed_s(&self) -> f64 {
        self.epoch_offset + self.epoch.elapsed().as_secs_f64()
    }

    /// Sets the automatic flush policy for the file mirror: flush after
    /// `rows` buffered rows or `interval` since the last flush, whichever
    /// comes first. Defaults to 16 rows / 1 s.
    pub fn set_flush_policy(&self, rows: usize, interval: Duration) {
        let mut state = self.state.lock().expect("journal poisoned");
        state.flush_rows = rows.max(1);
        state.flush_interval = interval;
    }

    /// Appends one record (and mirrors it to the file, if any). Lines are
    /// buffered but flushed automatically per the flush policy, so a hard
    /// kill loses at most the last flush window; [`Journal::flush`] (and
    /// drop) force the remainder out.
    pub fn record(&self, rec: TrialRecord) {
        let mut state = self.state.lock().expect("journal poisoned");
        let state = &mut *state;
        if let Some(file) = state.file.as_mut() {
            let _ = writeln!(file, "{}", rec.to_json());
            state.unflushed += 1;
            if state.unflushed >= state.flush_rows
                || state.last_flush.elapsed() >= state.flush_interval
            {
                let flush_start = Instant::now();
                let _ = file.flush();
                state.unflushed = 0;
                state.last_flush = Instant::now();
                let elapsed = flush_start.elapsed().as_secs_f64();
                state.note_flush(elapsed);
            }
        }
        state.lines.push(rec);
    }

    /// Appends one space-expansion row (and mirrors it to the file), then
    /// flushes immediately: expansions are rare, and losing one to a crash
    /// would desynchronize the audit trail from the trials that follow it.
    pub fn record_expansion(&self, rec: ExpansionRecord) {
        let mut state = self.state.lock().expect("journal poisoned");
        let state = &mut *state;
        if let Some(file) = state.file.as_mut() {
            let _ = writeln!(file, "{}", rec.to_json());
            let flush_start = Instant::now();
            let _ = file.flush();
            state.unflushed = 0;
            state.last_flush = Instant::now();
            let elapsed = flush_start.elapsed().as_secs_f64();
            state.note_flush(elapsed);
        }
        state.expansions.push(rec);
    }

    /// Snapshot of all space-expansion rows, in append order.
    pub fn expansions(&self) -> Vec<ExpansionRecord> {
        self.state
            .lock()
            .expect("journal poisoned")
            .expansions
            .clone()
    }

    /// Flushes buffered lines to the backing file, if any.
    pub fn flush(&self) {
        let mut state = self.state.lock().expect("journal poisoned");
        let state = &mut *state;
        if let Some(file) = state.file.as_mut() {
            let flush_start = Instant::now();
            let _ = file.flush();
            state.unflushed = 0;
            state.last_flush = Instant::now();
            let elapsed = flush_start.elapsed().as_secs_f64();
            state.note_flush(elapsed);
        }
    }

    /// Drains the flush-latency observations (seconds per flush) recorded
    /// since the last call. The evaluator feeds these into the
    /// `journal.flush_s` histogram so scrapes can watch journal I/O tail
    /// latency without the journal knowing about metrics.
    pub fn take_flush_observations(&self) -> Vec<f64> {
        let mut state = self.state.lock().expect("journal poisoned");
        std::mem::take(&mut state.flush_obs)
    }

    /// Number of journaled trials.
    pub fn len(&self) -> usize {
        self.state.lock().expect("journal poisoned").lines.len()
    }

    /// Whether no trials have been journaled yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all records, in append order.
    pub fn records(&self) -> Vec<TrialRecord> {
        self.state.lock().expect("journal poisoned").lines.clone()
    }

    /// Snapshot of all records rendered as JSONL lines.
    pub fn lines(&self) -> Vec<String> {
        self.state
            .lock()
            .expect("journal poisoned")
            .lines
            .iter()
            .map(TrialRecord::to_json)
            .collect()
    }
}

impl Drop for Journal {
    /// Short CLI runs must never lose trailing records: flush the buffer
    /// when the journal goes out of scope at end-of-run.
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64) -> TrialRecord {
        TrialRecord {
            trial_id: id,
            worker: 1,
            start_s: 0.25,
            end_s: 0.5,
            fidelity: 1.0,
            rung: 2,
            bracket: 0,
            loss: 0.125,
            cost: 0.25,
            cached: false,
            fe_cached: false,
            panicked: false,
            timed_out: false,
            arm: "algorithm=1".to_string(),
            digest: format!("{:016x}", 0x9f3c_2a11_d04b_77e6u64),
        }
    }

    fn temp_path(stem: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("volcanoml-exec-journal-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{stem}-{}.jsonl", std::process::id()))
    }

    fn expansion(stage: u64, trial: u64) -> ExpansionRecord {
        ExpansionRecord {
            stage,
            name: "transform_stage".to_string(),
            trigger_eui: 0.000425,
            trial,
        }
    }

    #[test]
    fn json_line_has_stable_schema() {
        let line = record(3).to_json();
        for key in [
            "\"schema\":2",
            "\"trial\":3",
            "\"worker\":1",
            "\"start_s\":0.25",
            "\"end_s\":0.5",
            "\"fidelity\":1",
            "\"rung\":2",
            "\"bracket\":0",
            "\"loss\":0.125",
            "\"cost\":0.25",
            "\"cached\":false",
            "\"fe_cached\":false",
            "\"panicked\":false",
            "\"timed_out\":false",
            "\"arm\":\"algorithm=1\"",
            "\"digest\":\"9f3c2a11d04b77e6\"",
        ] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
        assert!(line.starts_with("{\"schema\":2,"));
        assert!(line.ends_with('}'));
    }

    #[test]
    fn expansion_row_has_stable_schema_and_round_trips() {
        let r = expansion(1, 23);
        let line = r.to_json();
        assert_eq!(
            line,
            "{\"schema\":2,\"event\":\"expansion\",\"stage\":1,\
             \"name\":\"transform_stage\",\"trigger_eui\":0.000425,\"trial\":23}"
        );
        let back = ExpansionRecord::from_json(&line).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.trigger_eui.to_bits(), r.trigger_eui.to_bits());
        // Bit-exactness for awkward floats, same as trial rows.
        let mut odd = r.clone();
        odd.trigger_eui = 0.1 + 0.2;
        let back = ExpansionRecord::from_json(&odd.to_json()).unwrap();
        assert_eq!(back.trigger_eui.to_bits(), odd.trigger_eui.to_bits());
    }

    #[test]
    fn journal_row_dispatches_on_event_kind() {
        match JournalRow::from_json(&record(5).to_json()).unwrap() {
            JournalRow::Trial(r) => assert_eq!(r.trial_id, 5),
            other => panic!("expected trial row, got {other:?}"),
        }
        match JournalRow::from_json(&expansion(2, 40).to_json()).unwrap() {
            JournalRow::Expansion(r) => assert_eq!(r.stage, 2),
            other => panic!("expected expansion row, got {other:?}"),
        }
        // Cross-kind parses fail loudly rather than misread.
        assert!(TrialRecord::from_json(&expansion(1, 0).to_json()).is_err());
        assert!(ExpansionRecord::from_json(&record(0).to_json()).is_err());
        let alien = expansion(1, 0)
            .to_json()
            .replace("\"expansion\"", "\"teleport\"");
        assert!(JournalRow::from_json(&alien)
            .unwrap_err()
            .contains("teleport"));
    }

    /// Version-1 trial rows (pre-expansion journals) must stay readable.
    #[test]
    fn v1_trial_rows_still_parse() {
        let v1 = record(9).to_json().replace("\"schema\":2", "\"schema\":1");
        let back = TrialRecord::from_json(&v1).unwrap();
        assert_eq!(back, record(9));
    }

    #[test]
    fn infinite_loss_is_quoted() {
        let mut r = record(0);
        r.loss = f64::INFINITY;
        assert!(r.to_json().contains("\"loss\":\"inf\""));
        r.loss = f64::NAN;
        assert!(r.to_json().contains("\"loss\":\"nan\""));
    }

    /// The crash-resume keystone: parse(render(r)) must be bit-identical,
    /// including awkward floats, infinities, and escaped strings.
    #[test]
    fn record_round_trips_bitwise() {
        let mut r = record(7);
        r.start_s = 0.1 + 0.2; // 0.30000000000000004
        r.end_s = 1.0 / 3.0;
        r.fidelity = f64::from_bits(0x3FD5_5555_5555_5554); // one ulp below 1/3
        r.cost = f64::MIN_POSITIVE;
        r.loss = -0.0;
        r.arm = "weird \"arm\"\twith\nescapes\\".to_string();
        let back = TrialRecord::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.start_s.to_bits(), r.start_s.to_bits());
        assert_eq!(back.loss.to_bits(), r.loss.to_bits());
        assert_eq!(back.cost.to_bits(), r.cost.to_bits());

        r.loss = f64::INFINITY;
        let back = TrialRecord::from_json(&r.to_json()).unwrap();
        assert!(back.loss.is_infinite() && back.loss > 0.0);
    }

    #[test]
    fn parser_ignores_unknown_keys_and_rejects_bad_rows() {
        let mut line = record(0).to_json();
        line.insert_str(line.len() - 1, ",\"future_key\":\"x\"");
        assert!(TrialRecord::from_json(&line).is_ok());

        let err = TrialRecord::from_json("{\"trial\":0}").unwrap_err();
        assert!(err.contains("schema"), "unexpected error: {err}");

        let err = TrialRecord::from_json(
            &record(0).to_json().replace("\"schema\":2", "\"schema\":99"),
        )
        .unwrap_err();
        assert!(err.contains("99"), "unexpected error: {err}");

        assert!(TrialRecord::from_json("{\"schema\":2,\"trial\":").is_err());
    }

    #[test]
    fn in_memory_journal_accumulates_in_order() {
        let j = Journal::in_memory();
        assert!(j.is_empty());
        for i in 0..5 {
            let id = j.next_trial_id();
            assert_eq!(id, i);
            j.record(record(id));
        }
        assert_eq!(j.len(), 5);
        let ids: Vec<u64> = j.records().iter().map(|r| r.trial_id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert_eq!(j.lines().len(), 5);
    }

    #[test]
    fn file_journal_writes_jsonl() {
        let path = temp_path("journal");
        {
            let j = Journal::to_path(&path).unwrap();
            j.record(record(0));
            j.record(record(1));
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"trial\":0"));
        assert!(lines[1].contains("\"trial\":1"));
        std::fs::remove_file(&path).ok();
    }

    /// Regression: a run that ends right after the last trial (journal
    /// dropped without an explicit flush call) must not lose trailing
    /// buffered records.
    #[test]
    fn drop_flushes_trailing_records() {
        let path = temp_path("drop");
        {
            let j = Journal::to_path(&path).unwrap();
            // Disable automatic flushing so drop is what saves the rows.
            j.set_flush_policy(usize::MAX, Duration::from_secs(3600));
            for i in 0..20 {
                j.record(record(i));
            }
            // No flush: the BufWriter still holds everything. Drop must
            // write it out.
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 20);
        assert!(text.lines().last().unwrap().contains("\"trial\":19"));
        std::fs::remove_file(&path).ok();
    }

    /// An explicit mid-run flush makes records visible to concurrent
    /// readers while the journal is still alive.
    #[test]
    fn explicit_flush_is_readable_while_alive() {
        let path = temp_path("flush");
        let j = Journal::to_path(&path).unwrap();
        j.record(record(0));
        j.record(record(1));
        j.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        drop(j);
        std::fs::remove_file(&path).ok();
    }

    /// Durability against SIGKILL: the row-count flush policy pushes rows
    /// to the OS without any explicit flush call.
    #[test]
    fn periodic_flush_by_row_count() {
        let path = temp_path("periodic");
        let j = Journal::to_path(&path).unwrap();
        j.set_flush_policy(2, Duration::from_secs(3600));
        j.record(record(0));
        j.record(record(1));
        // Two rows hit the threshold: both visible with no flush() call.
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        drop(j);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_replays_rows_and_continues_ids_and_clock() {
        let path = temp_path("resume");
        {
            let j = Journal::to_path(&path).unwrap();
            for _ in 0..3 {
                let id = j.next_trial_id();
                let mut r = record(id);
                r.end_s = 10.0 + id as f64;
                j.record(r);
            }
        }
        let j = Journal::resume_from_path(&path).unwrap();
        assert_eq!(j.resumed_records(), 3);
        assert!(!j.skipped_torn_tail());
        assert_eq!(j.len(), 3);
        assert_eq!(j.next_trial_id(), 3, "ids continue past the replayed max");
        assert!(j.elapsed_s() >= 12.0, "clock continues past max end_s");
        j.record(record(3));
        drop(j);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 4);
        assert!(text.lines().last().unwrap().contains("\"trial\":3"));
        std::fs::remove_file(&path).ok();
    }

    /// Satellite regression: a `kill -9` mid-write leaves a torn final
    /// line. Resume must drop it, truncate the file, and append cleanly.
    #[test]
    fn resume_skips_torn_final_line() {
        let path = temp_path("torn");
        {
            let j = Journal::to_path(&path).unwrap();
            j.record(record(0));
            j.record(record(1));
        }
        // Simulate the kill: append half a row with no newline.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"schema\":1,\"trial\":2,\"worker\":0,\"sta");
        std::fs::write(&path, &text).unwrap();

        let j = Journal::resume_from_path(&path).unwrap();
        assert!(j.skipped_torn_tail());
        assert_eq!(j.resumed_records(), 2);
        assert_eq!(j.next_trial_id(), 2);
        j.record(record(2));
        drop(j);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "torn tail truncated, new row appended");
        for (i, line) in lines.iter().enumerate() {
            let rec = TrialRecord::from_json(line).expect("every surviving line parses");
            assert_eq!(rec.trial_id, i as u64);
        }
        std::fs::remove_file(&path).ok();
    }

    /// A final line cut exactly after the closing brace (complete row, no
    /// newline) is kept, not dropped.
    #[test]
    fn resume_keeps_complete_unterminated_final_line() {
        let path = temp_path("unterminated");
        {
            let j = Journal::to_path(&path).unwrap();
            j.record(record(0));
        }
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str(&record(1).to_json()); // no trailing newline
        std::fs::write(&path, &text).unwrap();

        let j = Journal::resume_from_path(&path).unwrap();
        assert_eq!(j.resumed_records(), 2);
        assert!(!j.skipped_torn_tail());
        j.record(record(2));
        drop(j);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 3);
        for line in text.lines() {
            TrialRecord::from_json(line).expect("no concatenated rows");
        }
        std::fs::remove_file(&path).ok();
    }

    /// Expansion rows interleaved with trial rows survive a resume: trials
    /// replay into `records()`, expansions into `expansions()`, and the
    /// `trial` field keeps their relative order recoverable.
    #[test]
    fn resume_replays_interleaved_expansion_rows() {
        let path = temp_path("expansion-resume");
        {
            let j = Journal::to_path(&path).unwrap();
            j.record(record(0));
            j.record(record(1));
            j.record_expansion(expansion(1, 2));
            j.record(record(2));
            j.record_expansion(expansion(2, 3));
        }
        let j = Journal::resume_from_path(&path).unwrap();
        assert_eq!(j.resumed_records(), 3);
        assert_eq!(j.next_trial_id(), 3);
        let exps = j.expansions();
        assert_eq!(exps.len(), 2);
        assert_eq!(exps[0], expansion(1, 2));
        assert_eq!(exps[1], expansion(2, 3));
        drop(j);
        std::fs::remove_file(&path).ok();
    }

    /// A crash mid-expansion-write tears the expansion row: resume drops
    /// the torn tail and the journal reports one fewer expansion — the
    /// study-level replay then re-derives and re-journals it.
    #[test]
    fn resume_truncates_torn_expansion_row() {
        let path = temp_path("expansion-torn");
        {
            let j = Journal::to_path(&path).unwrap();
            j.record(record(0));
            j.record_expansion(expansion(1, 1));
        }
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"schema\":2,\"event\":\"expansion\",\"sta");
        std::fs::write(&path, &text).unwrap();

        let j = Journal::resume_from_path(&path).unwrap();
        assert!(j.skipped_torn_tail());
        assert_eq!(j.expansions().len(), 1);
        j.record_expansion(expansion(2, 1));
        drop(j);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in lines {
            JournalRow::from_json(line).expect("every surviving line parses");
        }
        std::fs::remove_file(&path).ok();
    }

    /// Corruption *inside* the file is not a crash artifact: hard error.
    #[test]
    fn resume_errors_on_midfile_corruption() {
        let path = temp_path("midfile");
        let good = record(0).to_json();
        std::fs::write(&path, format!("{good}\nnot json at all\n{good}\n")).unwrap();
        let err = Journal::resume_from_path(&path).err().expect("must fail");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains(":2:"), "names the line: {err}");
        std::fs::remove_file(&path).ok();
    }

    /// Satellite regression: rows from an unknown schema version must be
    /// rejected with a clear error, not misread.
    #[test]
    fn resume_rejects_unknown_schema_version() {
        let path = temp_path("schema");
        let alien = record(0).to_json().replace("\"schema\":2", "\"schema\":42");
        std::fs::write(&path, format!("{alien}\n")).unwrap();
        let err = Journal::resume_from_path(&path).err().expect("must fail");
        assert!(
            err.to_string().contains("unsupported journal schema version 42"),
            "unexpected error: {err}"
        );

        let legacy = record(0).to_json().replace("\"schema\":2,", "");
        std::fs::write(&path, format!("{legacy}\n")).unwrap();
        let err = Journal::resume_from_path(&path).err().expect("must fail");
        assert!(err.to_string().contains("schema"), "unexpected error: {err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let j = std::sync::Arc::new(Journal::in_memory());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let j = std::sync::Arc::clone(&j);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        let id = j.next_trial_id();
                        j.record(record(id));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(j.len(), 200);
        let mut ids: Vec<u64> = j.records().iter().map(|r| r.trial_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 200);
    }
}
