//! The JSONL trial journal.
//!
//! One line per trial, machine-readable, append-only. Schema (all keys
//! always present, stable order):
//!
//! ```json
//! {"trial":17,"worker":2,"start_s":0.0132,"end_s":0.0518,"fidelity":1.0,
//!  "rung":2,"bracket":0,"loss":0.2184,"cost":0.0386,"cached":false,
//!  "fe_cached":true,"panicked":false,"timed_out":false,"arm":"algorithm=1",
//!  "digest":"9f3c2a11d04b77e6"}
//! ```
//!
//! `start_s`/`end_s` are seconds since the journal was opened (monotonic
//! clock), `cost` is the evaluator-measured training wall time, `loss` is
//! serialized as `"inf"` when infinite so the file stays valid JSON.
//! `rung`/`bracket` attribute the trial to a multi-fidelity scheduler: the
//! rung index in the engine's full η-ladder and the issuing bracket's
//! stable id, both `-1` when the trial was not scheduled by a
//! multi-fidelity engine (full-fidelity engines, warm starts, seeds). `arm`
//! is the bandit-arm label of the conditioning pull that issued the trial
//! (empty when no arm was in scope) and `digest` is the evaluator's stable
//! assignment hash rendered as 16 hex digits (empty when unknown) — both
//! join journal rows to `volcanoml-obs` trace spans, which carry the same
//! `trial` id, arm, and digest. The journal is `Sync`: workers append
//! concurrently through an internal mutex. Records are always kept in
//! memory (for tests and report generation) and mirrored to a file when
//! opened with [`Journal::to_path`]; buffered lines are flushed by
//! [`Journal::flush`] and automatically on drop.
//!
//! The zero-copy dataset-view refactor changed how trial data moves in
//! memory (workers share one `Arc<Dataset>`; rows are gathered only on
//! FE-cache misses) but nothing on disk: this schema is byte-identical
//! before and after, and existing journals remain readable.

use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One trial's journal entry.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRecord {
    /// Monotonically increasing trial id (unique per evaluator).
    pub trial_id: u64,
    /// Worker that executed the trial (0 for serial execution).
    pub worker: usize,
    /// Trial start, seconds since the journal epoch.
    pub start_s: f64,
    /// Trial end, seconds since the journal epoch.
    pub end_s: f64,
    /// Fidelity the trial ran at.
    pub fidelity: f64,
    /// Rung index in the scheduler's full η-ladder, `-1` when the trial was
    /// not issued by a multi-fidelity engine.
    pub rung: i64,
    /// Stable id of the issuing bracket, `-1` when not bracket-scheduled.
    pub bracket: i64,
    /// Observed loss (`INFINITY` for failed/panicked/timed-out trials).
    pub loss: f64,
    /// Evaluation cost in seconds (0 for cache hits and timeouts).
    pub cost: f64,
    /// Whether the result came from the evaluator cache.
    pub cached: bool,
    /// Whether the trial reused a fitted FE transform from the evaluator's
    /// cross-trial FE cache (false on full result-cache hits).
    pub fe_cached: bool,
    /// Whether the trial panicked.
    pub panicked: bool,
    /// Whether the trial exceeded its deadline and was abandoned.
    pub timed_out: bool,
    /// Bandit-arm label of the pull that issued the trial (e.g.
    /// `algorithm=1`), empty when no arm was in scope.
    pub arm: String,
    /// Stable assignment digest as 16 lowercase hex digits, empty when
    /// unknown. Matches the `digest` field on obs trace spans.
    pub digest: String,
}

impl TrialRecord {
    /// Renders the record as one JSON line (without trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"trial\":{},\"worker\":{},\"start_s\":{:.6},\"end_s\":{:.6},\
             \"fidelity\":{},\"rung\":{},\"bracket\":{},\"loss\":{},\
             \"cost\":{:.6},\"cached\":{},\
             \"fe_cached\":{},\"panicked\":{},\"timed_out\":{},\
             \"arm\":\"{}\",\"digest\":\"{}\"}}",
            self.trial_id,
            self.worker,
            self.start_s,
            self.end_s,
            json_f64(self.fidelity),
            self.rung,
            self.bracket,
            json_f64(self.loss),
            self.cost,
            self.cached,
            self.fe_cached,
            self.panicked,
            self.timed_out,
            json_str(&self.arm),
            json_str(&self.digest)
        )
    }
}

/// Escapes a string for embedding in a JSON document.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// JSON has no Infinity/NaN literals; encode them as strings.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else if v.is_nan() {
        "\"nan\"".to_string()
    } else if v > 0.0 {
        "\"inf\"".to_string()
    } else {
        "\"-inf\"".to_string()
    }
}

/// Thread-safe JSONL journal of executed trials.
pub struct Journal {
    epoch: Instant,
    next_id: AtomicU64,
    state: Mutex<JournalState>,
}

struct JournalState {
    lines: Vec<TrialRecord>,
    file: Option<std::io::BufWriter<std::fs::File>>,
}

impl Journal {
    /// An in-memory journal (tests, programmatic consumption).
    pub fn in_memory() -> Journal {
        Journal {
            epoch: Instant::now(),
            next_id: AtomicU64::new(0),
            state: Mutex::new(JournalState {
                lines: Vec::new(),
                file: None,
            }),
        }
    }

    /// A journal mirrored to a JSONL file at `path` (truncates).
    pub fn to_path(path: &std::path::Path) -> std::io::Result<Journal> {
        let file = std::fs::File::create(path)?;
        Ok(Journal {
            epoch: Instant::now(),
            next_id: AtomicU64::new(0),
            state: Mutex::new(JournalState {
                lines: Vec::new(),
                file: Some(std::io::BufWriter::new(file)),
            }),
        })
    }

    /// Allocates the next trial id.
    pub fn next_trial_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Seconds elapsed since the journal was opened.
    pub fn elapsed_s(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Appends one record (and mirrors it to the file, if any). Lines are
    /// buffered; call [`Journal::flush`] (or drop the journal) to ensure
    /// they reach disk.
    pub fn record(&self, rec: TrialRecord) {
        let mut state = self.state.lock().expect("journal poisoned");
        if let Some(file) = &mut state.file {
            let _ = writeln!(file, "{}", rec.to_json());
        }
        state.lines.push(rec);
    }

    /// Flushes buffered lines to the backing file, if any.
    pub fn flush(&self) {
        let mut state = self.state.lock().expect("journal poisoned");
        if let Some(file) = &mut state.file {
            let _ = file.flush();
        }
    }

    /// Number of journaled trials.
    pub fn len(&self) -> usize {
        self.state.lock().expect("journal poisoned").lines.len()
    }

    /// Whether no trials have been journaled yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all records, in append order.
    pub fn records(&self) -> Vec<TrialRecord> {
        self.state.lock().expect("journal poisoned").lines.clone()
    }

    /// Snapshot of all records rendered as JSONL lines.
    pub fn lines(&self) -> Vec<String> {
        self.state
            .lock()
            .expect("journal poisoned")
            .lines
            .iter()
            .map(TrialRecord::to_json)
            .collect()
    }
}

impl Drop for Journal {
    /// Short CLI runs must never lose trailing records: flush the buffer
    /// when the journal goes out of scope at end-of-run.
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64) -> TrialRecord {
        TrialRecord {
            trial_id: id,
            worker: 1,
            start_s: 0.25,
            end_s: 0.5,
            fidelity: 1.0,
            rung: 2,
            bracket: 0,
            loss: 0.125,
            cost: 0.25,
            cached: false,
            fe_cached: false,
            panicked: false,
            timed_out: false,
            arm: "algorithm=1".to_string(),
            digest: format!("{:016x}", 0x9f3c_2a11_d04b_77e6u64),
        }
    }

    #[test]
    fn json_line_has_stable_schema() {
        let line = record(3).to_json();
        for key in [
            "\"trial\":3",
            "\"worker\":1",
            "\"start_s\":0.250000",
            "\"end_s\":0.500000",
            "\"fidelity\":1",
            "\"rung\":2",
            "\"bracket\":0",
            "\"loss\":0.125",
            "\"cost\":0.250000",
            "\"cached\":false",
            "\"fe_cached\":false",
            "\"panicked\":false",
            "\"timed_out\":false",
            "\"arm\":\"algorithm=1\"",
            "\"digest\":\"9f3c2a11d04b77e6\"",
        ] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
        assert!(line.starts_with('{') && line.ends_with('}'));
    }

    #[test]
    fn infinite_loss_is_quoted() {
        let mut r = record(0);
        r.loss = f64::INFINITY;
        assert!(r.to_json().contains("\"loss\":\"inf\""));
        r.loss = f64::NAN;
        assert!(r.to_json().contains("\"loss\":\"nan\""));
    }

    #[test]
    fn in_memory_journal_accumulates_in_order() {
        let j = Journal::in_memory();
        assert!(j.is_empty());
        for i in 0..5 {
            let id = j.next_trial_id();
            assert_eq!(id, i);
            j.record(record(id));
        }
        assert_eq!(j.len(), 5);
        let ids: Vec<u64> = j.records().iter().map(|r| r.trial_id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert_eq!(j.lines().len(), 5);
    }

    #[test]
    fn file_journal_writes_jsonl() {
        let dir = std::env::temp_dir().join("volcanoml-exec-journal-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("journal-{}.jsonl", std::process::id()));
        {
            let j = Journal::to_path(&path).unwrap();
            j.record(record(0));
            j.record(record(1));
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"trial\":0"));
        assert!(lines[1].contains("\"trial\":1"));
        std::fs::remove_file(&path).ok();
    }

    /// Regression: a run that ends right after the last trial (journal
    /// dropped without an explicit flush call) must not lose trailing
    /// buffered records.
    #[test]
    fn drop_flushes_trailing_records() {
        let dir = std::env::temp_dir().join("volcanoml-exec-journal-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("drop-{}.jsonl", std::process::id()));
        {
            let j = Journal::to_path(&path).unwrap();
            for i in 0..20 {
                j.record(record(i));
            }
            // No flush: the BufWriter still holds everything. Drop must
            // write it out.
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 20);
        assert!(text.lines().last().unwrap().contains("\"trial\":19"));
        std::fs::remove_file(&path).ok();
    }

    /// An explicit mid-run flush makes records visible to concurrent
    /// readers while the journal is still alive.
    #[test]
    fn explicit_flush_is_readable_while_alive() {
        let dir = std::env::temp_dir().join("volcanoml-exec-journal-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("flush-{}.jsonl", std::process::id()));
        let j = Journal::to_path(&path).unwrap();
        j.record(record(0));
        j.record(record(1));
        j.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        drop(j);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let j = std::sync::Arc::new(Journal::in_memory());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let j = std::sync::Arc::clone(&j);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        let id = j.next_trial_id();
                        j.record(record(id));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(j.len(), 200);
        let mut ids: Vec<u64> = j.records().iter().map(|r| r.trial_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 200);
    }
}
