//! The fixed-size worker pool.
//!
//! Architecture: `ExecPool::new` spawns `workers` OS threads that loop over
//! a shared MPMC job queue (an `mpsc::Receiver` behind a mutex — the
//! classic std-only work queue). `run_batch` wraps each submitted closure
//! so it reports `(index, worker, timing, outcome)` back over a per-batch
//! channel, then reassembles results in submission order.
//!
//! Crash isolation is per trial: the closure runs under
//! `panic::catch_unwind`, so a panicking pipeline surfaces as
//! [`TrialStatus::Panicked`] and the worker keeps draining the queue.
//!
//! Deadlines: when [`PoolConfig::trial_deadline`] is set, the worker runs
//! the trial on a *detached* helper thread and waits with `recv_timeout`.
//! On expiry the helper is abandoned (it cannot be killed safely in Rust;
//! it finishes in the background and its result is discarded) and the trial
//! is reported as [`TrialStatus::TimedOut`]. This trades a leaked thread
//! for a live search — the fault-tolerance contract from the paper's
//! production requirements.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

std::thread_local! {
    static WORKER_ID: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// The worker id of the current thread: `Some(0..workers)` inside a pool
/// worker or its trial helper thread, `None` elsewhere (serial execution).
pub fn current_worker() -> Option<usize> {
    WORKER_ID.with(|w| w.get())
}

/// Pool construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Number of worker threads (clamped to at least 1).
    pub workers: usize,
    /// Per-trial wall-clock budget; `None` disables deadline enforcement.
    pub trial_deadline: Option<Duration>,
}

impl PoolConfig {
    /// A pool of `workers` threads with no deadline.
    pub fn with_workers(workers: usize) -> PoolConfig {
        PoolConfig {
            workers,
            trial_deadline: None,
        }
    }
}

/// How one trial ended.
#[derive(Debug)]
pub enum TrialStatus<T> {
    /// The trial ran to completion.
    Done(T),
    /// The trial panicked; the payload is the panic message.
    Panicked(String),
    /// The trial exceeded the per-trial deadline and was abandoned.
    TimedOut,
}

impl<T> TrialStatus<T> {
    /// The completed value, if any.
    pub fn ok(self) -> Option<T> {
        match self {
            TrialStatus::Done(v) => Some(v),
            _ => None,
        }
    }

    /// Whether the trial panicked.
    pub fn panicked(&self) -> bool {
        matches!(self, TrialStatus::Panicked(_))
    }

    /// Whether the trial timed out.
    pub fn timed_out(&self) -> bool {
        matches!(self, TrialStatus::TimedOut)
    }
}

/// One trial's execution record, as observed by the pool.
#[derive(Debug)]
pub struct TrialRun<T> {
    /// Index of the trial within its batch (submission order).
    pub index: usize,
    /// Worker thread that ran (or abandoned) the trial.
    pub worker: usize,
    /// Seconds from batch dispatch to trial start.
    pub started_s: f64,
    /// Seconds from batch dispatch to trial end (or deadline expiry).
    pub ended_s: f64,
    /// Outcome.
    pub status: TrialStatus<T>,
}

type Job = Box<dyn FnOnce(usize) + Send + 'static>;

/// A fixed-size pool of worker threads executing trial batches.
pub struct ExecPool {
    config: PoolConfig,
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    /// Workers currently inside a trial (occupancy gauge for /healthz
    /// and /metrics; incremented around `execute_one`).
    busy: Arc<AtomicUsize>,
    /// Jobs submitted but not yet picked up by a worker (queue depth).
    queued: Arc<AtomicUsize>,
}

impl ExecPool {
    /// Spawns the pool. `workers` is clamped to at least 1.
    pub fn new(config: PoolConfig) -> ExecPool {
        let n = config.workers.max(1);
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..n)
            .map(|id| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("volcanoml-exec-{id}"))
                    .spawn(move || {
                        WORKER_ID.with(|w| w.set(Some(id)));
                        loop {
                            let job = {
                                let guard = rx.lock().expect("job queue poisoned");
                                guard.recv()
                            };
                            match job {
                                Ok(job) => job(id),
                                Err(_) => break, // pool dropped
                            }
                        }
                    })
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ExecPool {
            config: PoolConfig {
                workers: n,
                ..config
            },
            sender: Some(tx),
            workers,
            busy: Arc::new(AtomicUsize::new(0)),
            queued: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// Convenience constructor: `workers` threads, no deadline.
    pub fn with_workers(workers: usize) -> ExecPool {
        ExecPool::new(PoolConfig::with_workers(workers))
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.config.workers
    }

    /// The configured per-trial deadline.
    pub fn trial_deadline(&self) -> Option<Duration> {
        self.config.trial_deadline
    }

    /// Number of workers currently executing a trial.
    pub fn busy_workers(&self) -> usize {
        self.busy.load(Ordering::Relaxed)
    }

    /// Number of submitted jobs not yet picked up by a worker.
    pub fn queued_jobs(&self) -> usize {
        self.queued.load(Ordering::Relaxed)
    }

    /// Runs a batch of trials to completion and returns one [`TrialRun`]
    /// per trial, in submission order. Panicking or timed-out trials are
    /// reported in their status; the pool itself never dies.
    pub fn run_batch<T, F>(&self, jobs: Vec<F>) -> Vec<TrialRun<T>>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let epoch = Instant::now();
        let deadline = self.config.trial_deadline;
        let (done_tx, done_rx) = channel::<TrialRun<T>>();
        let sender = self
            .sender
            .as_ref()
            .expect("pool sender alive while pool exists");
        for (index, job) in jobs.into_iter().enumerate() {
            let done = done_tx.clone();
            let busy = Arc::clone(&self.busy);
            let queued = Arc::clone(&self.queued);
            let wrapped: Job = Box::new(move |worker| {
                queued.fetch_sub(1, Ordering::Relaxed);
                busy.fetch_add(1, Ordering::Relaxed);
                let run = execute_one(index, worker, job, deadline, epoch);
                busy.fetch_sub(1, Ordering::Relaxed);
                // The batch may have stopped listening only if run_batch
                // itself panicked; ignore send failures.
                let _ = done.send(run);
            });
            self.queued.fetch_add(1, Ordering::Relaxed);
            sender.send(wrapped).expect("pool workers alive");
        }
        drop(done_tx);
        let mut runs: Vec<TrialRun<T>> = done_rx.iter().take(n).collect();
        runs.sort_by_key(|r| r.index);
        runs
    }
}

impl Drop for ExecPool {
    fn drop(&mut self) {
        // Closing the channel wakes every idle worker with RecvError.
        self.sender.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Runs one trial on the current worker thread, honoring the deadline.
fn execute_one<T, F>(
    index: usize,
    worker: usize,
    job: F,
    deadline: Option<Duration>,
    epoch: Instant,
) -> TrialRun<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let started_s = epoch.elapsed().as_secs_f64();
    let status = match deadline {
        None => run_caught(job),
        Some(budget) => {
            // Run the trial on a detached helper so the worker can abandon
            // it at the deadline. The helper inherits the worker id for
            // journal attribution.
            let (tx, rx) = channel::<TrialStatus<T>>();
            let spawned = std::thread::Builder::new()
                .name(format!("volcanoml-trial-{worker}"))
                .spawn(move || {
                    WORKER_ID.with(|w| w.set(Some(worker)));
                    let _ = tx.send(run_caught(job));
                });
            match spawned {
                Err(e) => TrialStatus::Panicked(format!("failed to spawn trial thread: {e}")),
                Ok(_handle) => match rx.recv_timeout(budget) {
                    Ok(status) => status,
                    Err(RecvTimeoutError::Timeout) => TrialStatus::TimedOut,
                    // The helper can only disconnect without sending if the
                    // send itself failed, which recv_timeout surfaces here.
                    Err(RecvTimeoutError::Disconnected) => {
                        TrialStatus::Panicked("trial thread vanished".to_string())
                    }
                },
            }
        }
    };
    let ended_s = epoch.elapsed().as_secs_f64();
    TrialRun {
        index,
        worker,
        started_s,
        ended_s,
        status,
    }
}

/// `catch_unwind` wrapper translating panics into [`TrialStatus::Panicked`].
fn run_caught<T, F: FnOnce() -> T>(job: F) -> TrialStatus<T> {
    match panic::catch_unwind(AssertUnwindSafe(job)) {
        Ok(value) => TrialStatus::Done(value),
        Err(payload) => TrialStatus::Panicked(panic_message(payload.as_ref())),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn batch_results_come_back_in_submission_order() {
        let pool = ExecPool::with_workers(4);
        let jobs: Vec<_> = (0..16usize)
            .map(|i| {
                move || {
                    // Stagger so completion order differs from submission.
                    std::thread::sleep(Duration::from_millis(((16 - i) % 5) as u64));
                    i * 10
                }
            })
            .collect();
        let runs = pool.run_batch(jobs);
        assert_eq!(runs.len(), 16);
        for (i, run) in runs.iter().enumerate() {
            assert_eq!(run.index, i);
            assert_eq!(*run.status.ok_ref().unwrap(), i * 10);
            assert!(run.worker < 4);
            assert!(run.ended_s >= run.started_s);
        }
    }

    impl<T> TrialStatus<T> {
        fn ok_ref(&self) -> Option<&T> {
            match self {
                TrialStatus::Done(v) => Some(v),
                _ => None,
            }
        }
    }

    #[test]
    fn single_worker_pool_works() {
        let pool = ExecPool::with_workers(1);
        let runs = pool.run_batch((0..5).map(|i| move || i).collect::<Vec<_>>());
        assert!(runs.iter().all(|r| r.worker == 0));
        assert_eq!(
            runs.iter().filter_map(|r| r.status.ok_ref()).sum::<i32>(),
            10
        );
    }

    #[test]
    fn panicking_trial_is_isolated_and_pool_keeps_draining() {
        let pool = ExecPool::with_workers(2);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8)
            .map(|i| {
                let job: Box<dyn FnOnce() -> usize + Send> = if i == 3 {
                    Box::new(|| panic!("injected trial failure"))
                } else {
                    Box::new(move || i)
                };
                job
            })
            .collect();
        let runs = pool.run_batch(jobs);
        assert_eq!(runs.len(), 8);
        assert!(runs[3].status.panicked());
        match &runs[3].status {
            TrialStatus::Panicked(msg) => assert!(msg.contains("injected")),
            _ => unreachable!(),
        }
        // Every other trial completed.
        assert_eq!(runs.iter().filter(|r| r.status.panicked()).count(), 1);
        assert!(runs
            .iter()
            .filter(|r| r.index != 3)
            .all(|r| r.status.ok_ref().is_some()));
        // The pool is still usable afterwards.
        let again = pool.run_batch(vec![|| 7usize]);
        assert_eq!(*again[0].status.ok_ref().unwrap(), 7);
    }

    #[test]
    fn runaway_trial_hits_deadline_and_pool_survives() {
        let pool = ExecPool::new(PoolConfig {
            workers: 2,
            trial_deadline: Some(Duration::from_millis(50)),
        });
        let finished = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..4)
            .map(|i| {
                let finished = Arc::clone(&finished);
                let job: Box<dyn FnOnce() -> usize + Send> = if i == 1 {
                    Box::new(move || {
                        // Far beyond the deadline.
                        std::thread::sleep(Duration::from_millis(400));
                        finished.fetch_add(1, Ordering::SeqCst);
                        i
                    })
                } else {
                    Box::new(move || {
                        finished.fetch_add(1, Ordering::SeqCst);
                        i
                    })
                };
                job
            })
            .collect();
        let start = Instant::now();
        let runs = pool.run_batch(jobs);
        assert!(runs[1].status.timed_out());
        assert_eq!(runs.iter().filter(|r| r.status.timed_out()).count(), 1);
        assert!(runs
            .iter()
            .filter(|r| r.index != 1)
            .all(|r| r.status.ok_ref().is_some()));
        // The batch returned near the deadline, not after the runaway's 400ms.
        assert!(start.elapsed() < Duration::from_millis(350));
        // Pool still alive.
        let again = pool.run_batch(vec![|| 1usize]);
        assert_eq!(*again[0].status.ok_ref().unwrap(), 1);
    }

    #[test]
    fn worker_id_is_visible_inside_trials() {
        let pool = ExecPool::with_workers(3);
        let runs = pool.run_batch(
            (0..9)
                .map(|_| move || current_worker())
                .collect::<Vec<_>>(),
        );
        for run in &runs {
            assert_eq!(*run.status.ok_ref().unwrap(), Some(run.worker));
        }
        assert_eq!(current_worker(), None);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let pool = ExecPool::with_workers(2);
        let runs = pool.run_batch(Vec::<fn() -> ()>::new());
        assert!(runs.is_empty());
    }

    #[test]
    fn busy_and_queued_gauges_track_occupancy() {
        let pool = Arc::new(ExecPool::with_workers(2));
        assert_eq!(pool.busy_workers(), 0);
        assert_eq!(pool.queued_jobs(), 0);
        let observer = {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || {
                // Sample while the batch below holds both workers busy.
                let mut max_busy = 0;
                for _ in 0..200 {
                    max_busy = max_busy.max(pool.busy_workers());
                    std::thread::sleep(Duration::from_millis(1));
                }
                max_busy
            })
        };
        pool.run_batch(
            (0..6)
                .map(|_| || std::thread::sleep(Duration::from_millis(20)))
                .collect::<Vec<_>>(),
        );
        let max_busy = observer.join().unwrap();
        assert!(max_busy >= 1, "observer never saw a busy worker");
        assert!(max_busy <= 2, "busy gauge exceeded the worker count");
        // Everything drained: both gauges return to zero.
        assert_eq!(pool.busy_workers(), 0);
        assert_eq!(pool.queued_jobs(), 0);
    }

    #[test]
    fn parallelism_reduces_wall_time() {
        let trial = || std::thread::sleep(Duration::from_millis(25));
        let serial = ExecPool::with_workers(1);
        let start = Instant::now();
        serial.run_batch((0..8).map(|_| trial).collect::<Vec<_>>());
        let t1 = start.elapsed();
        let parallel = ExecPool::with_workers(4);
        let start = Instant::now();
        parallel.run_batch((0..8).map(|_| trial).collect::<Vec<_>>());
        let t4 = start.elapsed();
        assert!(
            t4 < t1,
            "4 workers ({t4:?}) should beat 1 worker ({t1:?})"
        );
    }
}
