//! `volcanoml-exec` — the parallel trial-execution engine.
//!
//! VolcanoML's building blocks all bottleneck on the black-box pipeline
//! evaluation; this crate provides the worker-pool substrate that lets the
//! search evaluate *batches* of trials concurrently while surviving trials
//! that panic or run away:
//!
//! - [`ExecPool`]: a fixed-size pool of `std::thread` workers fed over
//!   channels. [`ExecPool::run_batch`] executes a batch of closures and
//!   returns per-trial outcomes in submission order.
//! - Crash isolation: every trial runs under `catch_unwind`; a panicking
//!   trial yields [`TrialStatus::Panicked`] instead of killing the pool.
//! - Deadlines: with a configured per-trial deadline, a runaway trial is
//!   abandoned after the budget elapses and reported as
//!   [`TrialStatus::TimedOut`] while its worker moves on.
//! - [`journal::Journal`]: a line-oriented JSONL record of every trial
//!   (id, worker, timing, fidelity, loss, cost, cache/panic/timeout flags)
//!   consumed by benches and experiment reports.
//!
//! The crate is deliberately dependency-free (std only) so it sits *below*
//! `volcanoml-core` in the workspace graph: the evaluator builds jobs, the
//! pool runs them.

mod journal;
mod pool;

pub use journal::{ExpansionRecord, Journal, JournalRow, TrialRecord, JOURNAL_SCHEMA_VERSION};
pub use pool::{current_worker, ExecPool, PoolConfig, TrialRun, TrialStatus};
