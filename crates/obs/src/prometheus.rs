//! Prometheus text-exposition (format 0.0.4) rendering for
//! [`MetricsSnapshot`]s.
//!
//! The registry's internal names are dotted (`trial.cost_s`,
//! `worker.0.busy_s`) and may carry an embedded label block appended with
//! [`labeled`] (`http.requests{route="/studies",status="200"}`). The
//! renderer:
//!
//! - sanitizes metric names to the Prometheus charset `[a-zA-Z0-9_:]`
//!   (dots become underscores; an illegal leading char gets a `_` prefix)
//!   and prepends a namespace (`volcanoml_`);
//! - merges embedded labels with per-snapshot section labels (the serve
//!   layer adds `study="<id>"` to every per-study series) and escapes
//!   label values (`\\`, `\"`, newline);
//! - suffixes counters with `_total`, renders histograms as cumulative
//!   `_bucket{le="..."}` series closed by `le="+Inf"` plus `_sum`/`_count`,
//!   and emits one `# TYPE` line per family;
//! - orders families and series deterministically (BTreeMap + insertion
//!   order within a family) so scrapes diff cleanly.
//!
//! Families are collected across [`PrometheusText::add_snapshot`] calls, so
//! the same metric from N study registries becomes one family with N
//! labeled series — exactly what a scraper expects.

use crate::metrics::{HistogramSnapshot, MetricsSnapshot};
use std::collections::BTreeMap;

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Sanitizes a metric (or namespace) name to `[a-zA-Z0-9_:]`, mapping `.`
/// and every other illegal char to `_` and prefixing `_` when the first
/// char would be a digit.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let legal = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if legal { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Sanitizes a label name to `[a-zA-Z0-9_]` (no colons in label names).
pub fn sanitize_label_name(name: &str) -> String {
    sanitize_metric_name(name).replace(':', "_")
}

/// Builds a registry key with an embedded label block:
/// `labeled("http.requests", &[("route", "/studies")])` →
/// `http.requests{route="/studies"}`. The label names are sanitized and
/// the values escaped here, at write time, so the renderer can merge label
/// blocks by plain string concatenation.
pub fn labeled(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let rendered: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize_label_name(k), escape_label_value(v)))
        .collect();
    format!("{}{{{}}}", name, rendered.join(","))
}

/// Splits a registry key into `(base_name, embedded_label_block)` where the
/// block is the text between the braces (empty when absent).
fn split_key(key: &str) -> (&str, &str) {
    match key.find('{') {
        Some(pos) => {
            let rest = &key[pos + 1..];
            (&key[..pos], rest.strip_suffix('}').unwrap_or(rest))
        }
        None => (key, ""),
    }
}

/// Joins two pre-rendered label blocks (either may be empty).
fn merge_labels(embedded: &str, section: &str) -> String {
    match (embedded.is_empty(), section.is_empty()) {
        (true, true) => String::new(),
        (true, false) => section.to_string(),
        (false, true) => embedded.to_string(),
        (false, false) => format!("{embedded},{section}"),
    }
}

/// Formats a sample value: integers stay integral, non-finite values use
/// the exposition spellings `+Inf` / `-Inf` / `NaN`.
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        (if v > 0.0 { "+Inf" } else { "-Inf" }).to_string()
    } else {
        format!("{v}")
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

enum Sample {
    Counter { labels: String, value: u64 },
    Gauge { labels: String, value: f64 },
    Histogram { labels: String, hist: HistogramSnapshot },
}

struct Family {
    kind: Kind,
    samples: Vec<Sample>,
}

/// Accumulates snapshots into labeled families and renders the exposition
/// text. See the module docs for the full mapping.
pub struct PrometheusText {
    namespace: String,
    families: BTreeMap<String, Family>,
}

impl PrometheusText {
    /// A renderer prefixing every family with `namespace_` (pass `""` for
    /// no prefix).
    pub fn new(namespace: &str) -> PrometheusText {
        let namespace = if namespace.is_empty() {
            String::new()
        } else {
            format!("{}_", sanitize_metric_name(namespace))
        };
        PrometheusText {
            namespace,
            families: BTreeMap::new(),
        }
    }

    fn family_name(&self, base: &str, kind: Kind) -> String {
        let mut name = format!("{}{}", self.namespace, sanitize_metric_name(base));
        if kind == Kind::Counter && !name.ends_with("_total") {
            name.push_str("_total");
        }
        name
    }

    fn push(&mut self, base: &str, kind: Kind, sample: Sample) {
        let name = self.family_name(base, kind);
        let family = self
            .families
            .entry(name)
            .or_insert_with(|| Family {
                kind,
                samples: Vec::new(),
            });
        // A name colliding across kinds after sanitization would corrupt
        // the family; keep the first kind and drop the stray sample.
        if family.kind == kind {
            family.samples.push(sample);
        }
    }

    /// Adds every series in `snapshot`, attaching `section_labels` (e.g.
    /// `[("study", "my-study")]`) to each in addition to any labels
    /// embedded in the metric key via [`labeled`].
    pub fn add_snapshot(&mut self, snapshot: &MetricsSnapshot, section_labels: &[(&str, &str)]) {
        let section = labeled("", section_labels);
        let section = section.trim_start_matches('{').trim_end_matches('}');
        for (key, value) in &snapshot.counters {
            let (base, embedded) = split_key(key);
            self.push(
                base,
                Kind::Counter,
                Sample::Counter {
                    labels: merge_labels(embedded, section),
                    value: *value,
                },
            );
        }
        for (key, value) in &snapshot.gauges {
            let (base, embedded) = split_key(key);
            self.push(
                base,
                Kind::Gauge,
                Sample::Gauge {
                    labels: merge_labels(embedded, section),
                    value: *value,
                },
            );
        }
        for (key, hist) in &snapshot.histograms {
            let (base, embedded) = split_key(key);
            self.push(
                base,
                Kind::Histogram,
                Sample::Histogram {
                    labels: merge_labels(embedded, section),
                    hist: hist.clone(),
                },
            );
        }
    }

    /// Renders the accumulated families as exposition text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, family) in &self.families {
            out.push_str(&format!("# TYPE {} {}\n", name, family.kind.as_str()));
            for sample in &family.samples {
                match sample {
                    Sample::Counter { labels, value } => {
                        out.push_str(&format!("{}{} {}\n", name, braced(labels), value));
                    }
                    Sample::Gauge { labels, value } => {
                        out.push_str(&format!("{}{} {}\n", name, braced(labels), fmt_value(*value)));
                    }
                    Sample::Histogram { labels, hist } => {
                        let cumulative = hist.cumulative();
                        for (bound, count) in hist.bounds.iter().zip(&cumulative) {
                            let le = format!("le=\"{}\"", fmt_value(*bound));
                            out.push_str(&format!(
                                "{}_bucket{} {}\n",
                                name,
                                braced(&merge_labels(labels, &le)),
                                count
                            ));
                        }
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            name,
                            braced(&merge_labels(labels, "le=\"+Inf\"")),
                            hist.count
                        ));
                        out.push_str(&format!(
                            "{}_sum{} {}\n",
                            name,
                            braced(labels),
                            fmt_value(hist.sum)
                        ));
                        out.push_str(&format!("{}_count{} {}\n", name, braced(labels), hist.count));
                    }
                }
            }
        }
        out
    }
}

fn braced(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    /// Golden-file test: the full exposition output for a registry
    /// exercising name sanitizing, label escaping, embedded + section
    /// label merging, and cumulative histogram buckets. Any renderer
    /// change must update this string deliberately.
    #[test]
    fn renders_the_expected_exposition_text() {
        let m = MetricsRegistry::new();
        m.inc_counter("trial.total", 7);
        m.inc_counter(&labeled("http.requests", &[("route", "/studies"), ("status", "200")]), 3);
        m.set_gauge("run.best_loss", 0.25);
        m.set_gauge("9leading.digit", 1.0);
        // Exactly-representable binary fractions so the golden sum below is
        // stable under shortest-round-trip float formatting.
        m.observe_with("exec.queue_wait_s", 0.0078125, &[0.01, 0.1]);
        m.observe_with("exec.queue_wait_s", 4.0, &[0.01, 0.1]);
        m.observe_with("exec.queue_wait_s", 0.0625, &[0.01, 0.1]);

        let mut prom = PrometheusText::new("volcanoml");
        prom.add_snapshot(&m.snapshot(), &[("study", "a\"b\\c")]);
        let expected = "\
# TYPE volcanoml__9leading_digit gauge
volcanoml__9leading_digit{study=\"a\\\"b\\\\c\"} 1
# TYPE volcanoml_exec_queue_wait_s histogram
volcanoml_exec_queue_wait_s_bucket{study=\"a\\\"b\\\\c\",le=\"0.01\"} 1
volcanoml_exec_queue_wait_s_bucket{study=\"a\\\"b\\\\c\",le=\"0.1\"} 2
volcanoml_exec_queue_wait_s_bucket{study=\"a\\\"b\\\\c\",le=\"+Inf\"} 3
volcanoml_exec_queue_wait_s_sum{study=\"a\\\"b\\\\c\"} 4.0703125
volcanoml_exec_queue_wait_s_count{study=\"a\\\"b\\\\c\"} 3
# TYPE volcanoml_http_requests_total counter
volcanoml_http_requests_total{route=\"/studies\",status=\"200\",study=\"a\\\"b\\\\c\"} 3
# TYPE volcanoml_run_best_loss gauge
volcanoml_run_best_loss{study=\"a\\\"b\\\\c\"} 0.25
# TYPE volcanoml_trial_total counter
volcanoml_trial_total{study=\"a\\\"b\\\\c\"} 7
";
        assert_eq!(prom.render(), expected);
    }

    #[test]
    fn merges_the_same_metric_across_snapshots_into_one_family() {
        let a = MetricsRegistry::new();
        a.inc_counter("trial.total", 2);
        let b = MetricsRegistry::new();
        b.inc_counter("trial.total", 5);
        let mut prom = PrometheusText::new("volcanoml");
        prom.add_snapshot(&a.snapshot(), &[("study", "a")]);
        prom.add_snapshot(&b.snapshot(), &[("study", "b")]);
        let text = prom.render();
        assert_eq!(
            text.matches("# TYPE volcanoml_trial_total counter").count(),
            1,
            "one TYPE line per family:\n{text}"
        );
        assert!(text.contains("volcanoml_trial_total{study=\"a\"} 2"));
        assert!(text.contains("volcanoml_trial_total{study=\"b\"} 5"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_monotone_and_closed_by_inf() {
        let m = MetricsRegistry::new();
        for v in [0.0005, 0.002, 0.002, 0.03, 9.0] {
            m.observe("trial.cost_s", v);
        }
        let mut prom = PrometheusText::new("");
        prom.add_snapshot(&m.snapshot(), &[]);
        let text = prom.render();
        let mut last = 0u64;
        let mut bucket_lines = 0;
        for line in text.lines().filter(|l| l.starts_with("trial_cost_s_bucket")) {
            let count: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(count >= last, "buckets must be cumulative: {text}");
            last = count;
            bucket_lines += 1;
        }
        assert_eq!(bucket_lines, 11, "10 bounds + the +Inf closer");
        assert!(text.contains("le=\"+Inf\"} 5"));
        assert!(text.contains("trial_cost_s_count 5"));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn counters_already_ending_in_total_are_not_double_suffixed() {
        let m = MetricsRegistry::new();
        m.inc_counter("trial.total", 1);
        let mut prom = PrometheusText::new("ns");
        prom.add_snapshot(&m.snapshot(), &[]);
        let text = prom.render();
        assert!(text.contains("ns_trial_total 1"));
        assert!(!text.contains("total_total"));
    }

    #[test]
    fn non_finite_gauges_use_exposition_spellings() {
        let m = MetricsRegistry::new();
        m.set_gauge("a", f64::INFINITY);
        m.set_gauge("b", f64::NEG_INFINITY);
        m.set_gauge("c", f64::NAN);
        let mut prom = PrometheusText::new("");
        prom.add_snapshot(&m.snapshot(), &[]);
        let text = prom.render();
        assert!(text.contains("a +Inf\n"));
        assert!(text.contains("b -Inf\n"));
        assert!(text.contains("c NaN\n"));
    }
}
