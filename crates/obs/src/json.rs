//! Minimal flat-JSON helpers shared by the tracer, metrics, and report.
//!
//! Every line this workspace emits (trial journal, trace stream, metrics
//! snapshot) is a flat JSON object whose values are numbers, strings, or
//! booleans — no nesting deeper than the metrics snapshot's two levels,
//! which the report reads through [`parse_object`]'s nested-object support.
//! Keeping the parser in-tree keeps the workspace hermetic (std only).

use std::collections::BTreeMap;

/// A parsed JSON value (the subset our streams use).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A finite number.
    Num(f64),
    /// A string (also used to encode `inf`/`-inf`/`nan` floats).
    Str(String),
    /// A boolean.
    Bool(bool),
    /// `null`.
    Null,
    /// A nested object (metrics snapshots).
    Obj(BTreeMap<String, JsonValue>),
    /// An array (metrics histogram buckets).
    Arr(Vec<JsonValue>),
}

impl JsonValue {
    /// Numeric view; decodes the `"inf"`/`"-inf"`/`"nan"` string encoding.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            JsonValue::Str(s) => match s.as_str() {
                "inf" => Some(f64::INFINITY),
                "-inf" => Some(f64::NEG_INFINITY),
                "nan" => Some(f64::NAN),
                _ => None,
            },
            _ => None,
        }
    }

    /// Integer view of a numeric value.
    pub fn as_i64(&self) -> Option<i64> {
        self.as_f64().filter(|v| v.is_finite()).map(|v| v as i64)
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object view.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Escapes a string for embedding in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Encodes an `f64` as a JSON token, quoting non-finite values so the
/// stream stays valid JSON (`"inf"`, `"-inf"`, `"nan"`).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else if v.is_nan() {
        "\"nan\"".to_string()
    } else if v > 0.0 {
        "\"inf\"".to_string()
    } else {
        "\"-inf\"".to_string()
    }
}

/// Parses one JSON document (object at the top level). Returns `None` on
/// any syntax error — callers treat unparseable lines as corrupt.
pub fn parse_object(text: &str) -> Option<BTreeMap<String, JsonValue>> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return None;
    }
    match v {
        JsonValue::Obj(m) => Some(m),
        _ => None,
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Option<()> {
        (self.bump()? == b).then_some(())
    }

    fn literal(&mut self, lit: &str) -> Option<()> {
        let end = self.pos + lit.len();
        if self.bytes.get(self.pos..end)? == lit.as_bytes() {
            self.pos = end;
            Some(())
        } else {
            None
        }
    }

    fn value(&mut self) -> Option<JsonValue> {
        self.skip_ws();
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string().map(JsonValue::Str),
            b't' => self.literal("true").map(|_| JsonValue::Bool(true)),
            b'f' => self.literal("false").map(|_| JsonValue::Bool(false)),
            b'n' => self.literal("null").map(|_| JsonValue::Null),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Option<JsonValue> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Some(JsonValue::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Some(JsonValue::Obj(map)),
                _ => return None,
            }
        }
    }

    fn array(&mut self) -> Option<JsonValue> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Some(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Some(JsonValue::Arr(items)),
                _ => return None,
            }
        }
    }

    fn string(&mut self) -> Option<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Some(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = self.bytes.get(self.pos..self.pos + 4)?;
                        let code =
                            u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                        self.pos += 4;
                        out.push(char::from_u32(code)?);
                    }
                    _ => return None,
                },
                b => {
                    // Re-decode multi-byte UTF-8 sequences from the source.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let len = if b >= 0xf0 {
                            4
                        } else if b >= 0xe0 {
                            3
                        } else {
                            2
                        };
                        let chunk = self.bytes.get(start..start + len)?;
                        out.push_str(std::str::from_utf8(chunk).ok()?);
                        self.pos = start + len;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Option<JsonValue> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .parse()
            .ok()
            .map(JsonValue::Num)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_object() {
        let m = parse_object(
            r#"{"trial":3,"loss":0.25,"arm":"algorithm=1","cached":false,"x":null}"#,
        )
        .unwrap();
        assert_eq!(m["trial"].as_i64(), Some(3));
        assert_eq!(m["loss"].as_f64(), Some(0.25));
        assert_eq!(m["arm"].as_str(), Some("algorithm=1"));
        assert_eq!(m["cached"].as_bool(), Some(false));
        assert_eq!(m["x"], JsonValue::Null);
    }

    #[test]
    fn parses_nested_objects_and_arrays() {
        let m = parse_object(r#"{"counters":{"a":1,"b":2},"buckets":[{"le":0.5,"count":3}]}"#)
            .unwrap();
        let counters = m["counters"].as_obj().unwrap();
        assert_eq!(counters["a"].as_i64(), Some(1));
        match &m["buckets"] {
            JsonValue::Arr(items) => {
                assert_eq!(items.len(), 1);
                assert_eq!(items[0].as_obj().unwrap()["count"].as_i64(), Some(3));
            }
            _ => panic!("expected array"),
        }
    }

    #[test]
    fn non_finite_roundtrip() {
        assert_eq!(num(f64::INFINITY), "\"inf\"");
        let m = parse_object(&format!("{{\"loss\":{}}}", num(f64::INFINITY))).unwrap();
        assert_eq!(m["loss"].as_f64(), Some(f64::INFINITY));
        let m = parse_object(&format!("{{\"loss\":{}}}", num(f64::NAN))).unwrap();
        assert!(m["loss"].as_f64().unwrap().is_nan());
    }

    #[test]
    fn escape_roundtrip() {
        let s = "path \"with\"\nnewline\tand\\slash";
        let doc = format!("{{\"k\":\"{}\"}}", escape(s));
        let m = parse_object(&doc).unwrap();
        assert_eq!(m["k"].as_str(), Some(s));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_object("{\"a\":}").is_none());
        assert!(parse_object("not json").is_none());
        assert!(parse_object("{\"a\":1} trailing").is_none());
    }
}
