//! Metrics registry: named counters, gauges, and fixed-bucket latency
//! histograms, snapshot-serializable to a stable JSON schema.
//!
//! The snapshot schema (pinned by `snapshot_schema_is_stable`):
//!
//! ```json
//! {
//!   "counters": {"cache.result.hits": 12, "...": 0},
//!   "gauges": {"run.best_loss": 0.118, "...": 0.0},
//!   "histograms": {
//!     "trial.cost_s": {
//!       "buckets": [{"le": 0.001, "count": 0}, ..., {"le": "inf", "count": 41}],
//!       "count": 41,
//!       "sum": 3.82
//!     }
//!   }
//! }
//! ```
//!
//! Maps are `BTreeMap`-backed so the JSON key order is deterministic and
//! diffs between runs stay readable. All mutators take `&self`; the
//! registry is shared as `Arc<MetricsRegistry>` across the evaluator, the
//! pool-metrics sampler, and the training-path samplers.

use crate::json::{escape, num};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Default latency buckets (seconds) for [`MetricsRegistry::observe`].
pub const DEFAULT_BUCKETS: [f64; 10] = [0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0];

/// Microsecond-scale buckets (seconds) for self-overhead accounting and
/// other sub-millisecond latencies ([`DEFAULT_BUCKETS`] starts at 1 ms,
/// which would collapse them all into the first bucket).
pub const FINE_BUCKETS: [f64; 10] = [
    1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 0.1,
];

#[derive(Debug, Clone)]
struct Histogram {
    bounds: Vec<f64>,
    /// One count per bound, plus a final overflow (`le: "inf"`) bucket.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Histogram {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
        }
    }

    fn observe(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
    }
}

/// A point-in-time copy of one histogram: per-bucket counts plus the
/// total count and sum that Prometheus `_count`/`_sum` series need.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Upper bucket bounds (exclusive of the implicit `+Inf` overflow).
    pub bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts; `counts.len() == bounds.len() + 1`
    /// with the final element counting overflow observations.
    pub counts: Vec<u64>,
    /// Total number of observations (equals `counts.iter().sum()`).
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Cumulative bucket counts in Prometheus `le` convention: element `i`
    /// counts observations `<= bounds[i]`, and the final element (the
    /// `+Inf` bucket) equals [`HistogramSnapshot::count`]. The returned
    /// sequence is monotonically non-decreasing by construction.
    pub fn cumulative(&self) -> Vec<u64> {
        let mut running = 0u64;
        self.counts
            .iter()
            .map(|c| {
                running += c;
                running
            })
            .collect()
    }
}

/// A point-in-time copy of every metric, decoupled from the live registry.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Monotonic event counts.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins instantaneous values.
    pub gauges: BTreeMap<String, f64>,
    /// Per-histogram bucket snapshots keyed by metric name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Renders the snapshot as a pretty-printed JSON document with the
    /// pinned schema described in the module docs.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", escape(k), v));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", escape(k), num(*v)));
        }
        if !self.gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {{\"buckets\": [", escape(k)));
            for (j, c) in h.counts.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let le = h
                    .bounds
                    .get(j)
                    .map_or("\"inf\"".to_string(), |b| format!("{b}"));
                out.push_str(&format!("{{\"le\": {le}, \"count\": {c}}}"));
            }
            out.push_str(&format!("], \"count\": {}, \"sum\": {}}}", h.count, num(h.sum)));
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

#[derive(Default)]
struct MetricsState {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// Thread-safe metrics registry. See the module docs for the snapshot
/// schema and naming conventions (`subsystem.object.event`).
#[derive(Default)]
pub struct MetricsRegistry {
    state: Mutex<MetricsState>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `delta` to a counter, creating it at zero first if needed.
    pub fn inc_counter(&self, name: &str, delta: u64) {
        let mut s = self.state.lock().expect("metrics poisoned");
        *s.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets a gauge to `value` (last write wins).
    pub fn set_gauge(&self, name: &str, value: f64) {
        let mut s = self.state.lock().expect("metrics poisoned");
        s.gauges.insert(name.to_string(), value);
    }

    /// Adds `delta` to a gauge, creating it at zero first if needed.
    pub fn add_to_gauge(&self, name: &str, delta: f64) {
        let mut s = self.state.lock().expect("metrics poisoned");
        *s.gauges.entry(name.to_string()).or_insert(0.0) += delta;
    }

    /// Records `value` into a histogram with [`DEFAULT_BUCKETS`].
    pub fn observe(&self, name: &str, value: f64) {
        self.observe_with(name, value, &DEFAULT_BUCKETS);
    }

    /// Records `value` into a histogram with explicit bucket bounds. The
    /// bounds are fixed at the histogram's first observation.
    pub fn observe_with(&self, name: &str, value: f64, bounds: &[f64]) {
        let mut s = self.state.lock().expect("metrics poisoned");
        s.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// Reads one counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        let s = self.state.lock().expect("metrics poisoned");
        s.counters.get(name).copied().unwrap_or(0)
    }

    /// Reads one gauge (`None` when absent).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        let s = self.state.lock().expect("metrics poisoned");
        s.gauges.get(name).copied()
    }

    /// Takes a point-in-time snapshot of all metrics.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let s = self.state.lock().expect("metrics poisoned");
        MetricsSnapshot {
            counters: s.counters.clone(),
            gauges: s.gauges.clone(),
            histograms: s
                .histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        HistogramSnapshot {
                            bounds: h.bounds.clone(),
                            counts: h.counts.clone(),
                            count: h.count,
                            sum: h.sum,
                        },
                    )
                })
                .collect(),
        }
    }

    /// Snapshots and renders the pinned JSON schema in one step.
    pub fn snapshot_json(&self) -> String {
        self.snapshot().to_json()
    }

    /// Writes the snapshot JSON to `path` (truncates).
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.snapshot_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse_object, JsonValue};

    #[test]
    fn counters_gauges_histograms_accumulate() {
        let m = MetricsRegistry::new();
        m.inc_counter("cache.result.hits", 2);
        m.inc_counter("cache.result.hits", 3);
        m.set_gauge("run.best_loss", 0.5);
        m.set_gauge("run.best_loss", 0.25);
        m.add_to_gauge("worker.0.busy_s", 1.5);
        m.add_to_gauge("worker.0.busy_s", 0.5);
        m.observe("trial.cost_s", 0.003);
        m.observe("trial.cost_s", 120.0);
        assert_eq!(m.counter("cache.result.hits"), 5);
        assert_eq!(m.gauge("run.best_loss"), Some(0.25));
        assert_eq!(m.gauge("worker.0.busy_s"), Some(2.0));
        let snap = m.snapshot();
        let h = &snap.histograms["trial.cost_s"];
        assert_eq!(h.bounds.len() + 1, h.counts.len());
        assert_eq!(h.count, 2);
        assert!((h.sum - 120.003).abs() < 1e-9);
        assert_eq!(h.counts[1], 1, "0.003 lands in the le=0.005 bucket");
        assert_eq!(*h.counts.last().unwrap(), 1, "120 lands in the overflow bucket");
        // Count/sum stay consistent with the buckets, and the Prometheus
        // cumulative view is monotone and ends at the total count.
        assert_eq!(h.counts.iter().sum::<u64>(), h.count);
        let cumulative = h.cumulative();
        assert!(cumulative.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*cumulative.last().unwrap(), h.count);
    }

    /// Pins the metrics JSON schema: top-level keys, bucket shape, and the
    /// `"inf"` overflow encoding. Downstream consumers (report, ci.sh)
    /// parse this format — change it deliberately or not at all.
    #[test]
    fn snapshot_schema_is_stable() {
        let m = MetricsRegistry::new();
        m.inc_counter("cache.result.hits", 4);
        m.set_gauge("run.workers", 2.0);
        m.observe_with("exec.queue_wait_s", 0.02, &[0.01, 0.1]);
        m.observe_with("exec.queue_wait_s", 5.0, &[0.01, 0.1]);
        let json = m.snapshot_json();
        let doc = parse_object(&json).expect("snapshot must be valid JSON");
        assert_eq!(
            doc.keys().cloned().collect::<Vec<_>>(),
            vec!["counters", "gauges", "histograms"]
        );
        assert_eq!(
            doc["counters"].as_obj().unwrap()["cache.result.hits"].as_i64(),
            Some(4)
        );
        assert_eq!(doc["gauges"].as_obj().unwrap()["run.workers"].as_f64(), Some(2.0));
        let hist = doc["histograms"].as_obj().unwrap()["exec.queue_wait_s"]
            .as_obj()
            .unwrap();
        assert_eq!(hist["count"].as_i64(), Some(2));
        assert_eq!(hist["sum"].as_f64(), Some(5.02));
        let buckets = match &hist["buckets"] {
            JsonValue::Arr(items) => items,
            _ => panic!("buckets must be an array"),
        };
        assert_eq!(buckets.len(), 3);
        let last = buckets[2].as_obj().unwrap();
        assert_eq!(last["le"].as_str(), Some("inf"));
        assert_eq!(last["count"].as_i64(), Some(1));
        let mid = buckets[1].as_obj().unwrap();
        assert_eq!(mid["le"].as_f64(), Some(0.1));
        assert_eq!(mid["count"].as_i64(), Some(1));
    }

    #[test]
    fn empty_registry_serializes_cleanly() {
        let m = MetricsRegistry::new();
        let doc = parse_object(&m.snapshot_json()).unwrap();
        assert!(doc["counters"].as_obj().unwrap().is_empty());
        assert!(doc["histograms"].as_obj().unwrap().is_empty());
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let m = std::sync::Arc::new(MetricsRegistry::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = std::sync::Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.inc_counter("x", 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.counter("x"), 8000);
    }
}
