//! The live event bus: a bounded, lock-cheap ring of typed, timestamped
//! observability events with cursor-based (resumable) subscription.
//!
//! Where the [`crate::tracer`] stream is an *archival* record (append-only
//! JSONL, replayed post-hoc by `volcanoml report`), the bus is the *live*
//! plane: the serve layer streams it to dashboards over
//! `GET /studies/:id/events`, and a subscriber that disconnects resumes
//! duplicate-free by passing back the last event id it saw
//! (`Last-Event-ID` in SSE terms).
//!
//! Design constraints, in order:
//!
//! - **Bounded.** The ring holds at most `capacity` events; publishing past
//!   that drops the oldest (counted in [`EventBus::dropped`]). A stalled
//!   subscriber can therefore never make the search engine allocate.
//! - **Cheap to publish.** One mutex lock, one `VecDeque` push, one condvar
//!   notify. No serialization happens at publish time — events are plain
//!   structs; JSON is rendered per-subscriber at read time.
//! - **Cursor, not queue, per subscriber.** Subscribers hold nothing but
//!   the last id they consumed. [`EventBus::read_after`] returns every
//!   retained event with a larger id, so any number of subscribers (or a
//!   reconnecting one) share the same ring without registration.
//!
//! Event ids are assigned at publish time, start at 1, and are strictly
//! increasing — a subscriber that sees a gap after resuming knows exactly
//! how many events the ring dropped while it was away.

use crate::json::{escape, num, parse_object};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Default ring capacity: enough for every event of a multi-hundred-trial
/// study while bounding a stalled subscriber's cost to ~100 KiB.
pub const DEFAULT_BUS_CAPACITY: usize = 4096;

/// One typed observability event. Variants mirror the decision points the
/// tracer already records, plus the serve layer's study lifecycle.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsEvent {
    /// A trial completed (successfully or not) and was recorded.
    TrialFinished {
        /// Journal trial id.
        trial: u64,
        /// Hex assignment digest (journal join key).
        digest: String,
        /// Fidelity the trial ran at.
        fidelity: f64,
        /// Multi-fidelity rung (-1 = not bracket-scheduled).
        rung: i64,
        /// Issuing bracket id (-1 = not bracket-scheduled).
        bracket: i64,
        /// Observed loss.
        loss: f64,
        /// Evaluation cost in seconds (0 for cache hits).
        cost: f64,
        /// Worker that ran the trial (-1 = serial path).
        worker: i64,
        /// Result-cache hit.
        cached: bool,
    },
    /// The rising-bandit rule eliminated an arm.
    ArmEliminated {
        /// Block-tree path of the deciding conditioning block.
        path: String,
        /// The eliminated arm's label (`algorithm=3`).
        arm: String,
        /// Optimistic EU bound at the decision.
        eu_opt: f64,
        /// Pessimistic EU bound at the decision.
        eu_pess: f64,
        /// Free-form detail (`dominated by ... after N plays`).
        detail: String,
    },
    /// A configuration's promotion to a higher rung materialized (it ran at
    /// `rung >= 1` — every config above rung 0 got there by promotion).
    RungPromoted {
        /// The promoting bracket's stable id.
        bracket: i64,
        /// The rung the configuration ran at.
        rung: i64,
        /// Hex assignment digest of the promoted configuration.
        digest: String,
    },
    /// A study was accepted by the serve layer.
    StudySubmitted {
        /// Study id.
        study: String,
    },
    /// A study was re-driven from its journal after a restart.
    StudyResumed {
        /// Study id.
        study: String,
    },
    /// A study ran to completion.
    StudyDone {
        /// Study id.
        study: String,
        /// Best validation loss found.
        best_loss: f64,
        /// Non-cached evaluations spent.
        n_evaluations: u64,
    },
    /// A study was cancelled before spending its budget.
    StudyCancelled {
        /// Study id.
        study: String,
    },
    /// A study's fit returned an error.
    StudyFailed {
        /// Study id.
        study: String,
        /// The error message.
        error: String,
    },
    /// Incremental space construction applied an expansion: the search
    /// space grew because plateau evidence accumulated.
    SpaceExpanded {
        /// Stage number after applying (stage 0 is the seed space).
        stage: u64,
        /// The expansion's ladder name (`transform_stage`, ...).
        name: String,
        /// Plateau EUI reading that triggered the expansion.
        trigger_eui: f64,
        /// Number of trials completed when the expansion landed.
        trial: u64,
    },
    /// A worker blew through its per-trial deadline and was abandoned.
    WorkerStalled {
        /// The stalled worker's id.
        worker: i64,
        /// How long the trial ran before abandonment, seconds.
        stalled_s: f64,
    },
}

impl ObsEvent {
    /// Machine-readable event type tag (the SSE `event:` field).
    pub fn kind(&self) -> &'static str {
        match self {
            ObsEvent::TrialFinished { .. } => "TrialFinished",
            ObsEvent::ArmEliminated { .. } => "ArmEliminated",
            ObsEvent::RungPromoted { .. } => "RungPromoted",
            ObsEvent::StudySubmitted { .. } => "StudySubmitted",
            ObsEvent::StudyResumed { .. } => "StudyResumed",
            ObsEvent::StudyDone { .. } => "StudyDone",
            ObsEvent::StudyCancelled { .. } => "StudyCancelled",
            ObsEvent::StudyFailed { .. } => "StudyFailed",
            ObsEvent::SpaceExpanded { .. } => "SpaceExpanded",
            ObsEvent::WorkerStalled { .. } => "WorkerStalled",
        }
    }

    fn payload_json(&self) -> String {
        match self {
            ObsEvent::TrialFinished {
                trial,
                digest,
                fidelity,
                rung,
                bracket,
                loss,
                cost,
                worker,
                cached,
            } => format!(
                "\"trial\":{trial},\"digest\":\"{}\",\"fidelity\":{},\"rung\":{rung},\
                 \"bracket\":{bracket},\"loss\":{},\"cost\":{},\"worker\":{worker},\"cached\":{cached}",
                escape(digest),
                num(*fidelity),
                num(*loss),
                num(*cost),
            ),
            ObsEvent::ArmEliminated {
                path,
                arm,
                eu_opt,
                eu_pess,
                detail,
            } => format!(
                "\"path\":\"{}\",\"arm\":\"{}\",\"eu_opt\":{},\"eu_pess\":{},\"detail\":\"{}\"",
                escape(path),
                escape(arm),
                num(*eu_opt),
                num(*eu_pess),
                escape(detail),
            ),
            ObsEvent::RungPromoted {
                bracket,
                rung,
                digest,
            } => format!(
                "\"bracket\":{bracket},\"rung\":{rung},\"digest\":\"{}\"",
                escape(digest)
            ),
            ObsEvent::StudySubmitted { study } | ObsEvent::StudyResumed { study } | ObsEvent::StudyCancelled { study } => {
                format!("\"study\":\"{}\"", escape(study))
            }
            ObsEvent::StudyDone {
                study,
                best_loss,
                n_evaluations,
            } => format!(
                "\"study\":\"{}\",\"best_loss\":{},\"n_evaluations\":{n_evaluations}",
                escape(study),
                num(*best_loss),
            ),
            ObsEvent::StudyFailed { study, error } => format!(
                "\"study\":\"{}\",\"error\":\"{}\"",
                escape(study),
                escape(error)
            ),
            ObsEvent::SpaceExpanded {
                stage,
                name,
                trigger_eui,
                trial,
            } => format!(
                "\"stage\":{stage},\"name\":\"{}\",\"trigger_eui\":{},\"trial\":{trial}",
                escape(name),
                num(*trigger_eui),
            ),
            ObsEvent::WorkerStalled { worker, stalled_s } => {
                format!("\"worker\":{worker},\"stalled_s\":{}", num(*stalled_s))
            }
        }
    }
}

/// One published event: its ring id, publish time, and typed payload.
#[derive(Debug, Clone, PartialEq)]
pub struct BusEvent {
    /// Strictly increasing id (1-based); the subscriber's resume cursor.
    pub id: u64,
    /// Publish time, seconds since the bus was created.
    pub t_s: f64,
    /// The typed payload.
    pub event: ObsEvent,
}

impl BusEvent {
    /// Renders one flat JSON object (`id`, `t_s`, `type`, payload fields).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"id\":{},\"t_s\":{:.6},\"type\":\"{}\",{}}}",
            self.id,
            self.t_s,
            self.event.kind(),
            self.event.payload_json()
        )
    }

    /// Parses a [`BusEvent::to_json`] line back (clients, tests).
    pub fn from_json(text: &str) -> Option<BusEvent> {
        let doc = parse_object(text)?;
        let id = doc.get("id")?.as_f64()? as u64;
        let t_s = doc.get("t_s")?.as_f64()?;
        let f = |k: &str| doc.get(k).and_then(|v| v.as_f64());
        let i = |k: &str| doc.get(k).and_then(|v| v.as_i64());
        let s = |k: &str| doc.get(k).and_then(|v| v.as_str()).map(str::to_string);
        let event = match doc.get("type")?.as_str()? {
            "TrialFinished" => ObsEvent::TrialFinished {
                trial: i("trial")? as u64,
                digest: s("digest")?,
                fidelity: f("fidelity")?,
                rung: i("rung")?,
                bracket: i("bracket")?,
                loss: f("loss")?,
                cost: f("cost")?,
                worker: i("worker")?,
                cached: doc.get("cached")?.as_bool()?,
            },
            "ArmEliminated" => ObsEvent::ArmEliminated {
                path: s("path")?,
                arm: s("arm")?,
                eu_opt: f("eu_opt")?,
                eu_pess: f("eu_pess")?,
                detail: s("detail")?,
            },
            "RungPromoted" => ObsEvent::RungPromoted {
                bracket: i("bracket")?,
                rung: i("rung")?,
                digest: s("digest")?,
            },
            "StudySubmitted" => ObsEvent::StudySubmitted { study: s("study")? },
            "StudyResumed" => ObsEvent::StudyResumed { study: s("study")? },
            "StudyDone" => ObsEvent::StudyDone {
                study: s("study")?,
                best_loss: f("best_loss")?,
                n_evaluations: i("n_evaluations")? as u64,
            },
            "StudyCancelled" => ObsEvent::StudyCancelled { study: s("study")? },
            "StudyFailed" => ObsEvent::StudyFailed {
                study: s("study")?,
                error: s("error")?,
            },
            "SpaceExpanded" => ObsEvent::SpaceExpanded {
                stage: i("stage")? as u64,
                name: s("name")?,
                trigger_eui: f("trigger_eui")?,
                trial: i("trial")? as u64,
            },
            "WorkerStalled" => ObsEvent::WorkerStalled {
                worker: i("worker")?,
                stalled_s: f("stalled_s")?,
            },
            _ => return None,
        };
        Some(BusEvent { id, t_s, event })
    }
}

struct BusState {
    ring: VecDeque<BusEvent>,
    next_id: u64,
    dropped: u64,
}

/// Bounded multi-subscriber event ring. See the module docs.
pub struct EventBus {
    capacity: usize,
    epoch: Instant,
    state: Mutex<BusState>,
    cond: Condvar,
}

impl Default for EventBus {
    fn default() -> Self {
        EventBus::new()
    }
}

impl EventBus {
    /// A bus with [`DEFAULT_BUS_CAPACITY`].
    pub fn new() -> EventBus {
        EventBus::with_capacity(DEFAULT_BUS_CAPACITY)
    }

    /// A bus retaining at most `capacity` events (clamped to >= 1).
    pub fn with_capacity(capacity: usize) -> EventBus {
        EventBus {
            capacity: capacity.max(1),
            epoch: Instant::now(),
            state: Mutex::new(BusState {
                ring: VecDeque::new(),
                next_id: 1,
                dropped: 0,
            }),
            cond: Condvar::new(),
        }
    }

    /// Publishes one event, returning its assigned id. Drops the oldest
    /// retained event when the ring is full.
    pub fn publish(&self, event: ObsEvent) -> u64 {
        let t_s = self.epoch.elapsed().as_secs_f64();
        let mut state = self.state.lock().expect("event bus poisoned");
        let id = state.next_id;
        state.next_id += 1;
        state.ring.push_back(BusEvent { id, t_s, event });
        if state.ring.len() > self.capacity {
            state.ring.pop_front();
            state.dropped += 1;
        }
        self.cond.notify_all();
        id
    }

    /// Every retained event with id greater than `after` (all retained
    /// events when `after` is `None`), oldest first. Non-blocking.
    pub fn read_after(&self, after: Option<u64>) -> Vec<BusEvent> {
        let state = self.state.lock().expect("event bus poisoned");
        Self::collect(&state, after)
    }

    /// Like [`EventBus::read_after`], but blocks (up to `timeout`) until at
    /// least one matching event exists. Returns the empty vec on timeout.
    pub fn wait_after(&self, after: Option<u64>, timeout: Duration) -> Vec<BusEvent> {
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock().expect("event bus poisoned");
        loop {
            let out = Self::collect(&state, after);
            if !out.is_empty() {
                return out;
            }
            let now = Instant::now();
            if now >= deadline {
                return Vec::new();
            }
            let (next, wait) = self
                .cond
                .wait_timeout(state, deadline - now)
                .expect("event bus poisoned");
            state = next;
            if wait.timed_out() {
                return Self::collect(&state, after);
            }
        }
    }

    fn collect(state: &BusState, after: Option<u64>) -> Vec<BusEvent> {
        let floor = after.unwrap_or(0);
        state
            .ring
            .iter()
            .filter(|e| e.id > floor)
            .cloned()
            .collect()
    }

    /// Id of the most recently published event (0 before any publish).
    pub fn last_id(&self) -> u64 {
        self.state.lock().expect("event bus poisoned").next_id - 1
    }

    /// Number of events evicted by the capacity bound so far.
    pub fn dropped(&self) -> u64 {
        self.state.lock().expect("event bus poisoned").dropped
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.state.lock().expect("event bus poisoned").ring.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn trial(n: u64) -> ObsEvent {
        ObsEvent::TrialFinished {
            trial: n,
            digest: format!("{n:016x}"),
            fidelity: 1.0,
            rung: -1,
            bracket: -1,
            loss: 0.5,
            cost: 0.01,
            worker: 0,
            cached: false,
        }
    }

    #[test]
    fn ids_are_strictly_increasing_and_cursor_resume_is_duplicate_free() {
        let bus = EventBus::new();
        for n in 0..10 {
            bus.publish(trial(n));
        }
        let first = bus.read_after(None);
        assert_eq!(first.len(), 10);
        assert!(first.windows(2).all(|w| w[1].id == w[0].id + 1));
        let cursor = first[4].id;
        let resumed = bus.read_after(Some(cursor));
        assert_eq!(resumed.len(), 5);
        assert_eq!(resumed[0].id, cursor + 1);
        // No overlap between what was consumed and what resume returns.
        assert!(resumed.iter().all(|e| e.id > cursor));
        assert!(bus.read_after(Some(bus.last_id())).is_empty());
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let bus = EventBus::with_capacity(4);
        for n in 0..10 {
            bus.publish(trial(n));
        }
        assert_eq!(bus.len(), 4);
        assert_eq!(bus.dropped(), 6);
        let retained = bus.read_after(None);
        assert_eq!(retained.first().unwrap().id, 7, "oldest retained id");
        assert_eq!(retained.last().unwrap().id, 10);
        // A subscriber whose cursor fell off the ring sees the gap via ids.
        let resumed = bus.read_after(Some(2));
        assert_eq!(resumed.first().unwrap().id, 7);
    }

    #[test]
    fn wait_after_blocks_until_publish() {
        let bus = Arc::new(EventBus::new());
        let publisher = Arc::clone(&bus);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            publisher.publish(ObsEvent::StudyDone {
                study: "s".into(),
                best_loss: 0.1,
                n_evaluations: 3,
            });
        });
        let got = bus.wait_after(None, Duration::from_secs(5));
        handle.join().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].event.kind(), "StudyDone");
        // Timeout path: nothing new after the cursor.
        let none = bus.wait_after(Some(bus.last_id()), Duration::from_millis(10));
        assert!(none.is_empty());
    }

    #[test]
    fn every_event_kind_round_trips_through_json() {
        let events = vec![
            trial(7),
            ObsEvent::ArmEliminated {
                path: "root".into(),
                arm: "algorithm=3".into(),
                eu_opt: 0.1,
                eu_pess: 0.4,
                detail: "dominated by algorithm=1 after 5 plays".into(),
            },
            ObsEvent::RungPromoted {
                bracket: 0,
                rung: 2,
                digest: "00000000deadbeef".into(),
            },
            ObsEvent::StudySubmitted { study: "a".into() },
            ObsEvent::StudyResumed { study: "a".into() },
            ObsEvent::StudyDone {
                study: "a \"q\"".into(),
                best_loss: f64::INFINITY,
                n_evaluations: 12,
            },
            ObsEvent::StudyCancelled { study: "a".into() },
            ObsEvent::StudyFailed {
                study: "a".into(),
                error: "boom\nline2".into(),
            },
            ObsEvent::SpaceExpanded {
                stage: 1,
                name: "transform_stage".into(),
                trigger_eui: 0.000425,
                trial: 23,
            },
            ObsEvent::WorkerStalled {
                worker: 3,
                stalled_s: 2.5,
            },
        ];
        let bus = EventBus::new();
        for e in &events {
            bus.publish(e.clone());
        }
        for (published, original) in bus.read_after(None).iter().zip(&events) {
            let line = published.to_json();
            let parsed = BusEvent::from_json(&line)
                .unwrap_or_else(|| panic!("unparseable: {line}"));
            assert_eq!(&parsed.event, original, "{line}");
            assert_eq!(parsed.id, published.id);
        }
    }

    #[test]
    fn concurrent_publishers_never_lose_or_duplicate_ids() {
        let bus = Arc::new(EventBus::with_capacity(10_000));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let bus = Arc::clone(&bus);
                std::thread::spawn(move || {
                    for n in 0..200 {
                        bus.publish(trial(t * 1000 + n));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let all = bus.read_after(None);
        assert_eq!(all.len(), 1600);
        let mut ids: Vec<u64> = all.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 1600);
        assert_eq!(*ids.last().unwrap(), 1600);
    }
}
