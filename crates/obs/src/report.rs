//! Run-report rendering: joins the trace stream (and optionally the trial
//! journal and a metrics snapshot) into a human-readable summary.
//!
//! The report is computed from the trace alone — `kind:"trial"` spans carry
//! arm, path, worker, timing, and loss. Supplying the journal additionally
//! verifies the join invariant (every journal row matches exactly one trial
//! span via the `trial` id); supplying the metrics snapshot adds the
//! cache-efficiency and histogram summaries.

use crate::json::{parse_object, JsonValue};
use std::collections::BTreeMap;

/// One parsed JSONL line.
pub type Row = BTreeMap<String, JsonValue>;

/// Parses a JSONL document; fails on the first torn/corrupt line.
pub fn parse_jsonl(text: &str) -> Result<Vec<Row>, String> {
    let mut rows = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_object(line) {
            Some(row) => rows.push(row),
            None => return Err(format!("line {}: unparseable JSON: {line}", i + 1)),
        }
    }
    Ok(rows)
}

/// Parses a JSONL document from a *live* (possibly still-growing) stream.
/// An unparseable final line that lacks its trailing newline is a writer
/// caught mid-append: it is skipped and counted in the returned tally.
/// Corruption anywhere else is still an error.
pub fn parse_jsonl_live(text: &str) -> Result<(Vec<Row>, usize), String> {
    let terminated = text.ends_with('\n');
    let lines: Vec<&str> = text.lines().collect();
    let mut rows = Vec::new();
    let mut skipped = 0usize;
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_object(line) {
            Some(row) => rows.push(row),
            None if i + 1 == lines.len() && !terminated => skipped += 1,
            None => return Err(format!("line {}: unparseable JSON: {line}", i + 1)),
        }
    }
    Ok((rows, skipped))
}

fn get_str<'a>(row: &'a Row, key: &str) -> &'a str {
    row.get(key).and_then(|v| v.as_str()).unwrap_or("")
}

fn get_f64(row: &Row, key: &str) -> f64 {
    row.get(key).and_then(|v| v.as_f64()).unwrap_or(f64::NAN)
}

fn get_i64(row: &Row, key: &str) -> i64 {
    row.get(key).and_then(|v| v.as_i64()).unwrap_or(-1)
}

fn fmt_loss(v: f64) -> String {
    if v.is_nan() {
        "-".to_string()
    } else {
        format!("{v:.4}")
    }
}

#[derive(Default)]
struct ArmStats {
    trials: usize,
    cost: f64,
    best: f64,
    last: f64,
    eliminated: bool,
}

/// Renders the full run report. `trace_text` is required; `journal_text`
/// and `metrics_text` unlock the join check and cache sections. Parsing is
/// strict: any torn line is an error (a completed run's files must be
/// whole). For a run still in progress use [`render_live_report`].
pub fn render_report(
    trace_text: &str,
    journal_text: Option<&str>,
    metrics_text: Option<&str>,
) -> Result<String, String> {
    let events = parse_jsonl(trace_text).map_err(|e| format!("trace: {e}"))?;
    let journal = journal_text
        .map(|t| parse_jsonl(t).map_err(|e| format!("journal: {e}")))
        .transpose()?;
    render_rows(&events, journal.as_deref(), metrics_text, None)
}

/// Renders a report over a possibly-live run: torn final lines in the trace
/// and journal are tolerated (the run's writer may be mid-append), and a
/// status header marks the run `running` or `complete` — what a service's
/// progress endpoint serves while a study executes.
pub fn render_live_report(
    trace_text: &str,
    journal_text: Option<&str>,
    metrics_text: Option<&str>,
    complete: bool,
) -> Result<String, String> {
    let (events, torn_trace) =
        parse_jsonl_live(trace_text).map_err(|e| format!("trace: {e}"))?;
    let mut torn = torn_trace;
    let journal = match journal_text {
        Some(t) => {
            let (rows, torn_journal) =
                parse_jsonl_live(t).map_err(|e| format!("journal: {e}"))?;
            torn += torn_journal;
            Some(rows)
        }
        None => None,
    };
    let mut status = format!(
        "status: {}",
        if complete { "complete" } else { "running (partial)" }
    );
    if torn > 0 {
        status.push_str(&format!("  ({torn} in-flight line(s) skipped)"));
    }
    render_rows(&events, journal.as_deref(), metrics_text, Some(status))
}

/// Shared rendering over pre-parsed rows; `status` prepends a run-status
/// header (live reports only).
fn render_rows(
    events: &[Row],
    journal: Option<&[Row]>,
    metrics_text: Option<&str>,
    status: Option<String>,
) -> Result<String, String> {
    let trials: Vec<&Row> = events
        .iter()
        .filter(|e| get_str(e, "kind") == "trial")
        .collect();
    let eliminations: Vec<&Row> = events
        .iter()
        .filter(|e| get_str(e, "kind") == "eliminate")
        .collect();

    let mut out = String::new();
    out.push_str("VolcanoML run report\n");
    out.push_str("====================\n\n");
    if let Some(status) = &status {
        out.push_str(status);
        out.push_str("\n\n");
    }
    let mut kinds: BTreeMap<&str, usize> = BTreeMap::new();
    for e in events {
        *kinds.entry(get_str(e, "kind")).or_insert(0) += 1;
    }
    out.push_str(&format!("trace events: {}", events.len()));
    if !kinds.is_empty() {
        let parts: Vec<String> = kinds.iter().map(|(k, n)| format!("{k}={n}")).collect();
        out.push_str(&format!("  ({})", parts.join(", ")));
    }
    out.push('\n');

    // ── Journal ↔ trace join check ──────────────────────────────────────
    // Schema-v2 journals interleave event rows (space expansions) with
    // trial rows; only trial rows (no "event" key) participate in the join.
    if let Some(journal) = journal {
        let trial_rows: Vec<&Row> = journal
            .iter()
            .filter(|r| !r.contains_key("event"))
            .collect();
        let mut span_trials: BTreeMap<i64, usize> = BTreeMap::new();
        for t in &trials {
            *span_trials.entry(get_i64(t, "trial")).or_insert(0) += 1;
        }
        let mut joined = 0usize;
        let mut orphans = Vec::new();
        let mut dupes = Vec::new();
        for row in &trial_rows {
            let id = get_i64(row, "trial");
            match span_trials.get(&id) {
                Some(1) => joined += 1,
                Some(_) => dupes.push(id),
                None => orphans.push(id),
            }
        }
        out.push_str(&format!(
            "journal rows: {}  joined to trace: {}",
            trial_rows.len(),
            joined
        ));
        if !orphans.is_empty() {
            out.push_str(&format!("  UNMATCHED: {orphans:?}"));
        }
        if !dupes.is_empty() {
            out.push_str(&format!("  DUPLICATE SPANS: {dupes:?}"));
        }
        out.push('\n');
    }
    out.push('\n');

    // ── Space growth ────────────────────────────────────────────────────
    // Expansion timeline plus trials-per-stage, from the journal's
    // "event":"expansion" rows (incremental space construction only).
    if let Some(journal) = journal {
        let expansions: Vec<&Row> = journal
            .iter()
            .filter(|r| get_str(r, "event") == "expansion")
            .collect();
        if !expansions.is_empty() {
            let trial_ids: Vec<i64> = journal
                .iter()
                .filter(|r| !r.contains_key("event"))
                .map(|r| get_i64(r, "trial"))
                .collect();
            out.push_str("Space growth\n");
            out.push_str("------------\n");
            let mut prev_boundary: i64 = 0;
            for e in &expansions {
                let boundary = get_i64(e, "trial");
                let stage_trials = trial_ids
                    .iter()
                    .filter(|&&id| id >= prev_boundary && id < boundary)
                    .count();
                out.push_str(&format!(
                    "stage {} <- {:<20} at trial {:>4}  trigger_eui={:.6}  ({} trials in stage {})\n",
                    get_i64(e, "stage"),
                    get_str(e, "name"),
                    boundary,
                    get_f64(e, "trigger_eui"),
                    stage_trials,
                    get_i64(e, "stage") - 1,
                ));
                prev_boundary = boundary;
            }
            let final_stage = expansions
                .last()
                .map(|e| get_i64(e, "stage"))
                .unwrap_or(0);
            let tail = trial_ids.iter().filter(|&&id| id >= prev_boundary).count();
            out.push_str(&format!(
                "final stage {final_stage}: {tail} trials\n"
            ));
            out.push('\n');
        }
    }

    // ── Per-arm convergence ─────────────────────────────────────────────
    let mut arms: BTreeMap<String, ArmStats> = BTreeMap::new();
    for t in &trials {
        let arm = get_str(t, "arm");
        let key = if arm.is_empty() { "(root)" } else { arm };
        let s = arms.entry(key.to_string()).or_default();
        let loss = get_f64(t, "loss");
        let cost = get_f64(t, "cost");
        s.trials += 1;
        if cost.is_finite() {
            s.cost += cost;
        }
        if loss.is_finite() {
            s.last = loss;
            if s.trials == 1 || !s.best.is_finite() || loss < s.best {
                s.best = loss;
            }
        } else if s.trials == 1 {
            s.best = f64::NAN;
            s.last = f64::NAN;
        }
    }
    for e in &eliminations {
        if let Some(s) = arms.get_mut(get_str(e, "arm")) {
            s.eliminated = true;
        }
    }
    out.push_str("Per-arm convergence\n");
    out.push_str("-------------------\n");
    if arms.is_empty() {
        out.push_str("(no trial spans)\n");
    } else {
        out.push_str(&format!(
            "{:<28} {:>7} {:>10} {:>10} {:>10}  status\n",
            "arm", "trials", "cost_s", "best", "last"
        ));
        for (arm, s) in &arms {
            out.push_str(&format!(
                "{:<28} {:>7} {:>10.3} {:>10} {:>10}  {}\n",
                arm,
                s.trials,
                s.cost,
                fmt_loss(s.best),
                fmt_loss(s.last),
                if s.eliminated { "eliminated" } else { "active" }
            ));
        }
    }
    out.push('\n');

    // ── Budget allocation by block-tree path ────────────────────────────
    let mut by_path: BTreeMap<String, (usize, f64)> = BTreeMap::new();
    let mut total_cost = 0.0f64;
    for t in &trials {
        let path = get_str(t, "path");
        let key = if path.is_empty() { "(unknown)" } else { path };
        let cost = get_f64(t, "cost");
        let e = by_path.entry(key.to_string()).or_insert((0, 0.0));
        e.0 += 1;
        if cost.is_finite() {
            e.1 += cost;
            total_cost += cost;
        }
    }
    out.push_str("Budget allocation by block path\n");
    out.push_str("-------------------------------\n");
    if by_path.is_empty() {
        out.push_str("(no trial spans)\n");
    } else {
        out.push_str(&format!(
            "{:<44} {:>7} {:>10} {:>6}\n",
            "path", "trials", "cost_s", "share"
        ));
        for (path, (n, cost)) in &by_path {
            let share = if total_cost > 0.0 {
                100.0 * cost / total_cost
            } else {
                0.0
            };
            out.push_str(&format!(
                "{:<44} {:>7} {:>10.3} {:>5.1}%\n",
                path, n, cost, share
            ));
        }
        out.push_str(&format!(
            "{:<44} {:>7} {:>10.3} 100.0%\n",
            "TOTAL",
            trials.len(),
            total_cost
        ));
    }
    out.push('\n');

    // ── Cost efficiency ─────────────────────────────────────────────────
    // How much of the run's trial compute actually bought improvement: an
    // incumbent walk in span-start order tells us when the final best loss
    // was reached and how much cost was sunk after it (exploration tail),
    // plus how much went to failed (non-finite-loss) trials.
    out.push_str("Cost efficiency\n");
    out.push_str("---------------\n");
    if trials.is_empty() {
        out.push_str("(no trial spans)\n");
    } else {
        let mut ordered: Vec<&&Row> = trials.iter().collect();
        ordered.sort_by(|a, b| {
            let (ta, tb) = (get_f64(a, "t_s"), get_f64(b, "t_s"));
            ta.partial_cmp(&tb)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(get_i64(a, "trial").cmp(&get_i64(b, "trial")))
        });
        let mut cum = 0.0f64;
        let mut best = f64::INFINITY;
        let mut cost_to_best = 0.0f64;
        let mut failed = 0usize;
        let mut failed_cost = 0.0f64;
        for t in &ordered {
            let loss = get_f64(t, "loss");
            let cost = get_f64(t, "cost");
            if cost.is_finite() && cost > 0.0 {
                cum += cost;
            }
            if loss.is_finite() {
                if loss < best {
                    best = loss;
                    cost_to_best = cum;
                }
            } else {
                failed += 1;
                if cost.is_finite() && cost > 0.0 {
                    failed_cost += cost;
                }
            }
        }
        if best.is_finite() && cum > 0.0 {
            out.push_str(&format!(
                "best loss {} reached after {:.3}s of trial compute ({:.1}% of {:.3}s total)\n",
                fmt_loss(best),
                cost_to_best,
                100.0 * cost_to_best / cum,
                cum
            ));
            out.push_str(&format!(
                "cost after last improvement: {:.3}s ({:.1}%)\n",
                cum - cost_to_best,
                100.0 * (cum - cost_to_best) / cum
            ));
            out.push_str(&format!(
                "mean trial cost: {:.3}s over {} trials\n",
                cum / ordered.len() as f64,
                ordered.len()
            ));
        } else {
            out.push_str("(no finite-loss trials with positive cost)\n");
        }
        if failed > 0 {
            out.push_str(&format!(
                "failed trials: {failed} costing {failed_cost:.3}s\n"
            ));
        }
    }
    out.push('\n');

    // ── Pareto front: loss vs. training cost ────────────────────────────
    // The non-dominated configurations over (loss, per-trial training
    // cost): the trade-off curve a cost-sensitive deployment picks from.
    // Distinct configurations are keyed by assignment digest (min loss,
    // then min cost, wins per digest); non-finite points are excluded.
    {
        let mut by_digest: BTreeMap<String, (f64, f64, String)> = BTreeMap::new();
        for t in &trials {
            let loss = get_f64(t, "loss");
            let cost = get_f64(t, "cost");
            if !loss.is_finite() || !cost.is_finite() || cost < 0.0 {
                continue;
            }
            let digest = get_str(t, "digest");
            if digest.is_empty() {
                continue;
            }
            let arm = get_str(t, "arm").to_string();
            by_digest
                .entry(digest.to_string())
                .and_modify(|e| {
                    if loss < e.0 || (loss == e.0 && cost < e.1) {
                        *e = (loss, cost, arm.clone());
                    }
                })
                .or_insert((loss, cost, arm));
        }
        let mut points: Vec<(&String, &(f64, f64, String))> = by_digest.iter().collect();
        points.sort_by(|a, b| {
            a.1 .0
                .partial_cmp(&b.1 .0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1 .1.partial_cmp(&b.1 .1).unwrap_or(std::cmp::Ordering::Equal))
        });
        let front: Vec<&(&String, &(f64, f64, String))> = points
            .iter()
            .filter(|(_, a)| {
                !points.iter().any(|(_, b)| {
                    b.0 <= a.0 && b.1 <= a.1 && (b.0 < a.0 || b.1 < a.1)
                })
            })
            .collect();
        if !front.is_empty() {
            out.push_str("Pareto front (loss vs training cost)\n");
            out.push_str("------------------------------------\n");
            out.push_str(&format!(
                "{:<18} {:>10} {:>10}  arm\n",
                "digest", "loss", "cost_s"
            ));
            const MAX_ROWS: usize = 12;
            for (digest, (loss, cost, arm)) in front.iter().take(MAX_ROWS) {
                out.push_str(&format!(
                    "{:<18} {:>10} {:>10.3}  {}\n",
                    digest,
                    fmt_loss(*loss),
                    cost,
                    if arm.is_empty() { "(root)" } else { arm.as_str() }
                ));
            }
            if front.len() > MAX_ROWS {
                out.push_str(&format!("({} more not shown)\n", front.len() - MAX_ROWS));
            }
            out.push_str(&format!(
                "{} of {} distinct configurations are non-dominated\n",
                front.len(),
                points.len()
            ));
            out.push('\n');
        }
    }

    // ── Elimination decisions ───────────────────────────────────────────
    out.push_str("Arm eliminations (EU interval dominance)\n");
    out.push_str("----------------------------------------\n");
    if eliminations.is_empty() {
        out.push_str("(none)\n");
    } else {
        for e in &eliminations {
            out.push_str(&format!(
                "t={:>8.3}s  {:<24} eu=[{}, {}]  {}\n",
                get_f64(e, "t_s"),
                get_str(e, "arm"),
                fmt_loss(get_f64(e, "eu_opt")),
                fmt_loss(get_f64(e, "eu_pess")),
                get_str(e, "detail")
            ));
        }
    }
    out.push('\n');

    // ── Rung occupancy (multi-fidelity schedulers) ──────────────────────
    // Rendered only when at least one trial carries scheduling attribution
    // (`rung >= 0`): full-fidelity engines leave the section out entirely.
    let rung_trials: Vec<&&Row> = trials.iter().filter(|t| get_i64(t, "rung") >= 0).collect();
    if !rung_trials.is_empty() {
        #[derive(Default)]
        struct RungStats {
            fidelity: f64,
            trials: usize,
            brackets: std::collections::BTreeSet<i64>,
            best: f64,
        }
        let mut rungs: BTreeMap<i64, RungStats> = BTreeMap::new();
        for t in &rung_trials {
            let s = rungs.entry(get_i64(t, "rung")).or_default();
            s.fidelity = get_f64(t, "fidelity");
            s.trials += 1;
            s.brackets.insert(get_i64(t, "bracket"));
            let loss = get_f64(t, "loss");
            if loss.is_finite() && (s.trials == 1 || !s.best.is_finite() || loss < s.best) {
                s.best = loss;
            } else if s.trials == 1 && !loss.is_finite() {
                s.best = f64::NAN;
            }
        }
        out.push_str("Rung occupancy (multi-fidelity)\n");
        out.push_str("-------------------------------\n");
        out.push_str(&format!(
            "{:<6} {:>9} {:>7} {:>9} {:>10}\n",
            "rung", "fidelity", "trials", "brackets", "best"
        ));
        for (rung, s) in &rungs {
            out.push_str(&format!(
                "{:<6} {:>9.4} {:>7} {:>9} {:>10}\n",
                rung,
                s.fidelity,
                s.trials,
                s.brackets.len(),
                fmt_loss(s.best)
            ));
        }
        let untagged = trials.len() - rung_trials.len();
        if untagged > 0 {
            out.push_str(&format!(
                "({untagged} trials outside the bracket schedule: seeds/warm starts)\n"
            ));
        }
        out.push('\n');
    }

    // ── Worker utilization timeline ─────────────────────────────────────
    out.push_str("Worker utilization\n");
    out.push_str("------------------\n");
    let mut workers: BTreeMap<i64, Vec<(f64, f64)>> = BTreeMap::new();
    let mut t_max = 0.0f64;
    for t in &trials {
        let w = get_i64(t, "worker");
        if w < 0 {
            continue;
        }
        let start = get_f64(t, "t_s");
        let dur = get_f64(t, "dur_s").max(0.0);
        if start.is_finite() {
            workers.entry(w).or_default().push((start, dur));
            t_max = t_max.max(start + dur);
        }
    }
    if workers.is_empty() || t_max <= 0.0 {
        out.push_str("(no worker-attributed trials)\n");
    } else {
        const COLS: usize = 60;
        for (w, windows) in &workers {
            let busy: f64 = windows.iter().map(|(_, d)| d).sum();
            let mut lane = vec![b'.'; COLS];
            for (start, dur) in windows {
                let a = ((start / t_max) * COLS as f64) as usize;
                let b = (((start + dur) / t_max) * COLS as f64).ceil() as usize;
                for c in lane.iter_mut().take(b.min(COLS)).skip(a.min(COLS - 1)) {
                    *c = b'#';
                }
            }
            out.push_str(&format!(
                "worker {w:>2} [{}] busy {:>5.1}%  ({} trials, {:.3}s)\n",
                String::from_utf8_lossy(&lane),
                100.0 * busy / t_max,
                windows.len(),
                busy
            ));
        }
        out.push_str(&format!("timeline spans 0..{t_max:.3}s, '#' = busy\n"));
    }
    out.push('\n');

    // ── Cache efficiency ────────────────────────────────────────────────
    out.push_str("Cache efficiency\n");
    out.push_str("----------------\n");
    let mut wrote_cache = false;
    if let Some(metrics_text) = metrics_text {
        let doc = parse_object(metrics_text)
            .ok_or_else(|| "metrics: unparseable JSON".to_string())?;
        if let Some(counters) = doc.get("counters").and_then(|v| v.as_obj()) {
            for (label, hits_key, miss_key) in [
                ("result cache", "cache.result.hits", "cache.result.misses"),
                ("fe cache", "cache.fe.hits", "cache.fe.misses"),
            ] {
                let hits = counters.get(hits_key).and_then(|v| v.as_i64()).unwrap_or(0);
                let misses = counters.get(miss_key).and_then(|v| v.as_i64()).unwrap_or(0);
                let total = hits + misses;
                if total > 0 {
                    out.push_str(&format!(
                        "{label:<13} {hits:>6} hits / {total:>6} lookups  ({:.1}% hit rate)\n",
                        100.0 * hits as f64 / total as f64
                    ));
                    wrote_cache = true;
                }
            }
            // Zero-copy dataset views: how much gather traffic the run's
            // trials avoided (full-view borrows) vs. paid (index-view
            // materializations on FE-cache misses).
            let skipped = counters
                .get("data.gathers_skipped")
                .and_then(|v| v.as_i64())
                .unwrap_or(0);
            let bytes = counters
                .get("data.bytes_gathered")
                .and_then(|v| v.as_i64())
                .unwrap_or(0);
            if skipped > 0 || bytes > 0 {
                out.push_str(&format!(
                    "zero-copy     {skipped:>6} gathers skipped, {:.2} MiB gathered\n",
                    bytes as f64 / (1024.0 * 1024.0)
                ));
                wrote_cache = true;
            }
            // Histogram-kernel bandwidth: bin-code bytes the per-node fills
            // actually read, and how often the flat arenas / feature-
            // parallel merge paths were exercised.
            let hist_bytes = counters
                .get("binned.hist_bytes_scanned")
                .and_then(|v| v.as_i64())
                .unwrap_or(0);
            let reuses = counters
                .get("binned.arena_reuses")
                .and_then(|v| v.as_i64())
                .unwrap_or(0);
            let merges = counters
                .get("binned.feature_parallel_merges")
                .and_then(|v| v.as_i64())
                .unwrap_or(0);
            if hist_bytes > 0 || reuses > 0 {
                out.push_str(&format!(
                    "hist kernel   {:.2} MiB codes scanned, {reuses} arena reuses, \
                     {merges} feature-parallel merges\n",
                    hist_bytes as f64 / (1024.0 * 1024.0)
                ));
                wrote_cache = true;
            }
        }
    }
    if !wrote_cache {
        // Fall back to the cached/fe_cached flags on trial spans.
        let cached = trials
            .iter()
            .filter(|t| get_str(t, "detail").contains("cached"))
            .count();
        if trials.is_empty() {
            out.push_str("(no data)\n");
        } else {
            out.push_str(&format!(
                "trial-level: {cached} of {} trials hit a cache ({:.1}%)\n",
                trials.len(),
                100.0 * cached as f64 / trials.len() as f64
            ));
        }
    }

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{SpanEvent, TrialInfo};

    fn trial_line(trial_id: u64, arm: &str, path: &str, worker: usize, loss: f64, cost: f64) -> String {
        let t = TrialInfo {
            trial_id,
            digest: trial_id * 7919,
            worker,
            start_s: trial_id as f64 * 0.1,
            end_s: trial_id as f64 * 0.1 + cost,
            fidelity: 1.0,
            rung: -1,
            bracket: -1,
            loss,
            cost,
            cached: false,
            fe_cached: false,
            panicked: false,
            timed_out: false,
        };
        let mut e = SpanEvent::new("trial", path);
        e.span_id = 100 + trial_id;
        e.arm = arm.to_string();
        e.t_s = t.start_s;
        e.dur_s = cost;
        e.trial_id = trial_id as i64;
        e.digest = format!("{:016x}", t.digest);
        e.loss = loss;
        e.cost = cost;
        e.worker = worker as i64;
        e.to_json()
    }

    fn sample_trace() -> String {
        let mut lines = vec![
            trial_line(0, "algorithm=0", "root/algorithm=0", 0, 0.5, 0.2),
            trial_line(1, "algorithm=1", "root/algorithm=1", 1, 0.3, 0.4),
            trial_line(2, "algorithm=0", "root/algorithm=0", 0, 0.45, 0.2),
        ];
        let mut e = SpanEvent::new("eliminate", "root");
        e.span_id = 999;
        e.arm = "algorithm=0".to_string();
        e.t_s = 1.0;
        e.eu_optimistic = 0.4;
        e.eu_pessimistic = 0.6;
        e.detail = "dominated by algorithm=1".to_string();
        lines.push(e.to_json());
        lines.join("\n")
    }

    #[test]
    fn report_sections_render_from_trace() {
        let report = render_report(&sample_trace(), None, None).unwrap();
        assert!(report.contains("Per-arm convergence"));
        assert!(report.contains("algorithm=0"));
        assert!(report.contains("eliminated"));
        assert!(report.contains("algorithm=1"));
        assert!(report.contains("Budget allocation by block path"));
        assert!(report.contains("root/algorithm=1"));
        assert!(report.contains("Worker utilization"));
        assert!(report.contains("worker  0"));
        assert!(report.contains("dominated by algorithm=1"));
    }

    #[test]
    fn rung_occupancy_renders_only_for_bracket_scheduled_trials() {
        // No rung-tagged trials → no section.
        let report = render_report(&sample_trace(), None, None).unwrap();
        assert!(!report.contains("Rung occupancy"));

        // Mixed run: two rung-0 trials from two brackets, one rung-1
        // promotion, one untagged seed.
        let mut lines = Vec::new();
        for (id, rung, bracket, fid, loss) in [
            (0i64, 0i64, 0i64, 1.0 / 9.0, 0.5),
            (1, 0, 1, 1.0 / 9.0, 0.4),
            (2, 1, 0, 1.0 / 3.0, 0.3),
            (3, -1, -1, 1.0, 0.25),
        ] {
            let mut e = SpanEvent::new("trial", "root");
            e.span_id = 100 + id as u64;
            e.trial_id = id;
            e.fidelity = fid;
            e.rung = rung;
            e.bracket = bracket;
            e.loss = loss;
            e.cost = 0.1;
            e.worker = 0;
            lines.push(e.to_json());
        }
        let report = render_report(&lines.join("\n"), None, None).unwrap();
        assert!(report.contains("Rung occupancy (multi-fidelity)"));
        // Rung 0 saw 2 trials across 2 brackets; rung 1 saw the promotion.
        let rung0 = report
            .lines()
            .find(|l| l.starts_with("0 "))
            .expect("rung 0 row");
        assert!(rung0.contains('2'), "{rung0}");
        assert!(report.contains("(1 trials outside the bracket schedule"));
    }

    #[test]
    fn cost_efficiency_section_tracks_incumbent_walk() {
        // Spans start at t_s = 0.0, 0.1, 0.2 → incumbent walk visits them
        // in id order. Best loss 0.3 lands on trial 1, so the cost sunk
        // after the last improvement is trial 2's 0.2s.
        let report = render_report(&sample_trace(), None, None).unwrap();
        assert!(report.contains("Cost efficiency"), "{report}");
        assert!(
            report.contains("best loss 0.3000 reached after 0.600s"),
            "{report}"
        );
        assert!(
            report.contains("cost after last improvement: 0.200s"),
            "{report}"
        );
        assert!(report.contains("mean trial cost"), "{report}");
        assert!(!report.contains("failed trials:"), "{report}");

        // A NaN-loss trial is counted (with its cost) as failed.
        let text = format!(
            "{}\n{}",
            sample_trace(),
            trial_line(7, "algorithm=0", "root/algorithm=0", 0, f64::NAN, 0.5)
        );
        let report = render_report(&text, None, None).unwrap();
        assert!(report.contains("failed trials: 1 costing 0.500s"), "{report}");
    }

    #[test]
    fn pareto_front_keeps_only_non_dominated_configs() {
        // trial 0: loss 0.5 cost 0.2 — dominated by trial 2 (0.45 @ 0.2).
        // trial 1: loss 0.3 cost 0.4 — on the front (best loss).
        // trial 2: loss 0.45 cost 0.2 — on the front (cheapest).
        let report = render_report(&sample_trace(), None, None).unwrap();
        assert!(report.contains("Pareto front (loss vs training cost)"), "{report}");
        assert!(
            report.contains("2 of 3 distinct configurations are non-dominated"),
            "{report}"
        );
        let front_block = report
            .split("Pareto front")
            .nth(1)
            .unwrap()
            .split("\n\n")
            .next()
            .unwrap();
        assert!(front_block.contains("0.3000"), "{front_block}");
        assert!(front_block.contains("0.4500"), "{front_block}");
        assert!(!front_block.contains("0.5000"), "{front_block}");
    }

    #[test]
    fn pareto_front_dedups_repeat_digests_and_skips_nonfinite() {
        // Two spans share a digest (a cache-hit re-evaluation): only the
        // best (loss, cost) per digest enters the front computation. A
        // NaN-loss span never does.
        let mk = |id: u64, digest: u64, loss: f64, cost: f64| {
            let mut e = SpanEvent::new("trial", "root");
            e.span_id = 100 + id;
            e.trial_id = id as i64;
            e.digest = format!("{digest:016x}");
            e.loss = loss;
            e.cost = cost;
            e.worker = 0;
            e.to_json()
        };
        let text = [
            mk(0, 0xaaaa, 0.4, 0.3),
            mk(1, 0xaaaa, 0.4, 0.1), // same config, cheaper rerun wins
            mk(2, 0xbbbb, f64::NAN, 0.2),
            mk(3, 0xcccc, 0.2, 0.5),
        ]
        .join("\n");
        let report = render_report(&text, None, None).unwrap();
        assert!(
            report.contains("2 of 2 distinct configurations are non-dominated"),
            "{report}"
        );
        assert!(report.contains("0.100"), "{report}");
        assert!(!report.contains("0.300  "), "{report}");
    }

    #[test]
    fn journal_join_check_counts_matches_and_orphans() {
        let journal = "\
{\"trial\":0,\"loss\":0.5}\n{\"trial\":1,\"loss\":0.3}\n{\"trial\":9,\"loss\":0.1}";
        let report = render_report(&sample_trace(), Some(journal), None).unwrap();
        assert!(report.contains("journal rows: 3  joined to trace: 2"));
        assert!(report.contains("UNMATCHED: [9]"));
    }

    #[test]
    fn space_growth_section_renders_timeline_and_stage_counts() {
        // Two trial rows in stage 0, then an expansion, then one more trial.
        // Expansion rows must be excluded from the join check and rendered
        // in their own section with trials-per-stage tallies.
        let journal = "\
{\"trial\":0,\"loss\":0.5}\n\
{\"trial\":1,\"loss\":0.3}\n\
{\"schema\":2,\"event\":\"expansion\",\"stage\":1,\"name\":\"transform_stage\",\
\"trigger_eui\":0.0004,\"trial\":2}\n\
{\"trial\":9,\"loss\":0.1}";
        let report = render_report(&sample_trace(), Some(journal), None).unwrap();
        assert!(report.contains("journal rows: 3  joined to trace: 2"), "{report}");
        assert!(report.contains("Space growth"), "{report}");
        assert!(report.contains("transform_stage"), "{report}");
        assert!(report.contains("(2 trials in stage 0)"), "{report}");
        assert!(report.contains("final stage 1: 1 trials"), "{report}");
    }

    #[test]
    fn fixed_space_report_has_no_growth_section() {
        let journal = "{\"trial\":0,\"loss\":0.5}";
        let report = render_report(&sample_trace(), Some(journal), None).unwrap();
        assert!(!report.contains("Space growth"), "{report}");
    }

    #[test]
    fn metrics_section_reports_hit_rates() {
        let metrics = "{\"counters\":{\"cache.result.hits\":3,\"cache.result.misses\":1},\
                       \"gauges\":{},\"histograms\":{}}";
        let report = render_report(&sample_trace(), None, Some(metrics)).unwrap();
        assert!(report.contains("result cache"));
        assert!(report.contains("75.0% hit rate"));
    }

    #[test]
    fn metrics_section_reports_zero_copy_gathers() {
        let metrics = "{\"counters\":{\"data.gathers_skipped\":42,\
                       \"data.bytes_gathered\":1048576},\
                       \"gauges\":{},\"histograms\":{}}";
        let report = render_report(&sample_trace(), None, Some(metrics)).unwrap();
        assert!(report.contains("zero-copy"), "{report}");
        assert!(report.contains("42 gathers skipped"), "{report}");
        assert!(report.contains("1.00 MiB gathered"), "{report}");
    }

    #[test]
    fn torn_trace_line_is_an_error() {
        let text = format!("{}\n{{\"span\":12,\"kin", sample_trace());
        let err = render_report(&text, None, None).unwrap_err();
        assert!(err.contains("unparseable"), "{err}");
    }

    #[test]
    fn live_report_tolerates_torn_tail_and_marks_running() {
        let text = format!("{}\n{{\"span\":12,\"kin", sample_trace());
        let report = render_live_report(&text, None, None, false).unwrap();
        assert!(report.contains("status: running (partial)"), "{report}");
        assert!(report.contains("1 in-flight line(s) skipped"), "{report}");
        assert!(report.contains("Per-arm convergence"));
        assert!(report.contains("algorithm=1"));

        let done = render_live_report(&sample_trace(), None, None, true).unwrap();
        assert!(done.contains("status: complete"), "{done}");
        assert!(!done.contains("skipped"), "{done}");
    }

    #[test]
    fn live_report_still_rejects_midfile_corruption() {
        let text = format!("{{\"span\":12,\"kin\n{}", sample_trace());
        let err = render_live_report(&text, None, None, false).err().unwrap();
        assert!(err.contains("unparseable"), "{err}");
    }

    #[test]
    fn live_report_joins_torn_journal() {
        let journal = "{\"trial\":0,\"loss\":0.5}\n{\"trial\":1,\"lo";
        let report =
            render_live_report(&sample_trace(), Some(journal), None, false).unwrap();
        assert!(report.contains("journal rows: 1  joined to trace: 1"), "{report}");
    }
}
