//! `volcanoml-obs` — the observability layer for VolcanoML runs.
//!
//! VolcanoML's speedups come from *where* the budget goes: which block of
//! the execution plan, which bandit arm, which fidelity each pull lands on.
//! This crate makes that visible without ad-hoc printlns:
//!
//! - [`Tracer`]: a hierarchical span tracer over the Volcano block tree.
//!   Every `do_next` pull, SMAC suggest, elimination decision, and trial
//!   becomes a parent-linked [`SpanEvent`] appended (one JSON line, torn-line
//!   free) to a JSONL stream alongside the trial journal. Parent links come
//!   from a thread-local span stack — blocks open a [`SpanGuard`] around a
//!   pull and everything emitted underneath (on the same thread) is linked
//!   to it. Disabled tracers still maintain the stack (so journal rows can
//!   be attributed to arms) but skip all serialization; the cost is one
//!   branch plus a small string clone per pull, far below one pipeline fit.
//! - [`MetricsRegistry`]: named counters, gauges, and fixed-bucket latency
//!   histograms sampled from the evaluator caches, the worker pool, and the
//!   binned-tree training path; snapshot-serializable to a stable JSON
//!   schema (`results/METRICS_run.json`).
//! - [`report`]: joins the trial journal and the trace stream into a
//!   human-readable run report — per-arm convergence, budget allocation by
//!   block-tree path, worker-utilization timeline, cache efficiency.
//! - [`EventBus`]: the *live* plane — a bounded ring of typed events
//!   (trials, eliminations, promotions, study lifecycle) fed by the same
//!   tracer hooks and streamed by `volcanoml-serve` with cursor resume.
//! - [`prometheus`]: text-exposition rendering of metrics snapshots for
//!   `GET /metrics` scrapes (namespaced families, `study` labels,
//!   cumulative `le` buckets).
//!
//! The crate is std-only and sits *below* `volcanoml-core` in the workspace
//! graph, next to `volcanoml-exec`: the evaluator and blocks emit, this
//! crate records and renders.

pub mod events;
pub mod json;
pub mod metrics;
pub mod prometheus;
pub mod report;
pub mod tracer;

pub use events::{BusEvent, EventBus, ObsEvent};
pub use metrics::{HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use prometheus::PrometheusText;
pub use tracer::{current_arm, current_path, span, EventFields, SpanEvent, SpanGuard, Tracer, TrialInfo};
