//! The hierarchical span tracer.
//!
//! One [`SpanEvent`] per JSONL line, append-only, stable schema (all keys
//! always present, stable order):
//!
//! ```json
//! {"span":12,"parent":9,"kind":"trial","path":"root/algorithm=1/right",
//!  "arm":"algorithm=1","t_s":0.0132,"dur_s":0.0386,"trial":17,
//!  "digest":"9f3c2a11d04b77e6","fidelity":1,"rung":2,"bracket":0,
//!  "loss":0.2184,"cost":0.0386,"eu_opt":"nan","eu_pess":"nan","worker":2,
//!  "detail":"fe_cached"}
//! ```
//!
//! Non-finite floats are string-encoded (`"inf"`, `"-inf"`, `"nan"`); `-1`
//! in `trial`/`worker`/`rung`/`bracket` means "not applicable"; an empty
//! `digest` means the event is not a trial. `rung`/`bracket` attribute a
//! trial to its multi-fidelity scheduler slot (rung index in the engine's
//! full η-ladder, stable bracket id) and mirror the journal's fields of the
//! same name. `trial` is the join key into the trial journal: every journal
//! row's `trial` id appears on exactly one `kind:"trial"` span.
//!
//! Parent links come from a thread-local span *stack*: opening a
//! [`SpanGuard`] (via [`span`]) pushes an entry, and any event emitted on
//! the same thread before the guard drops is linked to it. Span events are
//! written when the guard drops, so a parent appears *after* its children
//! in the file — consumers re-link by id, never by line order. The stack is
//! maintained even when tracing is disabled so that cheap queries like
//! [`current_arm`] keep working (the journal uses them for arm
//! attribution); a disabled tracer performs no locking and no I/O.
//!
//! Concurrency: the block tree is pulled from one coordinator thread, so
//! the stack discipline holds there; trial events for pooled batches are
//! also emitted on the coordinator (by `evaluate_batch`). The tracer itself
//! is nevertheless fully thread-safe — each event is serialized and
//! appended under one mutex as a single `writeln!`, so concurrent writers
//! can never tear or interleave lines.
//!
//! The zero-copy dataset-view refactor added in-memory gather counters
//! (`data.bytes_gathered`/`data.gathers_skipped` in the metrics snapshot)
//! but changed nothing in this span schema: trace files are byte-identical
//! before and after.

use crate::json::{escape, num};
use std::cell::RefCell;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One entry of the thread-local span stack.
#[derive(Clone)]
struct StackEntry {
    id: u64,
    path: String,
    arm: String,
}

std::thread_local! {
    static SPAN_STACK: RefCell<Vec<StackEntry>> = const { RefCell::new(Vec::new()) };
}

/// Id of the innermost open span on this thread (0 = none).
pub fn current_span() -> u64 {
    SPAN_STACK.with(|s| s.borrow().last().map_or(0, |e| e.id))
}

/// Block-tree path of the innermost open span on this thread.
pub fn current_path() -> Option<String> {
    SPAN_STACK.with(|s| s.borrow().last().map(|e| e.path.clone()))
}

/// Arm label of the innermost open span that carries one — the nearest
/// enclosing conditioning pull. Empty when no arm is in scope.
pub fn current_arm() -> String {
    SPAN_STACK.with(|s| {
        s.borrow()
            .iter()
            .rev()
            .find(|e| !e.arm.is_empty())
            .map_or(String::new(), |e| e.arm.clone())
    })
}

/// One trace event. See the module docs for the line schema.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Event id (unique per tracer).
    pub span_id: u64,
    /// Enclosing span's id (0 = top level).
    pub parent_id: u64,
    /// Event kind: `pull`, `suggest`, `trial`, `eliminate`, `bo-observe`, …
    pub kind: String,
    /// Block-tree path (plan-compile labels, e.g. `root/algorithm=1/left`).
    pub path: String,
    /// Bandit-arm label (`algorithm=3`) when one is in scope, else empty.
    pub arm: String,
    /// Event start, seconds since the tracer epoch.
    pub t_s: f64,
    /// Duration in seconds (0 for instantaneous events).
    pub dur_s: f64,
    /// Trial-journal join key; -1 when the event is not a trial.
    pub trial_id: i64,
    /// Hex assignment digest for trials, empty otherwise.
    pub digest: String,
    /// Fidelity (NaN when not applicable).
    pub fidelity: f64,
    /// Multi-fidelity rung index; -1 when not bracket-scheduled.
    pub rung: i64,
    /// Issuing bracket's stable id; -1 when not bracket-scheduled.
    pub bracket: i64,
    /// Observed loss (NaN when not applicable).
    pub loss: f64,
    /// Budget spent in seconds (NaN when not applicable).
    pub cost: f64,
    /// Optimistic EU bound at an elimination decision (NaN otherwise).
    pub eu_optimistic: f64,
    /// Pessimistic EU bound at an elimination decision (NaN otherwise).
    pub eu_pessimistic: f64,
    /// Worker that ran a trial; -1 when not applicable.
    pub worker: i64,
    /// Free-form annotation (`cached`, `side=left eui_l=…`, …).
    pub detail: String,
}

impl SpanEvent {
    /// An event with every optional field at its "not applicable" value.
    pub fn new(kind: &str, path: &str) -> SpanEvent {
        SpanEvent {
            span_id: 0,
            parent_id: 0,
            kind: kind.to_string(),
            path: path.to_string(),
            arm: String::new(),
            t_s: 0.0,
            dur_s: 0.0,
            trial_id: -1,
            digest: String::new(),
            fidelity: f64::NAN,
            rung: -1,
            bracket: -1,
            loss: f64::NAN,
            cost: f64::NAN,
            eu_optimistic: f64::NAN,
            eu_pessimistic: f64::NAN,
            worker: -1,
            detail: String::new(),
        }
    }

    /// Renders the event as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"span\":{},\"parent\":{},\"kind\":\"{}\",\"path\":\"{}\",\
             \"arm\":\"{}\",\"t_s\":{:.6},\"dur_s\":{:.6},\"trial\":{},\
             \"digest\":\"{}\",\"fidelity\":{},\"rung\":{},\"bracket\":{},\
             \"loss\":{},\"cost\":{},\
             \"eu_opt\":{},\"eu_pess\":{},\"worker\":{},\"detail\":\"{}\"}}",
            self.span_id,
            self.parent_id,
            escape(&self.kind),
            escape(&self.path),
            escape(&self.arm),
            self.t_s,
            self.dur_s,
            self.trial_id,
            escape(&self.digest),
            num(self.fidelity),
            self.rung,
            self.bracket,
            num(self.loss),
            num(self.cost),
            num(self.eu_optimistic),
            num(self.eu_pessimistic),
            self.worker,
            escape(&self.detail)
        )
    }
}

/// Optional fields for an instantaneous event (see [`Tracer::event`]).
#[derive(Debug, Clone)]
pub struct EventFields {
    /// Path override (defaults to the stack's current path).
    pub path: String,
    /// Arm label override (defaults to the stack's current arm).
    pub arm: String,
    /// Fidelity annotation.
    pub fidelity: f64,
    /// Loss annotation.
    pub loss: f64,
    /// EU bounds annotation (elimination decisions).
    pub eu: Option<(f64, f64)>,
    /// Free-form detail.
    pub detail: String,
}

impl Default for EventFields {
    fn default() -> Self {
        EventFields {
            path: String::new(),
            arm: String::new(),
            fidelity: f64::NAN,
            loss: f64::NAN,
            eu: None,
            detail: String::new(),
        }
    }
}

/// One completed trial, as reported by the evaluator. Mirrors the trial
/// journal row; `trial_id` is the join key between the two streams.
#[derive(Debug, Clone)]
pub struct TrialInfo {
    /// Journal trial id.
    pub trial_id: u64,
    /// Stable assignment digest (same value the journal records).
    pub digest: u64,
    /// Worker that executed the trial.
    pub worker: usize,
    /// Trial start, seconds since the *journal* epoch.
    pub start_s: f64,
    /// Trial end, seconds since the *journal* epoch.
    pub end_s: f64,
    /// Fidelity the trial ran at.
    pub fidelity: f64,
    /// Multi-fidelity rung index, -1 when not bracket-scheduled.
    pub rung: i64,
    /// Issuing bracket's stable id, -1 when not bracket-scheduled.
    pub bracket: i64,
    /// Observed loss.
    pub loss: f64,
    /// Evaluation cost in seconds.
    pub cost: f64,
    /// Result-cache hit.
    pub cached: bool,
    /// FE-transform-cache hit.
    pub fe_cached: bool,
    /// The trial panicked.
    pub panicked: bool,
    /// The trial timed out.
    pub timed_out: bool,
}

struct TracerState {
    events: Vec<SpanEvent>,
    file: Option<std::io::BufWriter<std::fs::File>>,
}

/// Thread-safe span tracer. Cheap to share (`Arc`), cheap when disabled.
pub struct Tracer {
    enabled: bool,
    epoch: Instant,
    next_id: AtomicU64,
    next_trial: AtomicU64,
    state: Mutex<TracerState>,
    /// Optional live event bus. Fed from the same hooks that produce span
    /// events, but independent of `enabled`: a serve-managed study streams
    /// live events even when archival tracing is off.
    bus: Option<Arc<crate::events::EventBus>>,
}

impl Tracer {
    fn with_file(enabled: bool, file: Option<std::io::BufWriter<std::fs::File>>) -> Tracer {
        Tracer {
            enabled,
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            next_trial: AtomicU64::new(0),
            state: Mutex::new(TracerState {
                events: Vec::new(),
                file,
            }),
            bus: None,
        }
    }

    /// A disabled tracer: span guards still maintain the thread-local stack
    /// (for arm attribution) but nothing is recorded.
    pub fn disabled() -> Tracer {
        Tracer::with_file(false, None)
    }

    /// An enabled in-memory tracer (tests, programmatic consumption).
    pub fn in_memory() -> Tracer {
        Tracer::with_file(true, None)
    }

    /// An enabled tracer mirrored to a JSONL file at `path` (truncates).
    pub fn to_path(path: &std::path::Path) -> std::io::Result<Tracer> {
        let file = std::fs::File::create(path)?;
        Ok(Tracer::with_file(true, Some(std::io::BufWriter::new(file))))
    }

    /// Whether events are being recorded.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Attaches a live event bus. Must be called before the tracer is
    /// shared (takes `&mut self`); trial and elimination hooks then publish
    /// typed [`crate::events::ObsEvent`]s regardless of `enabled`.
    pub fn set_bus(&mut self, bus: Arc<crate::events::EventBus>) {
        self.bus = Some(bus);
    }

    /// Whether a live event bus is attached.
    pub fn has_bus(&self) -> bool {
        self.bus.is_some()
    }

    /// The attached live event bus, if any.
    pub fn bus(&self) -> Option<&Arc<crate::events::EventBus>> {
        self.bus.as_ref()
    }

    /// Seconds elapsed since the tracer was created.
    pub fn elapsed_s(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Allocates a trial id for runs without a journal (when a journal is
    /// attached its ids are used instead, so the two streams join).
    pub fn next_trial_id(&self) -> u64 {
        self.next_trial.fetch_add(1, Ordering::Relaxed)
    }

    fn next_span_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Appends one event: a single `writeln!` under the state mutex, so
    /// concurrent emitters never tear lines.
    pub fn emit(&self, event: SpanEvent) {
        if !self.enabled {
            return;
        }
        let mut state = self.state.lock().expect("tracer poisoned");
        if let Some(file) = &mut state.file {
            let _ = writeln!(file, "{}", event.to_json());
        }
        state.events.push(event);
    }

    /// Emits an instantaneous event parented to the current span.
    pub fn event(&self, kind: &str, fields: EventFields) {
        if !self.enabled && self.bus.is_none() {
            return;
        }
        let path = if fields.path.is_empty() {
            current_path().unwrap_or_default()
        } else {
            fields.path
        };
        if kind == "eliminate" {
            if let Some(bus) = &self.bus {
                let (eu_opt, eu_pess) = fields.eu.unwrap_or((f64::NAN, f64::NAN));
                bus.publish(crate::events::ObsEvent::ArmEliminated {
                    path: path.clone(),
                    arm: if fields.arm.is_empty() {
                        current_arm()
                    } else {
                        fields.arm.clone()
                    },
                    eu_opt,
                    eu_pess,
                    detail: fields.detail.clone(),
                });
            }
        }
        if !self.enabled {
            return;
        }
        let mut e = SpanEvent::new(kind, &path);
        e.span_id = self.next_span_id();
        e.parent_id = current_span();
        e.arm = if fields.arm.is_empty() {
            current_arm()
        } else {
            fields.arm
        };
        e.t_s = self.elapsed_s();
        e.fidelity = fields.fidelity;
        e.loss = fields.loss;
        if let Some((opt, pess)) = fields.eu {
            e.eu_optimistic = opt;
            e.eu_pessimistic = pess;
        }
        e.detail = fields.detail;
        self.emit(e);
    }

    /// Emits one `kind:"trial"` span parented to the current pull span.
    /// `start_s`/`end_s` in [`TrialInfo`] are journal-epoch relative; the
    /// event's `t_s` uses the tracer epoch for ordering consistency, while
    /// `dur_s` preserves the journal-measured wall window.
    pub fn trial(&self, t: &TrialInfo) {
        if let Some(bus) = &self.bus {
            let digest = format!("{:016x}", t.digest);
            // A config running at rung >= 1 got there by surviving the
            // rung below — the promotion decision itself happens inside
            // the bracket (no tracer in scope), so it is materialized
            // here, at the promoted run.
            if t.rung >= 1 {
                bus.publish(crate::events::ObsEvent::RungPromoted {
                    bracket: t.bracket,
                    rung: t.rung,
                    digest: digest.clone(),
                });
            }
            if t.timed_out {
                bus.publish(crate::events::ObsEvent::WorkerStalled {
                    worker: t.worker as i64,
                    stalled_s: (t.end_s - t.start_s).max(0.0),
                });
            }
            bus.publish(crate::events::ObsEvent::TrialFinished {
                trial: t.trial_id,
                digest,
                fidelity: t.fidelity,
                rung: t.rung,
                bracket: t.bracket,
                loss: t.loss,
                cost: t.cost,
                worker: t.worker as i64,
                cached: t.cached,
            });
        }
        if !self.enabled {
            return;
        }
        let mut e = SpanEvent::new("trial", &current_path().unwrap_or_default());
        e.span_id = self.next_span_id();
        e.parent_id = current_span();
        e.arm = current_arm();
        e.t_s = self.elapsed_s();
        e.dur_s = (t.end_s - t.start_s).max(0.0);
        e.trial_id = t.trial_id as i64;
        e.digest = format!("{:016x}", t.digest);
        e.fidelity = t.fidelity;
        e.rung = t.rung;
        e.bracket = t.bracket;
        e.loss = t.loss;
        e.cost = t.cost;
        e.worker = t.worker as i64;
        let mut flags: Vec<&str> = Vec::new();
        if t.cached {
            flags.push("cached");
        }
        if t.fe_cached {
            flags.push("fe_cached");
        }
        if t.panicked {
            flags.push("panicked");
        }
        if t.timed_out {
            flags.push("timed_out");
        }
        e.detail = flags.join(",");
        self.emit(e);
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.state.lock().expect("tracer poisoned").events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all events, in emission order.
    pub fn events(&self) -> Vec<SpanEvent> {
        self.state.lock().expect("tracer poisoned").events.clone()
    }

    /// Flushes buffered lines to the backing file, if any.
    pub fn flush(&self) {
        let mut state = self.state.lock().expect("tracer poisoned");
        if let Some(file) = &mut state.file {
            let _ = file.flush();
        }
    }
}

impl Drop for Tracer {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Opens a span: pushes onto the thread-local stack and returns a guard
/// that emits the span event (with measured duration) when dropped.
pub fn span(tracer: &Arc<Tracer>, kind: &'static str, path: &str, arm: &str) -> SpanGuard {
    let id = if tracer.enabled() {
        tracer.next_span_id()
    } else {
        0
    };
    let parent = current_span();
    SPAN_STACK.with(|s| {
        s.borrow_mut().push(StackEntry {
            id,
            path: path.to_string(),
            arm: arm.to_string(),
        })
    });
    SpanGuard {
        tracer: Arc::clone(tracer),
        kind,
        id,
        parent,
        path: path.to_string(),
        arm: arm.to_string(),
        start_s: tracer.elapsed_s(),
        start: Instant::now(),
        fidelity: f64::NAN,
        loss: f64::NAN,
        cost: f64::NAN,
        detail: String::new(),
    }
}

/// An open span. Annotate it (`set_loss`, `set_detail`, …) before it drops;
/// dropping pops the stack and emits the event.
pub struct SpanGuard {
    tracer: Arc<Tracer>,
    kind: &'static str,
    id: u64,
    parent: u64,
    path: String,
    arm: String,
    start_s: f64,
    start: Instant,
    fidelity: f64,
    loss: f64,
    cost: f64,
    detail: String,
}

impl SpanGuard {
    /// This span's id (0 when the tracer is disabled).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Annotates the fidelity the pull ran at.
    pub fn set_fidelity(&mut self, fidelity: f64) {
        self.fidelity = fidelity;
    }

    /// Annotates the observed loss.
    pub fn set_loss(&mut self, loss: f64) {
        self.loss = loss;
    }

    /// Annotates the budget spent (seconds).
    pub fn set_cost(&mut self, cost: f64) {
        self.cost = cost;
    }

    /// Attaches a free-form detail string.
    pub fn set_detail(&mut self, detail: impl Into<String>) {
        self.detail = detail.into();
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        SPAN_STACK.with(|s| {
            s.borrow_mut().pop();
        });
        if !self.tracer.enabled() {
            return;
        }
        let mut e = SpanEvent::new(self.kind, &self.path);
        e.span_id = self.id;
        e.parent_id = self.parent;
        e.arm = std::mem::take(&mut self.arm);
        e.t_s = self.start_s;
        e.dur_s = self.start.elapsed().as_secs_f64();
        e.fidelity = self.fidelity;
        e.loss = self.loss;
        e.cost = self.cost;
        e.detail = std::mem::take(&mut self.detail);
        self.tracer.emit(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_object;

    #[test]
    fn span_nesting_links_parents() {
        let tracer = Arc::new(Tracer::in_memory());
        {
            let outer = span(&tracer, "pull", "root", "algorithm=1");
            {
                let inner = span(&tracer, "suggest", "root/algorithm=1", "");
                assert_eq!(current_span(), inner.id());
                assert_eq!(current_arm(), "algorithm=1");
            }
            assert_eq!(current_span(), outer.id());
        }
        assert_eq!(current_span(), 0);
        let events = tracer.events();
        // Children emit before parents (drop order).
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, "suggest");
        assert_eq!(events[1].kind, "pull");
        assert_eq!(events[0].parent_id, events[1].span_id);
        assert_eq!(events[1].parent_id, 0);
    }

    #[test]
    fn trial_event_inherits_context_and_joins() {
        let tracer = Arc::new(Tracer::in_memory());
        let _pull = span(&tracer, "pull", "root/algorithm=2", "algorithm=2");
        tracer.trial(&TrialInfo {
            trial_id: 7,
            digest: 0xdead_beef,
            worker: 1,
            start_s: 0.5,
            end_s: 0.75,
            fidelity: 1.0,
            rung: 2,
            bracket: 0,
            loss: 0.125,
            cost: 0.25,
            cached: false,
            fe_cached: true,
            panicked: false,
            timed_out: false,
        });
        let events = tracer.events();
        assert_eq!(events.len(), 1);
        let t = &events[0];
        assert_eq!(t.trial_id, 7);
        assert_eq!(t.arm, "algorithm=2");
        assert_eq!(t.path, "root/algorithm=2");
        assert_eq!(t.digest, format!("{:016x}", 0xdead_beefu64));
        assert_eq!(t.detail, "fe_cached");
        assert_eq!(t.rung, 2);
        assert_eq!(t.bracket, 0);
        assert!(t.parent_id != 0);
    }

    #[test]
    fn json_lines_have_stable_schema_and_parse() {
        let mut e = SpanEvent::new("eliminate", "root");
        e.span_id = 3;
        e.arm = "algorithm=4".into();
        e.eu_optimistic = 0.1;
        e.eu_pessimistic = 0.4;
        let line = e.to_json();
        for key in [
            "\"span\":3",
            "\"parent\":0",
            "\"kind\":\"eliminate\"",
            "\"path\":\"root\"",
            "\"arm\":\"algorithm=4\"",
            "\"trial\":-1",
            "\"digest\":\"\"",
            "\"fidelity\":\"nan\"",
            "\"rung\":-1",
            "\"bracket\":-1",
            "\"loss\":\"nan\"",
            "\"eu_opt\":0.1",
            "\"eu_pess\":0.4",
            "\"worker\":-1",
        ] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
        let parsed = parse_object(&line).unwrap();
        assert_eq!(parsed["kind"].as_str(), Some("eliminate"));
        assert!(parsed["loss"].as_f64().unwrap().is_nan());
    }

    #[test]
    fn disabled_tracer_records_nothing_but_stack_works() {
        let tracer = Arc::new(Tracer::disabled());
        let _g = span(&tracer, "pull", "root", "algorithm=0");
        assert_eq!(current_arm(), "algorithm=0");
        tracer.event("noop", EventFields::default());
        assert!(tracer.is_empty());
    }

    #[test]
    fn concurrent_appends_never_tear_lines() {
        // Many workers appending trace events concurrently must produce a
        // file where every line is intact, parseable JSON.
        let dir = std::env::temp_dir().join("volcanoml-obs-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("trace-{}.jsonl", std::process::id()));
        let n_threads = 8;
        let per_thread = 200;
        {
            let tracer = Arc::new(Tracer::to_path(&path).unwrap());
            let handles: Vec<_> = (0..n_threads)
                .map(|t| {
                    let tracer = Arc::clone(&tracer);
                    std::thread::spawn(move || {
                        for i in 0..per_thread {
                            let mut g = span(
                                &tracer,
                                "pull",
                                &format!("root/worker={t}"),
                                &format!("arm={t}"),
                            );
                            g.set_loss(i as f64);
                            g.set_detail(format!("iteration {i} with \"quotes\""));
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            tracer.flush();
            assert_eq!(tracer.len(), n_threads * per_thread);
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), n_threads * per_thread);
        let mut seen = std::collections::HashSet::new();
        for line in lines {
            let obj = parse_object(line).unwrap_or_else(|| panic!("torn line: {line}"));
            assert!(seen.insert(obj["span"].as_i64().unwrap()), "duplicate span id");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn disabled_tracer_with_bus_still_publishes_typed_events() {
        use crate::events::{EventBus, ObsEvent};
        let mut tracer = Tracer::disabled();
        let bus = Arc::new(EventBus::new());
        tracer.set_bus(Arc::clone(&bus));
        assert!(tracer.has_bus());
        let tracer = Arc::new(tracer);
        tracer.trial(&TrialInfo {
            trial_id: 3,
            digest: 0xfeed,
            worker: 2,
            start_s: 0.0,
            end_s: 0.5,
            fidelity: 0.25,
            rung: 1,
            bracket: 0,
            loss: 0.3,
            cost: 0.5,
            cached: false,
            fe_cached: false,
            panicked: false,
            timed_out: true,
        });
        tracer.event(
            "eliminate",
            EventFields {
                path: "root".into(),
                arm: "algorithm=2".into(),
                eu: Some((0.1, 0.4)),
                detail: "dominated".into(),
                ..EventFields::default()
            },
        );
        // Archival stream stays empty; the bus carries the typed events.
        assert!(tracer.is_empty());
        let kinds: Vec<&str> = bus
            .read_after(None)
            .iter()
            .map(|e| e.event.kind())
            .collect::<Vec<_>>();
        assert_eq!(
            kinds,
            vec!["RungPromoted", "WorkerStalled", "TrialFinished", "ArmEliminated"]
        );
        match &bus.read_after(None)[2].event {
            ObsEvent::TrialFinished { trial, loss, .. } => {
                assert_eq!(*trial, 3);
                assert!((loss - 0.3).abs() < 1e-12);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn file_tracer_flushes_on_drop() {
        let dir = std::env::temp_dir().join("volcanoml-obs-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("drop-{}.jsonl", std::process::id()));
        {
            let tracer = Arc::new(Tracer::to_path(&path).unwrap());
            let _g = span(&tracer, "pull", "root", "");
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        std::fs::remove_file(&path).ok();
    }
}
