//! Datasets, resampling, metrics, and the synthetic benchmark repository used
//! by the VolcanoML reproduction.
//!
//! The paper evaluates on 60 OpenML datasets, 6 Kaggle competitions, and one
//! vision task. Those exact datasets are not redistributable here, so
//! [`repository`] provides a deterministic synthetic suite with matched
//! *roles*: 30 medium classification datasets, 20 regression datasets, 10
//! large classification datasets, 5 imbalanced datasets, 6 "Kaggle"-style
//! tasks, and a vision-like embedding task. The generators are parameterized
//! so that different model families win on different datasets — the property
//! that rank-based comparisons (Table 1 of the paper) actually measure.

pub mod csv;
pub mod dataset;
pub mod metrics;
pub mod rand_util;
pub mod repository;
pub mod split;
pub mod synthetic;
pub mod view;

pub use dataset::{Dataset, FeatureType, Task};
pub use metrics::Metric;
pub use split::{
    subsample_view, train_test_split, train_test_split_views, KFold, StratifiedKFold,
};
pub use view::DatasetView;

/// Errors produced by dataset construction and I/O.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// Feature matrix and target vector disagree on sample count, or other
    /// structural inconsistencies.
    Inconsistent(String),
    /// CSV parsing failed.
    Parse(String),
    /// An operation needs more samples/classes than the dataset has.
    TooSmall(String),
}

impl std::fmt::Display for DataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataError::Inconsistent(s) => write!(f, "inconsistent dataset: {s}"),
            DataError::Parse(s) => write!(f, "parse error: {s}"),
            DataError::TooSmall(s) => write!(f, "dataset too small: {s}"),
        }
    }
}

impl std::error::Error for DataError {}

/// Convenience alias for data results.
pub type Result<T> = std::result::Result<T, DataError>;
