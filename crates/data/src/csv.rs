//! Minimal CSV (de)serialization for datasets.
//!
//! A deliberately small dialect: comma-separated, first row is a header, the
//! target column is named `target`, missing values are empty cells or `NA`,
//! and categorical columns are declared by a `#types:` comment line. This is
//! enough to round-trip the synthetic corpus and to let users feed their own
//! tables into the examples.

use crate::dataset::{Dataset, FeatureType, Task};
use crate::{DataError, Result};
use volcanoml_linalg::Matrix;

/// Serializes a dataset to the CSV dialect described in the module docs.
pub fn to_csv(d: &Dataset) -> String {
    let mut out = String::new();
    // Type declaration line.
    out.push_str("#types:");
    for (i, t) in d.feature_types.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match t {
            FeatureType::Numerical => out.push('n'),
            FeatureType::Categorical(card) => out.push_str(&format!("c{card}")),
        }
    }
    out.push_str(&format!(
        ",{}\n",
        match d.task {
            Task::Classification => "label",
            Task::Regression => "real",
        }
    ));
    // Header.
    for i in 0..d.n_features() {
        out.push_str(&format!("f{i},"));
    }
    out.push_str("target\n");
    // Rows.
    for (row, &target) in d.x.iter_rows().zip(d.y.iter()) {
        for v in row {
            if v.is_nan() {
                out.push_str("NA,");
            } else {
                out.push_str(&format!("{v},"));
            }
        }
        out.push_str(&format!("{target}\n"));
    }
    out
}

/// Parses the CSV dialect produced by [`to_csv`].
pub fn from_csv(name: &str, text: &str) -> Result<Dataset> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let type_line = lines
        .next()
        .ok_or_else(|| DataError::Parse("empty input".into()))?;
    let decl = type_line
        .strip_prefix("#types:")
        .ok_or_else(|| DataError::Parse("missing #types: line".into()))?;
    let mut fields: Vec<&str> = decl.split(',').collect();
    let target_kind = fields
        .pop()
        .ok_or_else(|| DataError::Parse("missing target kind".into()))?;
    let task = match target_kind.trim() {
        "label" => Task::Classification,
        "real" => Task::Regression,
        other => return Err(DataError::Parse(format!("unknown target kind {other}"))),
    };
    let mut feature_types = Vec::with_capacity(fields.len());
    for f in &fields {
        let f = f.trim();
        if f == "n" {
            feature_types.push(FeatureType::Numerical);
        } else if let Some(card) = f.strip_prefix('c') {
            let card: usize = card
                .parse()
                .map_err(|_| DataError::Parse(format!("bad categorical cardinality {f}")))?;
            feature_types.push(FeatureType::Categorical(card));
        } else {
            return Err(DataError::Parse(format!("unknown feature type {f}")));
        }
    }

    let header = lines
        .next()
        .ok_or_else(|| DataError::Parse("missing header".into()))?;
    let n_cols = header.split(',').count();
    if n_cols != feature_types.len() + 1 {
        return Err(DataError::Parse(format!(
            "header has {n_cols} columns, types declare {}",
            feature_types.len() + 1
        )));
    }

    let mut data = Vec::new();
    let mut y = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != n_cols {
            return Err(DataError::Parse(format!(
                "row {} has {} cells, expected {n_cols}",
                lineno + 3,
                cells.len()
            )));
        }
        for cell in &cells[..cells.len() - 1] {
            let cell = cell.trim();
            if cell.is_empty() || cell == "NA" {
                data.push(f64::NAN);
            } else {
                data.push(cell.parse::<f64>().map_err(|_| {
                    DataError::Parse(format!("bad numeric cell '{cell}' at row {}", lineno + 3))
                })?);
            }
        }
        let target_cell = cells[cells.len() - 1].trim();
        y.push(target_cell.parse::<f64>().map_err(|_| {
            DataError::Parse(format!("bad target '{target_cell}' at row {}", lineno + 3))
        })?);
    }
    let rows = y.len();
    let x = Matrix::from_vec(rows, feature_types.len(), data)
        .map_err(|e| DataError::Parse(e.to_string()))?;
    match task {
        Task::Classification => Dataset::classification(name, x, y, feature_types),
        Task::Regression => Dataset::regression(name, x, y, feature_types),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{inject_missing, make_categorical, make_regression, RegressionSpec};

    #[test]
    fn roundtrip_regression() {
        let d = make_regression(&RegressionSpec::default(), 1);
        let text = to_csv(&d);
        let back = from_csv(&d.name, &text).unwrap();
        assert_eq!(back.task, Task::Regression);
        assert_eq!(back.n_samples(), d.n_samples());
        for (a, b) in back.y.iter().zip(d.y.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn roundtrip_preserves_categorical_types_and_missing() {
        let d = inject_missing(&make_categorical(40, 2, 3, 2, 0.0, 0), 0.1, 1);
        let text = to_csv(&d);
        let back = from_csv("t", &text).unwrap();
        assert_eq!(back.feature_types, d.feature_types);
        assert_eq!(
            back.x.data().iter().filter(|v| v.is_nan()).count(),
            d.x.data().iter().filter(|v| v.is_nan()).count()
        );
        assert_eq!(back.n_classes, d.n_classes);
    }

    #[test]
    fn rejects_missing_type_line() {
        assert!(from_csv("t", "f0,target\n1,2\n").is_err());
    }

    #[test]
    fn rejects_ragged_rows() {
        let text = "#types:n,label\nf0,target\n1.0,0\n2.0\n";
        assert!(from_csv("t", text).is_err());
    }

    #[test]
    fn rejects_bad_cells() {
        let text = "#types:n,label\nf0,target\nabc,0\n";
        assert!(from_csv("t", text).is_err());
    }

    #[test]
    fn empty_cell_is_missing() {
        let text = "#types:n,n,real\nf0,f1,target\n1.0,,2.5\n";
        let d = from_csv("t", text).unwrap();
        assert!(d.x.get(0, 1).is_nan());
        assert_eq!(d.y, vec![2.5]);
    }
}
