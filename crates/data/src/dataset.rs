//! Core dataset types.

use crate::view::DatasetView;
use crate::{DataError, Result};
use std::sync::Arc;
use volcanoml_linalg::Matrix;

/// The learning task a dataset defines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Task {
    /// Multi-class classification; targets are class indices `0..n_classes`.
    Classification,
    /// Scalar regression.
    Regression,
}

/// Per-column feature kind, used by encoders and generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureType {
    /// Real-valued feature.
    Numerical,
    /// Integer-coded categorical feature with the given cardinality.
    Categorical(usize),
}

/// An in-memory supervised dataset.
///
/// Targets are `f64` in both tasks; for classification they hold class
/// indices (`0.0`, `1.0`, ...). Missing feature values are encoded as `NaN`
/// and handled by the imputation stage of the FE pipeline.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable dataset name (used in experiment reports).
    pub name: String,
    /// Feature matrix, one row per sample.
    pub x: Matrix,
    /// Target vector, aligned with the rows of `x`.
    pub y: Vec<f64>,
    /// Per-column feature kinds.
    pub feature_types: Vec<FeatureType>,
    /// Task type.
    pub task: Task,
    /// Number of classes (classification) — 0 for regression.
    pub n_classes: usize,
}

impl Dataset {
    /// Builds a classification dataset, inferring `n_classes` from the
    /// maximum label. Labels must be non-negative integers stored as `f64`.
    pub fn classification(
        name: impl Into<String>,
        x: Matrix,
        y: Vec<f64>,
        feature_types: Vec<FeatureType>,
    ) -> Result<Self> {
        Self::validate(&x, &y, &feature_types)?;
        let mut n_classes = 0usize;
        for &label in &y {
            if label < 0.0 || label.fract() != 0.0 || !label.is_finite() {
                return Err(DataError::Inconsistent(format!(
                    "classification label {label} is not a non-negative integer"
                )));
            }
            n_classes = n_classes.max(label as usize + 1);
        }
        Ok(Dataset {
            name: name.into(),
            x,
            y,
            feature_types,
            task: Task::Classification,
            n_classes,
        })
    }

    /// Builds a regression dataset.
    pub fn regression(
        name: impl Into<String>,
        x: Matrix,
        y: Vec<f64>,
        feature_types: Vec<FeatureType>,
    ) -> Result<Self> {
        Self::validate(&x, &y, &feature_types)?;
        Ok(Dataset {
            name: name.into(),
            x,
            y,
            feature_types,
            task: Task::Regression,
            n_classes: 0,
        })
    }

    fn validate(x: &Matrix, y: &[f64], feature_types: &[FeatureType]) -> Result<()> {
        if x.rows() != y.len() {
            return Err(DataError::Inconsistent(format!(
                "{} rows but {} targets",
                x.rows(),
                y.len()
            )));
        }
        if x.cols() != feature_types.len() {
            return Err(DataError::Inconsistent(format!(
                "{} columns but {} feature types",
                x.cols(),
                feature_types.len()
            )));
        }
        Ok(())
    }

    /// Number of samples.
    #[inline]
    pub fn n_samples(&self) -> usize {
        self.x.rows()
    }

    /// Number of features.
    #[inline]
    pub fn n_features(&self) -> usize {
        self.x.cols()
    }

    /// View-returning variant of [`Dataset::subset`]: the rows are selected
    /// by index over the shared storage, no feature bytes are copied.
    pub fn subset_view(self: &Arc<Self>, indices: &[usize]) -> DatasetView {
        DatasetView::full(Arc::clone(self)).select(indices)
    }

    /// Wraps the dataset into a full zero-copy [`DatasetView`].
    pub fn into_view(self) -> DatasetView {
        DatasetView::of(self)
    }

    /// Returns the subset of samples at `indices` as a new dataset.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            name: self.name.clone(),
            x: self.x.select_rows(indices),
            y: indices.iter().map(|&i| self.y[i]).collect(),
            feature_types: self.feature_types.clone(),
            task: self.task,
            n_classes: self.n_classes,
        }
    }

    /// Replaces the feature matrix (e.g. after a transform), keeping targets.
    ///
    /// All columns of the new matrix are treated as numerical, which is what
    /// every transformer in the FE pipeline produces.
    pub fn with_features(&self, x: Matrix) -> Result<Dataset> {
        if x.rows() != self.y.len() {
            return Err(DataError::Inconsistent(format!(
                "replacement has {} rows, expected {}",
                x.rows(),
                self.y.len()
            )));
        }
        let feature_types = vec![FeatureType::Numerical; x.cols()];
        Ok(Dataset {
            name: self.name.clone(),
            x,
            y: self.y.clone(),
            feature_types,
            task: self.task,
            n_classes: self.n_classes,
        })
    }

    /// Per-class sample counts. Empty for regression.
    pub fn class_counts(&self) -> Vec<usize> {
        if self.task != Task::Classification {
            return Vec::new();
        }
        let mut counts = vec![0usize; self.n_classes];
        for &label in &self.y {
            counts[label as usize] += 1;
        }
        counts
    }

    /// Ratio of the largest to the smallest class count (∞-free: returns
    /// `f64::INFINITY` only if a class is empty). 1.0 means balanced.
    pub fn imbalance_ratio(&self) -> f64 {
        let counts = self.class_counts();
        if counts.is_empty() {
            return 1.0;
        }
        let max = *counts.iter().max().unwrap_or(&0) as f64;
        let min = *counts.iter().min().unwrap_or(&0) as f64;
        if min == 0.0 {
            f64::INFINITY
        } else {
            max / min
        }
    }

    /// True if any feature value is `NaN` (missing).
    pub fn has_missing(&self) -> bool {
        self.x.data().iter().any(|v| v.is_nan())
    }

    /// Indices of categorical columns.
    pub fn categorical_columns(&self) -> Vec<usize> {
        self.feature_types
            .iter()
            .enumerate()
            .filter_map(|(i, t)| match t {
                FeatureType::Categorical(_) => Some(i),
                FeatureType::Numerical => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_x() -> Matrix {
        Matrix::from_vec(4, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]).unwrap()
    }

    #[test]
    fn classification_infers_classes() {
        let d = Dataset::classification(
            "t",
            small_x(),
            vec![0.0, 1.0, 2.0, 1.0],
            vec![FeatureType::Numerical; 2],
        )
        .unwrap();
        assert_eq!(d.n_classes, 3);
        assert_eq!(d.class_counts(), vec![1, 2, 1]);
    }

    #[test]
    fn rejects_mismatched_targets() {
        let r = Dataset::classification(
            "t",
            small_x(),
            vec![0.0, 1.0],
            vec![FeatureType::Numerical; 2],
        );
        assert!(r.is_err());
    }

    #[test]
    fn rejects_fractional_labels() {
        let r = Dataset::classification(
            "t",
            small_x(),
            vec![0.0, 1.5, 0.0, 1.0],
            vec![FeatureType::Numerical; 2],
        );
        assert!(r.is_err());
    }

    #[test]
    fn rejects_wrong_feature_type_count() {
        let r = Dataset::regression("t", small_x(), vec![0.0; 4], vec![FeatureType::Numerical]);
        assert!(r.is_err());
    }

    #[test]
    fn subset_selects_rows() {
        let d = Dataset::classification(
            "t",
            small_x(),
            vec![0.0, 1.0, 0.0, 1.0],
            vec![FeatureType::Numerical; 2],
        )
        .unwrap();
        let s = d.subset(&[3, 0]);
        assert_eq!(s.n_samples(), 2);
        assert_eq!(s.y, vec![1.0, 0.0]);
        assert_eq!(s.x.row(0), &[7.0, 8.0]);
        assert_eq!(s.n_classes, 2);
    }

    #[test]
    fn imbalance_ratio_reports_skew() {
        let d = Dataset::classification(
            "t",
            small_x(),
            vec![0.0, 0.0, 0.0, 1.0],
            vec![FeatureType::Numerical; 2],
        )
        .unwrap();
        assert_eq!(d.imbalance_ratio(), 3.0);
    }

    #[test]
    fn missing_detection() {
        let mut x = small_x();
        x.set(1, 1, f64::NAN);
        let d = Dataset::regression("t", x, vec![0.0; 4], vec![FeatureType::Numerical; 2])
            .unwrap();
        assert!(d.has_missing());
    }

    #[test]
    fn categorical_columns_listed() {
        let d = Dataset::regression(
            "t",
            small_x(),
            vec![0.0; 4],
            vec![FeatureType::Categorical(3), FeatureType::Numerical],
        )
        .unwrap();
        assert_eq!(d.categorical_columns(), vec![0]);
    }

    #[test]
    fn with_features_swaps_matrix() {
        let d = Dataset::regression("t", small_x(), vec![0.0; 4], vec![FeatureType::Numerical; 2])
            .unwrap();
        let nx = Matrix::zeros(4, 5);
        let d2 = d.with_features(nx).unwrap();
        assert_eq!(d2.n_features(), 5);
        assert_eq!(d2.feature_types.len(), 5);
        assert!(d.with_features(Matrix::zeros(3, 2)).is_err());
    }
}
