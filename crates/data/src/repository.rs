//! The benchmark repository: a deterministic synthetic stand-in for the
//! paper's evaluation corpus (§5.1).
//!
//! | Paper corpus | Here |
//! |---|---|
//! | 30 medium OpenML classification datasets (1k–12k rows) | [`medium_classification_suite`] — 30 generators spanning linear, clustered, manifold, interaction, sparse, categorical and noisy-label regimes |
//! | 20 OpenML regression datasets | [`regression_suite`] — 20 generators: linear, sparse-linear, saturating, Friedman 1/2, piecewise |
//! | 10 large classification datasets (20k–110k rows) | [`large_classification_suite`] — 10 larger instances of the same regimes |
//! | 5 imbalanced datasets (Table 2: pc2, ...) | [`imbalanced_suite`] |
//! | 6 Kaggle competitions (Figure 6) | [`kaggle_suite`] — named after the paper's competition figures |
//! | dogs-vs-cats (embedding study) | [`vision_dataset`] |
//!
//! Sample counts are scaled down (~10×) from the paper so a full experiment
//! grid finishes in CI time; the scaling note is recorded in DESIGN.md.

use crate::dataset::Dataset;
use crate::synthetic::{
    inject_missing, make_blobs, make_categorical, make_circles, make_classification,
    make_embedded_images, make_friedman1, make_friedman2, make_moons, make_piecewise,
    make_regression, make_xor, shuffle, ClassificationSpec, RegressionSpec,
};

/// Base seed mixed into every repository dataset, so the whole corpus can be
/// re-rolled by changing one constant.
pub const REPOSITORY_SEED: u64 = 0x5eed_2021;

fn seed(tag: u64) -> u64 {
    crate::rand_util::derive_seed(REPOSITORY_SEED, tag)
}

fn named(mut d: Dataset, name: &str) -> Dataset {
    d.name = name.to_string();
    d
}

/// 30 medium classification datasets with heterogeneous structure.
pub fn medium_classification_suite() -> Vec<Dataset> {
    let mut out = Vec::with_capacity(30);
    // 10 Gaussian-cluster tasks with varying dimensionality / separation /
    // class count / label noise — the "linear-friendly to messy" axis.
    for i in 0..10u64 {
        let spec = ClassificationSpec {
            n_samples: 400 + 40 * i as usize,
            n_features: 8 + 3 * i as usize,
            n_informative: 3 + (i as usize % 5),
            n_redundant: i as usize % 4,
            n_classes: 2 + (i as usize % 3),
            class_sep: 0.6 + 0.15 * (i % 5) as f64,
            flip_y: 0.02 * (i % 4) as f64,
            weights: Vec::new(),
        };
        out.push(named(
            shuffle(&make_classification(&spec, seed(i)), seed(100 + i)),
            &format!("med_gauss_{i:02}"),
        ));
    }
    // 5 manifold tasks (moons/circles) — nonlinear boundary, kNN/SVM-friendly.
    for i in 0..3u64 {
        out.push(named(
            shuffle(
                &make_moons(420 + 60 * i as usize, 0.15 + 0.05 * i as f64, 2 + i as usize, seed(20 + i)),
                seed(120 + i),
            ),
            &format!("med_moons_{i:02}"),
        ));
    }
    for i in 0..2u64 {
        out.push(named(
            shuffle(
                &make_circles(440 + 80 * i as usize, 0.08 + 0.04 * i as f64, 0.55, seed(30 + i)),
                seed(130 + i),
            ),
            &format!("med_circles_{i:02}"),
        ));
    }
    // 5 interaction (XOR/checkerboard) tasks — tree-friendly.
    for i in 0..5u64 {
        out.push(named(
            shuffle(
                &make_xor(
                    450 + 50 * i as usize,
                    2 + (i as usize % 2),
                    6 + 2 * i as usize,
                    0.03 + 0.02 * i as f64,
                    seed(40 + i),
                ),
                seed(140 + i),
            ),
            &format!("med_xor_{i:02}"),
        ));
    }
    // 3 blob tasks — easy, distance-friendly.
    for i in 0..3u64 {
        out.push(named(
            shuffle(
                &make_blobs(400 + 100 * i as usize, 3 + i as usize, 5 + i as usize, 0.8 + 0.4 * i as f64, seed(50 + i)),
                seed(150 + i),
            ),
            &format!("med_blobs_{i:02}"),
        ));
    }
    // 3 categorical-interaction tasks.
    for i in 0..3u64 {
        out.push(named(
            shuffle(
                &make_categorical(420 + 60 * i as usize, 3 + i as usize, 3 + i as usize, 3, 0.05, seed(60 + i)),
                seed(160 + i),
            ),
            &format!("med_cat_{i:02}"),
        ));
    }
    // 2 sparse high-dimensional tasks — feature selection matters.
    for i in 0..2u64 {
        let spec = ClassificationSpec {
            n_samples: 350,
            n_features: 60 + 30 * i as usize,
            n_informative: 5,
            n_redundant: 0,
            n_classes: 2,
            class_sep: 1.2,
            flip_y: 0.02,
            weights: Vec::new(),
        };
        out.push(named(
            shuffle(&make_classification(&spec, seed(70 + i)), seed(170 + i)),
            &format!("med_sparse_{i:02}"),
        ));
    }
    // 2 tasks with missing values — exercise imputation.
    for i in 0..2u64 {
        let spec = ClassificationSpec {
            n_samples: 400,
            n_features: 12,
            n_informative: 6,
            n_redundant: 2,
            n_classes: 2,
            class_sep: 1.0,
            flip_y: 0.02,
            weights: Vec::new(),
        };
        let base = make_classification(&spec, seed(80 + i));
        out.push(named(
            shuffle(&inject_missing(&base, 0.08, seed(81 + i)), seed(180 + i)),
            &format!("med_missing_{i:02}"),
        ));
    }
    debug_assert_eq!(out.len(), 30);
    out
}

/// 20 regression datasets spanning linear, sparse, saturating, Friedman and
/// piecewise regimes.
pub fn regression_suite() -> Vec<Dataset> {
    let mut out = Vec::with_capacity(20);
    for i in 0..6u64 {
        let spec = RegressionSpec {
            n_samples: 350 + 50 * i as usize,
            n_features: 8 + 4 * i as usize,
            n_informative: 4 + i as usize,
            noise: 0.3 + 0.2 * (i % 3) as f64,
            nonlinear: false,
        };
        out.push(named(
            make_regression(&spec, seed(200 + i)),
            &format!("reg_linear_{i:02}"),
        ));
    }
    for i in 0..4u64 {
        let spec = RegressionSpec {
            n_samples: 400,
            n_features: 40 + 20 * i as usize,
            n_informative: 5,
            noise: 0.5,
            nonlinear: false,
        };
        out.push(named(
            make_regression(&spec, seed(210 + i)),
            &format!("reg_sparse_{i:02}"),
        ));
    }
    for i in 0..3u64 {
        let spec = RegressionSpec {
            n_samples: 380 + 40 * i as usize,
            n_features: 10,
            n_informative: 6,
            noise: 0.3,
            nonlinear: true,
        };
        out.push(named(
            make_regression(&spec, seed(220 + i)),
            &format!("reg_saturating_{i:02}"),
        ));
    }
    for i in 0..3u64 {
        out.push(named(
            make_friedman1(380 + 60 * i as usize, 3 + 2 * i as usize, 0.5 + 0.5 * i as f64, seed(230 + i)),
            &format!("reg_friedman1_{i:02}"),
        ));
    }
    out.push(named(make_friedman2(420, 10.0, seed(240)), "reg_friedman2_00"));
    for i in 0..3u64 {
        out.push(named(
            make_piecewise(400 + 50 * i as usize, 4 + i as usize, 3 + i as usize, 0.2, seed(250 + i)),
            &format!("reg_piecewise_{i:02}"),
        ));
    }
    debug_assert_eq!(out.len(), 20);
    out
}

/// 10 larger classification datasets (the paper's 20k–110k row tier, scaled
/// down ~10×). The first four take the roles of the Figure 5 datasets.
pub fn large_classification_suite() -> Vec<Dataset> {
    let mut out = Vec::with_capacity(10);
    let names = [
        "lrg_higgs_like",    // noisy physics-style: many weak features
        "lrg_covtype_like",  // multi-class, interactions
        "lrg_click_like",    // imbalanced, sparse signal
        "lrg_vehicle_like",  // clustered
        "lrg_gauss_00",
        "lrg_gauss_01",
        "lrg_xor_00",
        "lrg_moons_00",
        "lrg_cat_00",
        "lrg_sparse_00",
    ];
    let specs: Vec<Dataset> = vec![
        make_classification(
            &ClassificationSpec {
                n_samples: 3000,
                n_features: 24,
                n_informative: 10,
                n_redundant: 4,
                n_classes: 2,
                class_sep: 0.5,
                flip_y: 0.08,
                weights: Vec::new(),
            },
            seed(300),
        ),
        make_classification(
            &ClassificationSpec {
                n_samples: 2800,
                n_features: 18,
                n_informative: 8,
                n_redundant: 2,
                n_classes: 5,
                class_sep: 0.9,
                flip_y: 0.02,
                weights: Vec::new(),
            },
            seed(301),
        ),
        make_classification(
            &ClassificationSpec {
                n_samples: 2600,
                n_features: 30,
                n_informative: 6,
                n_redundant: 0,
                n_classes: 2,
                class_sep: 0.8,
                flip_y: 0.03,
                weights: vec![0.85, 0.15],
            },
            seed(302),
        ),
        make_blobs(2400, 4, 12, 1.4, seed(303)),
        make_classification(
            &ClassificationSpec {
                n_samples: 2500,
                n_features: 20,
                n_informative: 9,
                n_redundant: 3,
                n_classes: 3,
                class_sep: 0.8,
                flip_y: 0.04,
                weights: Vec::new(),
            },
            seed(304),
        ),
        make_classification(
            &ClassificationSpec {
                n_samples: 2200,
                n_features: 14,
                n_informative: 7,
                n_redundant: 2,
                n_classes: 2,
                class_sep: 1.1,
                flip_y: 0.05,
                weights: Vec::new(),
            },
            seed(305),
        ),
        make_xor(2400, 3, 10, 0.05, seed(306)),
        make_moons(2200, 0.18, 4, seed(307)),
        make_categorical(2300, 4, 4, 4, 0.06, seed(308)),
        make_classification(
            &ClassificationSpec {
                n_samples: 2000,
                n_features: 80,
                n_informative: 6,
                n_redundant: 0,
                n_classes: 2,
                class_sep: 1.0,
                flip_y: 0.02,
                weights: Vec::new(),
            },
            seed(309),
        ),
    ];
    for (i, (d, name)) in specs.into_iter().zip(names.iter()).enumerate() {
        out.push(named(shuffle(&d, seed(350 + i as u64)), name));
    }
    out
}

/// 5 imbalanced binary datasets for the SMOTE-enrichment study (Table 2).
/// Named after the paper's datasets where applicable (pc2 is cited there).
pub fn imbalanced_suite() -> Vec<Dataset> {
    let names = ["imb_pc2_like", "imb_sick_like", "imb_ozone_like", "imb_mam_like", "imb_abalone_like"];
    let minority = [0.05, 0.08, 0.07, 0.12, 0.10];
    let mut out = Vec::with_capacity(5);
    for i in 0..5u64 {
        let spec = ClassificationSpec {
            n_samples: 600,
            n_features: 12 + 2 * i as usize,
            n_informative: 5,
            n_redundant: 2,
            n_classes: 2,
            class_sep: 1.0,
            flip_y: 0.01,
            weights: vec![1.0 - minority[i as usize], minority[i as usize]],
        };
        out.push(named(
            shuffle(&make_classification(&spec, seed(400 + i)), seed(450 + i)),
            names[i as usize],
        ));
    }
    out
}

/// 6 "Kaggle-competition" datasets (Figure 6), named after the paper's six
/// sub-figures.
pub fn kaggle_suite() -> Vec<Dataset> {
    let out = vec![named(
        shuffle(
            &make_classification(
                &ClassificationSpec {
                    n_samples: 900,
                    n_features: 22,
                    n_informative: 8,
                    n_redundant: 4,
                    n_classes: 2,
                    class_sep: 0.7,
                    flip_y: 0.05,
                    weights: Vec::new(),
                },
                seed(500),
            ),
            seed(550),
        ),
        "influence_network",
    ),
    named(
        shuffle(&make_xor(850, 2, 12, 0.08, seed(501)), seed(551)),
        "virus_prediction",
    ),
    named(
        shuffle(&make_categorical(950, 5, 4, 4, 0.08, seed(502)), seed(552)),
        "employee_access",
    ),
    named(
        shuffle(
            &make_classification(
                &ClassificationSpec {
                    n_samples: 1000,
                    n_features: 35,
                    n_informative: 7,
                    n_redundant: 0,
                    n_classes: 2,
                    class_sep: 0.8,
                    flip_y: 0.04,
                    weights: vec![0.8, 0.2],
                },
                seed(503),
            ),
            seed(553),
        ),
        "customer_satisfaction",
    ),
    named(
        shuffle(&make_moons(900, 0.22, 6, seed(504)), seed(554)),
        "business_value",
    ),
    named(
        shuffle(
            &make_classification(
                &ClassificationSpec {
                    n_samples: 800,
                    n_features: 16,
                    n_informative: 9,
                    n_redundant: 2,
                    n_classes: 4,
                    class_sep: 0.9,
                    flip_y: 0.03,
                    weights: Vec::new(),
                },
                seed(505),
            ),
            seed(555),
        ),
        "flavours",
    )];
    out
}

/// The vision-like dataset for the embedding-selection study (the paper's
/// dogs-vs-cats). Raw "pixels" carry the class signal only through a fixed
/// nonlinear rendering; see `volcanoml-fe::embedding` for the paired
/// extractors.
pub fn vision_dataset() -> Dataset {
    named(
        shuffle(&make_embedded_images(600, 8, 128, 2, 0.08, seed(600)), seed(650)),
        "dogs_vs_cats_like",
    )
}

/// Seed used by [`vision_dataset`]; the matching pre-trained extractor must
/// be constructed from this value.
pub fn vision_dataset_seed() -> u64 {
    seed(600)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Task;
    use std::collections::HashSet;

    #[test]
    fn medium_suite_has_30_unique_names() {
        let suite = medium_classification_suite();
        assert_eq!(suite.len(), 30);
        let names: HashSet<_> = suite.iter().map(|d| d.name.clone()).collect();
        assert_eq!(names.len(), 30);
        for d in &suite {
            assert_eq!(d.task, Task::Classification);
            assert!(d.n_samples() >= 300);
            assert!(d.n_classes >= 2);
        }
    }

    #[test]
    fn regression_suite_has_20() {
        let suite = regression_suite();
        assert_eq!(suite.len(), 20);
        for d in &suite {
            assert_eq!(d.task, Task::Regression);
        }
    }

    #[test]
    fn large_suite_is_larger() {
        let suite = large_classification_suite();
        assert_eq!(suite.len(), 10);
        for d in &suite {
            assert!(d.n_samples() >= 2000, "{} has {}", d.name, d.n_samples());
        }
    }

    #[test]
    fn imbalanced_suite_is_imbalanced() {
        for d in imbalanced_suite() {
            assert!(d.imbalance_ratio() > 3.0, "{} ratio {}", d.name, d.imbalance_ratio());
        }
    }

    #[test]
    fn kaggle_suite_names_match_paper_figures() {
        let names: Vec<String> = kaggle_suite().iter().map(|d| d.name.clone()).collect();
        assert_eq!(
            names,
            vec![
                "influence_network",
                "virus_prediction",
                "employee_access",
                "customer_satisfaction",
                "business_value",
                "flavours"
            ]
        );
    }

    #[test]
    fn repository_is_deterministic() {
        let a = medium_classification_suite();
        let b = medium_classification_suite();
        for (x, y) in a.iter().zip(b.iter()) {
            // Bit-level comparison: some datasets contain NaN (missing values).
            let xa: Vec<u64> = x.x.data().iter().map(|v| v.to_bits()).collect();
            let xb: Vec<u64> = y.x.data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(xa, xb);
            assert_eq!(x.y, y.y);
        }
    }

    #[test]
    fn vision_dataset_shape() {
        let d = vision_dataset();
        assert_eq!(d.n_features(), 128);
        assert_eq!(d.n_classes, 2);
    }
}
