//! Zero-copy dataset views.
//!
//! A [`DatasetView`] is `Arc`-shared immutable storage plus an optional
//! row-index view. It is the unit of data passed along the whole trial
//! pipeline: fidelity subsampling, train/validation splits, and CV folds
//! all become index arithmetic over one shared [`Dataset`], and actual row
//! copies ("gathers") happen exactly once per pipeline fit — after the
//! evaluator's FE-cache lookup misses. A *full* view (no index array) hands
//! out borrowed references to the backing matrix, so full-fidelity trials
//! copy zero bytes.
//!
//! View-of-view composition flattens: `view.select(a).select(b)` holds a
//! single index array into the original storage, never a chain of
//! indirections, so gather cost is independent of how the view was built.
//!
//! Gather traffic is tracked in process-global counters ([`stats`]) so the
//! metrics registry can report `data.bytes_gathered` / `data.gathers_skipped`
//! per run. Only feature-matrix row gathers count toward `bytes_gathered`;
//! target-vector copies are excluded (they are two orders of magnitude
//! smaller and would drown the signal the counter exists to expose).

use crate::dataset::{Dataset, FeatureType, Task};
use std::borrow::Cow;
use std::cell::RefCell;
use std::sync::Arc;
use volcanoml_linalg::{Matrix, MatrixF32};

/// Process-global gather accounting, sampled (diffed against a run
/// baseline) into the metrics registry as `data.bytes_gathered` and
/// `data.gathers_skipped`.
pub mod stats {
    use std::sync::atomic::{AtomicU64, Ordering};

    static BYTES_GATHERED: AtomicU64 = AtomicU64::new(0);
    static GATHERS_SKIPPED: AtomicU64 = AtomicU64::new(0);

    pub(super) fn add_bytes(n: u64) {
        BYTES_GATHERED.fetch_add(n, Ordering::Relaxed);
    }

    pub(super) fn add_skip() {
        GATHERS_SKIPPED.fetch_add(1, Ordering::Relaxed);
    }

    /// `(bytes_gathered, gathers_skipped)` since process start. Diff two
    /// snapshots to account a single run or test.
    pub fn snapshot() -> (u64, u64) {
        (
            BYTES_GATHERED.load(Ordering::Relaxed),
            GATHERS_SKIPPED.load(Ordering::Relaxed),
        )
    }
}

/// Bound on the per-thread gather buffer pool.
const POOL_MAX: usize = 8;

thread_local! {
    static BUF_POOL: RefCell<Vec<Vec<f64>>> = const { RefCell::new(Vec::new()) };
}

fn take_buf(capacity: usize) -> Vec<f64> {
    let buf = BUF_POOL.with(|p| p.borrow_mut().pop());
    match buf {
        Some(mut v) => {
            v.clear();
            v.reserve(capacity);
            v
        }
        None => Vec::with_capacity(capacity),
    }
}

/// Returns a gathered matrix's buffer to the thread-local pool so the next
/// gather on this thread reuses the allocation. Call it on matrices produced
/// by [`DatasetView::features`]/[`DatasetView::features_targets`] once they
/// are no longer needed (e.g. after an FE pipeline consumed them).
pub fn recycle(m: Matrix) {
    let v = m.into_data();
    BUF_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < POOL_MAX {
            pool.push(v);
        }
    });
}

/// An immutable, cheaply clonable view of a [`Dataset`]: shared storage
/// plus an optional row selection. See the module docs for semantics.
#[derive(Debug, Clone)]
pub struct DatasetView {
    storage: Arc<Dataset>,
    /// `None` = the full dataset in storage order (zero-copy access);
    /// `Some` = the listed storage rows, in the listed order.
    rows: Option<Arc<[usize]>>,
}

impl DatasetView {
    /// A view of the whole dataset. Accessing its features borrows the
    /// backing matrix without copying.
    pub fn full(storage: Arc<Dataset>) -> DatasetView {
        DatasetView {
            storage,
            rows: None,
        }
    }

    /// Wraps an owned dataset into a full view.
    pub fn of(dataset: Dataset) -> DatasetView {
        DatasetView::full(Arc::new(dataset))
    }

    /// A zero-row view over the given storage — a placeholder that performs
    /// no gathers and holds no row data.
    pub fn empty(storage: Arc<Dataset>) -> DatasetView {
        DatasetView {
            storage,
            rows: Some(Arc::from(Vec::new())),
        }
    }

    /// Returns the view of `positions` *within this view* (view-of-view
    /// composition). The result always holds a single flattened index array
    /// into the original storage.
    pub fn select(&self, positions: &[usize]) -> DatasetView {
        let rows: Vec<usize> = match &self.rows {
            None => positions.to_vec(),
            Some(base) => positions.iter().map(|&p| base[p]).collect(),
        };
        DatasetView {
            storage: Arc::clone(&self.storage),
            rows: Some(rows.into()),
        }
    }

    /// The shared backing dataset.
    pub fn storage(&self) -> &Arc<Dataset> {
        &self.storage
    }

    /// True when the view covers the whole dataset in storage order (the
    /// zero-copy fast path).
    pub fn is_full(&self) -> bool {
        self.rows.is_none()
    }

    /// The storage row indices of an index view; `None` for a full view.
    pub fn row_indices(&self) -> Option<&[usize]> {
        self.rows.as_deref()
    }

    /// Number of rows visible through the view.
    pub fn n_samples(&self) -> usize {
        self.rows
            .as_ref()
            .map_or(self.storage.n_samples(), |r| r.len())
    }

    /// Number of features (view-invariant).
    pub fn n_features(&self) -> usize {
        self.storage.n_features()
    }

    /// Task of the backing dataset.
    pub fn task(&self) -> Task {
        self.storage.task
    }

    /// Number of classes of the backing dataset (0 for regression).
    pub fn n_classes(&self) -> usize {
        self.storage.n_classes
    }

    /// Per-column feature kinds (view-invariant).
    pub fn feature_types(&self) -> &[FeatureType] {
        &self.storage.feature_types
    }

    /// Target of the `i`-th visible row.
    #[inline]
    pub fn label(&self, i: usize) -> f64 {
        match &self.rows {
            None => self.storage.y[i],
            Some(r) => self.storage.y[r[i]],
        }
    }

    /// The target vector through the view — borrowed for full views, copied
    /// for index views. Target copies are *not* counted in [`stats`].
    pub fn targets(&self) -> Cow<'_, [f64]> {
        match &self.rows {
            None => Cow::Borrowed(&self.storage.y),
            Some(r) => Cow::Owned(r.iter().map(|&i| self.storage.y[i]).collect()),
        }
    }

    /// Per-class sample counts through the view. Empty for regression.
    pub fn class_counts(&self) -> Vec<usize> {
        if self.task() != Task::Classification {
            return Vec::new();
        }
        let mut counts = vec![0usize; self.n_classes()];
        match &self.rows {
            None => {
                for &label in &self.storage.y {
                    counts[label as usize] += 1;
                }
            }
            Some(r) => {
                for &i in r.iter() {
                    counts[self.storage.y[i] as usize] += 1;
                }
            }
        }
        counts
    }

    fn gather_x(&self, rows: &[usize]) -> Matrix {
        let cols = self.storage.x.cols();
        let mut data = take_buf(rows.len() * cols);
        for &i in rows {
            data.extend_from_slice(self.storage.x.row(i));
        }
        stats::add_bytes((rows.len() * cols * std::mem::size_of::<f64>()) as u64);
        Matrix::from_vec(rows.len(), cols, data).expect("gather buffer has exact size")
    }

    /// The feature matrix through the view. A full view borrows the backing
    /// matrix (counted as a skipped gather); an index view copies the
    /// selected rows through the pooled gather buffer (counted in
    /// `bytes_gathered`).
    pub fn features(&self) -> Cow<'_, Matrix> {
        match &self.rows {
            None => {
                stats::add_skip();
                Cow::Borrowed(&self.storage.x)
            }
            Some(r) => Cow::Owned(self.gather_x(r)),
        }
    }

    /// Features and targets in one call, with the same borrow/gather
    /// semantics as [`DatasetView::features`] and [`DatasetView::targets`].
    pub fn features_targets(&self) -> (Cow<'_, Matrix>, Cow<'_, [f64]>) {
        (self.features(), self.targets())
    }

    /// The feature matrix narrowed to `f32` storage. Always materializes a
    /// fresh single-precision copy — half the resident bytes of the `f64`
    /// matrix — for memory-bound consumers such as histogram binning.
    /// Narrowed bytes are counted as gathered.
    pub fn features_f32(&self) -> MatrixF32 {
        let cols = self.storage.x.cols();
        let m = match &self.rows {
            None => MatrixF32::from_matrix(&self.storage.x),
            Some(r) => {
                let mut data = Vec::with_capacity(r.len() * cols);
                for &i in r.iter() {
                    data.extend(self.storage.x.row(i).iter().map(|&v| v as f32));
                }
                MatrixF32::from_vec(r.len(), cols, data).expect("gather buffer has exact size")
            }
        };
        stats::add_bytes((m.rows() * cols * std::mem::size_of::<f32>()) as u64);
        m
    }

    /// Materializes the view into an owned [`Dataset`]. Always copies (and
    /// counts the feature bytes as gathered) — use the `Cow` accessors on
    /// the trial path instead.
    pub fn materialize(&self) -> Dataset {
        match &self.rows {
            None => {
                stats::add_bytes(
                    (self.storage.x.rows() * self.storage.x.cols() * std::mem::size_of::<f64>())
                        as u64,
                );
                (*self.storage).clone()
            }
            Some(r) => Dataset {
                name: self.storage.name.clone(),
                x: self.gather_x(r),
                y: r.iter().map(|&i| self.storage.y[i]).collect(),
                feature_types: self.storage.feature_types.clone(),
                task: self.storage.task,
                n_classes: self.storage.n_classes,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::FeatureType;

    fn dataset(n: usize) -> Dataset {
        let x = Matrix::from_vec(n, 2, (0..2 * n).map(|v| v as f64).collect()).unwrap();
        let y: Vec<f64> = (0..n).map(|i| (i % 3) as f64).collect();
        Dataset::classification("t", x, y, vec![FeatureType::Numerical; 2]).unwrap()
    }

    #[test]
    fn full_view_borrows_without_copy() {
        let v = DatasetView::of(dataset(10));
        assert!(v.is_full());
        assert_eq!(v.n_samples(), 10);
        let (x, y) = v.features_targets();
        assert!(matches!(x, Cow::Borrowed(_)));
        assert!(matches!(y, Cow::Borrowed(_)));
        assert_eq!(x.rows(), 10);
        assert_eq!(y.len(), 10);
    }

    #[test]
    fn index_view_gathers_selected_rows() {
        let d = dataset(6);
        let expected = d.subset(&[5, 1, 3]);
        let v = DatasetView::of(d).select(&[5, 1, 3]);
        assert_eq!(v.n_samples(), 3);
        let (x, y) = v.features_targets();
        assert_eq!(x.data(), expected.x.data());
        assert_eq!(y.as_ref(), expected.y.as_slice());
        assert_eq!(v.materialize().x.data(), expected.x.data());
    }

    #[test]
    fn view_of_view_flattens_to_storage_indices() {
        let d = dataset(8);
        let direct = d.subset(&[7, 2]);
        let outer = DatasetView::of(d).select(&[1, 3, 5, 7, 2]);
        let inner = outer.select(&[3, 4]); // rows 7 and 2 of storage
        assert_eq!(inner.row_indices(), Some(&[7usize, 2][..]));
        assert_eq!(inner.materialize().x.data(), direct.x.data());
        assert_eq!(inner.label(0), 1.0); // 7 % 3
    }

    #[test]
    fn empty_view_has_no_rows() {
        let v = DatasetView::empty(Arc::new(dataset(5)));
        assert_eq!(v.n_samples(), 0);
        assert!(!v.is_full());
        assert!(v.targets().is_empty());
        assert_eq!(v.class_counts(), vec![0, 0, 0]);
    }

    #[test]
    fn class_counts_follow_the_view() {
        let d = dataset(9); // labels 0,1,2 repeating
        let v = DatasetView::of(d);
        assert_eq!(v.class_counts(), vec![3, 3, 3]);
        let sel = v.select(&[0, 3, 6, 1]);
        assert_eq!(sel.class_counts(), vec![3, 1, 0]);
    }

    #[test]
    fn gather_counters_track_copies_and_skips() {
        // Counters are process-global; assert only deltas produced by this
        // test's own calls, tolerating concurrent growth from other tests by
        // checking lower bounds.
        let d = dataset(4);
        let (bytes0, skips0) = stats::snapshot();
        let full = DatasetView::of(d);
        let _ = full.features();
        let (_, skips1) = stats::snapshot();
        assert!(skips1 > skips0, "full-view access must count a skip");
        let sel = full.select(&[0, 2]);
        let x = sel.features();
        let (bytes1, _) = stats::snapshot();
        assert!(
            bytes1 >= bytes0 + (2 * 2 * 8) as u64,
            "index gather must count its bytes"
        );
        if let Cow::Owned(m) = x {
            recycle(m);
        }
    }
}
