//! Evaluation metrics.
//!
//! The paper uses *balanced accuracy* for classification and *MSE* for
//! regression (§5.1). All metrics here are exposed both directly and through
//! the [`Metric`] enum used by the AutoML engine; [`Metric::loss`] converts
//! any metric into a minimization objective, which is what the building
//! blocks optimize.

use crate::dataset::Task;

/// A named utility metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Fraction of correct predictions.
    Accuracy,
    /// Mean of per-class recalls (the paper's classification metric).
    BalancedAccuracy,
    /// Macro-averaged F1.
    F1Macro,
    /// Mean squared error (the paper's regression metric).
    Mse,
    /// Root mean squared error.
    Rmse,
    /// Mean absolute error.
    Mae,
    /// Coefficient of determination.
    R2,
}

impl Metric {
    /// Default metric for a task, matching the paper's setup.
    pub fn default_for(task: Task) -> Metric {
        match task {
            Task::Classification => Metric::BalancedAccuracy,
            Task::Regression => Metric::Mse,
        }
    }

    /// True when larger values are better.
    pub fn higher_is_better(&self) -> bool {
        matches!(
            self,
            Metric::Accuracy | Metric::BalancedAccuracy | Metric::F1Macro | Metric::R2
        )
    }

    /// Whether the metric applies to the given task.
    pub fn applies_to(&self, task: Task) -> bool {
        match task {
            Task::Classification => matches!(
                self,
                Metric::Accuracy | Metric::BalancedAccuracy | Metric::F1Macro
            ),
            Task::Regression => {
                matches!(self, Metric::Mse | Metric::Rmse | Metric::Mae | Metric::R2)
            }
        }
    }

    /// Computes the raw metric value.
    pub fn score(&self, y_true: &[f64], y_pred: &[f64]) -> f64 {
        match self {
            Metric::Accuracy => accuracy(y_true, y_pred),
            Metric::BalancedAccuracy => balanced_accuracy(y_true, y_pred),
            Metric::F1Macro => f1_macro(y_true, y_pred),
            Metric::Mse => mse(y_true, y_pred),
            Metric::Rmse => mse(y_true, y_pred).sqrt(),
            Metric::Mae => mae(y_true, y_pred),
            Metric::R2 => r2(y_true, y_pred),
        }
    }

    /// Converts the metric into a loss (lower is better): score-maximizing
    /// metrics bounded by 1 become `1 - score`; R² becomes `1 - R²`; error
    /// metrics pass through.
    pub fn loss(&self, y_true: &[f64], y_pred: &[f64]) -> f64 {
        let s = self.score(y_true, y_pred);
        if self.higher_is_better() {
            1.0 - s
        } else {
            s
        }
    }

    /// Short display name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            Metric::Accuracy => "accuracy",
            Metric::BalancedAccuracy => "balanced_accuracy",
            Metric::F1Macro => "f1_macro",
            Metric::Mse => "mse",
            Metric::Rmse => "rmse",
            Metric::Mae => "mae",
            Metric::R2 => "r2",
        }
    }
}

/// Fraction of exact label matches.
pub fn accuracy(y_true: &[f64], y_pred: &[f64]) -> f64 {
    debug_assert_eq!(y_true.len(), y_pred.len());
    if y_true.is_empty() {
        return 0.0;
    }
    let correct = y_true
        .iter()
        .zip(y_pred.iter())
        .filter(|(t, p)| (*t - *p).abs() < 0.5)
        .count();
    correct as f64 / y_true.len() as f64
}

fn n_classes_of(y_true: &[f64], y_pred: &[f64]) -> usize {
    let mut n = 0usize;
    for &v in y_true.iter().chain(y_pred.iter()) {
        if v.is_finite() && v >= 0.0 {
            n = n.max(v as usize + 1);
        }
    }
    n
}

/// Mean of per-class recalls; classes absent from `y_true` are skipped.
pub fn balanced_accuracy(y_true: &[f64], y_pred: &[f64]) -> f64 {
    debug_assert_eq!(y_true.len(), y_pred.len());
    let k = n_classes_of(y_true, y_pred);
    if k == 0 || y_true.is_empty() {
        return 0.0;
    }
    let mut support = vec![0usize; k];
    let mut hits = vec![0usize; k];
    for (&t, &p) in y_true.iter().zip(y_pred.iter()) {
        let t = t as usize;
        support[t] += 1;
        if (p - t as f64).abs() < 0.5 {
            hits[t] += 1;
        }
    }
    let mut total = 0.0;
    let mut present = 0usize;
    for c in 0..k {
        if support[c] > 0 {
            total += hits[c] as f64 / support[c] as f64;
            present += 1;
        }
    }
    if present == 0 {
        0.0
    } else {
        total / present as f64
    }
}

/// Macro-averaged F1 over classes present in `y_true`.
pub fn f1_macro(y_true: &[f64], y_pred: &[f64]) -> f64 {
    debug_assert_eq!(y_true.len(), y_pred.len());
    let k = n_classes_of(y_true, y_pred);
    if k == 0 || y_true.is_empty() {
        return 0.0;
    }
    let mut tp = vec![0usize; k];
    let mut fp = vec![0usize; k];
    let mut fn_ = vec![0usize; k];
    for (&t, &p) in y_true.iter().zip(y_pred.iter()) {
        let t = t as usize;
        let p = p.max(0.0) as usize;
        if t == p {
            tp[t] += 1;
        } else {
            if p < k {
                fp[p] += 1;
            }
            fn_[t] += 1;
        }
    }
    let mut total = 0.0;
    let mut present = 0usize;
    for c in 0..k {
        if tp[c] + fn_[c] == 0 {
            continue; // class absent from y_true
        }
        present += 1;
        let denom = 2 * tp[c] + fp[c] + fn_[c];
        if denom > 0 {
            total += 2.0 * tp[c] as f64 / denom as f64;
        }
    }
    if present == 0 {
        0.0
    } else {
        total / present as f64
    }
}

/// Mean squared error.
pub fn mse(y_true: &[f64], y_pred: &[f64]) -> f64 {
    debug_assert_eq!(y_true.len(), y_pred.len());
    if y_true.is_empty() {
        return 0.0;
    }
    y_true
        .iter()
        .zip(y_pred.iter())
        .map(|(t, p)| (t - p) * (t - p))
        .sum::<f64>()
        / y_true.len() as f64
}

/// Mean absolute error.
pub fn mae(y_true: &[f64], y_pred: &[f64]) -> f64 {
    debug_assert_eq!(y_true.len(), y_pred.len());
    if y_true.is_empty() {
        return 0.0;
    }
    y_true
        .iter()
        .zip(y_pred.iter())
        .map(|(t, p)| (t - p).abs())
        .sum::<f64>()
        / y_true.len() as f64
}

/// Coefficient of determination R². Returns 0.0 when `y_true` is constant
/// and predictions are imperfect (matching scikit-learn's convention of a
/// non-informative baseline).
pub fn r2(y_true: &[f64], y_pred: &[f64]) -> f64 {
    debug_assert_eq!(y_true.len(), y_pred.len());
    if y_true.is_empty() {
        return 0.0;
    }
    let mean = y_true.iter().sum::<f64>() / y_true.len() as f64;
    let ss_res: f64 = y_true
        .iter()
        .zip(y_pred.iter())
        .map(|(t, p)| (t - p) * (t - p))
        .sum();
    let ss_tot: f64 = y_true.iter().map(|t| (t - mean) * (t - mean)).sum();
    if ss_tot < 1e-24 {
        if ss_res < 1e-24 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// The paper's relative MSE improvement Δ(m1, m2) = (s(m2) − s(m1)) /
/// max(s(m2), s(m1)), where `s` is the MSE of each system (Figure 4, REG).
/// Positive values mean system 1 is better (smaller error).
pub fn relative_mse_improvement(mse_system1: f64, mse_system2: f64) -> f64 {
    let denom = mse_system1.max(mse_system2);
    if denom <= 0.0 {
        return 0.0;
    }
    (mse_system2 - mse_system1) / denom
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(accuracy(&[0.0, 1.0, 1.0], &[0.0, 1.0, 0.0]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn balanced_accuracy_weights_classes_equally() {
        // 9 of class 0 (all right), 1 of class 1 (wrong): plain accuracy 0.9,
        // balanced accuracy 0.5.
        let y_true: Vec<f64> = (0..10).map(|i| if i == 9 { 1.0 } else { 0.0 }).collect();
        let y_pred = vec![0.0; 10];
        assert!((accuracy(&y_true, &y_pred) - 0.9).abs() < 1e-12);
        assert!((balanced_accuracy(&y_true, &y_pred) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn balanced_accuracy_perfect_is_one() {
        let y = vec![0.0, 1.0, 2.0, 0.0];
        assert_eq!(balanced_accuracy(&y, &y), 1.0);
    }

    #[test]
    fn f1_macro_known_case() {
        // Binary: TP=1, FP=1, FN=1 for class 1 -> F1 = 0.5; class 0: TP=1,
        // FP=1, FN=1 -> 0.5. Macro = 0.5.
        let y_true = vec![0.0, 0.0, 1.0, 1.0];
        let y_pred = vec![0.0, 1.0, 1.0, 0.0];
        assert!((f1_macro(&y_true, &y_pred) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mse_mae_rmse() {
        let t = vec![1.0, 2.0, 3.0];
        let p = vec![1.0, 3.0, 5.0];
        assert!((mse(&t, &p) - 5.0 / 3.0).abs() < 1e-12);
        assert!((mae(&t, &p) - 1.0).abs() < 1e-12);
        assert!((Metric::Rmse.score(&t, &p) - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn r2_bounds() {
        let t = vec![1.0, 2.0, 3.0];
        assert_eq!(r2(&t, &t), 1.0);
        let mean_pred = vec![2.0, 2.0, 2.0];
        assert!(r2(&t, &mean_pred).abs() < 1e-12);
        assert_eq!(r2(&[5.0, 5.0], &[5.0, 5.0]), 1.0);
        assert_eq!(r2(&[5.0, 5.0], &[4.0, 6.0]), 0.0);
    }

    #[test]
    fn loss_flips_score_metrics() {
        let t = vec![0.0, 1.0];
        let p = vec![0.0, 1.0];
        assert_eq!(Metric::BalancedAccuracy.loss(&t, &p), 0.0);
        assert_eq!(Metric::Mse.loss(&t, &p), 0.0);
        let bad = vec![1.0, 0.0];
        assert_eq!(Metric::BalancedAccuracy.loss(&t, &bad), 1.0);
    }

    #[test]
    fn defaults_match_paper() {
        assert_eq!(
            Metric::default_for(Task::Classification),
            Metric::BalancedAccuracy
        );
        assert_eq!(Metric::default_for(Task::Regression), Metric::Mse);
    }

    #[test]
    fn applicability() {
        assert!(Metric::BalancedAccuracy.applies_to(Task::Classification));
        assert!(!Metric::BalancedAccuracy.applies_to(Task::Regression));
        assert!(Metric::Mse.applies_to(Task::Regression));
        assert!(!Metric::Mse.applies_to(Task::Classification));
    }

    #[test]
    fn relative_improvement_sign() {
        // System 1 has smaller MSE => positive improvement.
        assert!(relative_mse_improvement(1.0, 2.0) > 0.0);
        assert!(relative_mse_improvement(2.0, 1.0) < 0.0);
        assert_eq!(relative_mse_improvement(1.0, 2.0), 0.5);
        assert_eq!(relative_mse_improvement(0.0, 0.0), 0.0);
    }

    #[test]
    fn balanced_accuracy_skips_absent_classes() {
        // Predictions mention class 2 but y_true never does.
        let y_true = vec![0.0, 1.0];
        let y_pred = vec![2.0, 1.0];
        assert!((balanced_accuracy(&y_true, &y_pred) - 0.5).abs() < 1e-12);
    }
}
