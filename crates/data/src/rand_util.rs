//! Seeded RNG helpers shared by the workspace.
//!
//! `rand` 0.10 does not bundle non-uniform distributions, so the Gaussian
//! sampler lives here (Box–Muller). All stochastic components in the
//! reproduction accept explicit `u64` seeds; [`derive_seed`] mixes a parent
//! seed with stream labels so that independent components get decorrelated
//! streams deterministically.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// Creates a [`StdRng`] from an explicit seed.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Deterministically derives a child seed from `(seed, stream)` using a
/// splitmix64 finalizer. Distinct streams give decorrelated child RNGs.
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Samples one standard normal deviate via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard against log(0).
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples a normal deviate with given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    mean + std * standard_normal(rng)
}

/// Fills a vector with standard normal deviates.
pub fn normal_vec<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<f64> {
    (0..n).map(|_| standard_normal(rng)).collect()
}

/// Fisher–Yates shuffle of indices `0..n`, returned as a vector.
pub fn permutation<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        idx.swap(i, j);
    }
    idx
}

/// Samples `k` distinct indices from `0..n` (k ≤ n), in random order.
pub fn sample_without_replacement<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    debug_assert!(k <= n);
    let mut perm = permutation(rng, n);
    perm.truncate(k);
    perm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_is_deterministic_and_stream_sensitive() {
        assert_eq!(derive_seed(1, 2), derive_seed(1, 2));
        assert_ne!(derive_seed(1, 2), derive_seed(1, 3));
        assert_ne!(derive_seed(1, 2), derive_seed(2, 2));
    }

    #[test]
    fn standard_normal_moments_are_plausible() {
        let mut rng = rng_from_seed(7);
        let xs = normal_vec(&mut rng, 20_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut rng = rng_from_seed(11);
        let xs: Vec<f64> = (0..20_000).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 5.0).abs() < 0.1);
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = rng_from_seed(3);
        let mut p = permutation(&mut rng, 100);
        p.sort_unstable();
        assert_eq!(p, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sampling_without_replacement_is_distinct() {
        let mut rng = rng_from_seed(4);
        let s = sample_without_replacement(&mut rng, 50, 20);
        assert_eq!(s.len(), 20);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = rng_from_seed(9);
        let mut b = rng_from_seed(9);
        for _ in 0..10 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }
}
