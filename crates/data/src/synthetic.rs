//! Synthetic dataset generators.
//!
//! These play the role of the paper's OpenML/Kaggle corpus. Each generator
//! produces a different *regime* — linear, clustered, nonlinear manifold,
//! pure interaction, sparse high-dimensional, categorical, imbalanced — so
//! that no single model family dominates the benchmark suite, which is the
//! property average-rank comparisons rely on.

use crate::dataset::{Dataset, FeatureType};
use crate::rand_util::{normal, permutation, rng_from_seed, standard_normal};
use rand::rngs::StdRng;
use rand::RngExt;
use volcanoml_linalg::Matrix;

/// Options for [`make_classification`] (sklearn-style Gaussian clusters with
/// redundant and noise features).
#[derive(Debug, Clone)]
pub struct ClassificationSpec {
    /// Number of samples.
    pub n_samples: usize,
    /// Total feature count (informative + redundant + noise).
    pub n_features: usize,
    /// Number of informative dimensions.
    pub n_informative: usize,
    /// Number of redundant (linear combinations of informative) dimensions.
    pub n_redundant: usize,
    /// Number of classes.
    pub n_classes: usize,
    /// Distance between class centroids in the informative subspace.
    pub class_sep: f64,
    /// Fraction of labels flipped to a random class (label noise).
    pub flip_y: f64,
    /// Optional per-class sampling weights; uniform when empty.
    pub weights: Vec<f64>,
}

impl Default for ClassificationSpec {
    fn default() -> Self {
        ClassificationSpec {
            n_samples: 500,
            n_features: 10,
            n_informative: 5,
            n_redundant: 2,
            n_classes: 2,
            class_sep: 1.0,
            flip_y: 0.01,
            weights: Vec::new(),
        }
    }
}

/// Gaussian-cluster classification with redundant and noise features.
pub fn make_classification(spec: &ClassificationSpec, seed: u64) -> Dataset {
    let mut rng = rng_from_seed(seed);
    let n = spec.n_samples;
    let d = spec.n_features;
    let info = spec.n_informative.min(d).max(1);
    let redundant = spec.n_redundant.min(d - info);
    let k = spec.n_classes.max(2);

    // Class centroids on hypercube corners. Classes are assigned distinct
    // bit patterns whose differences spread over all informative dimensions:
    // feature j reads bit (j mod b) of the class index (b = bits needed for
    // k classes), XORed with a per-feature parity so the geometry varies.
    let bits = (usize::BITS - (k - 1).leading_zeros()).max(1) as usize;
    let mut centroids = vec![vec![0.0; info]; k];
    for (c, centroid) in centroids.iter_mut().enumerate() {
        for (j, v) in centroid.iter_mut().enumerate() {
            let feature_parity = (j / bits).wrapping_mul(0x9E37) >> 3 & 1;
            let bit = ((c >> (j % bits)) & 1) ^ feature_parity;
            let sign = if bit == 1 { 1.0 } else { -1.0 };
            *v = sign * spec.class_sep + 0.3 * standard_normal(&mut rng);
        }
    }

    // Redundant mixing matrix.
    let mix: Vec<Vec<f64>> = (0..redundant)
        .map(|_| (0..info).map(|_| standard_normal(&mut rng)).collect())
        .collect();

    // Class assignment respecting weights.
    let weights = if spec.weights.len() == k {
        spec.weights.clone()
    } else {
        vec![1.0 / k as f64; k]
    };
    let total_w: f64 = weights.iter().sum();

    let mut x = Matrix::zeros(n, d);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let u: f64 = rng.random::<f64>() * total_w;
        let mut acc = 0.0;
        let mut label = k - 1;
        for (c, &w) in weights.iter().enumerate() {
            acc += w;
            if u <= acc {
                label = c;
                break;
            }
        }
        let row = x.row_mut(i);
        for (j, v) in row.iter_mut().take(info).enumerate() {
            *v = centroids[label][j] + standard_normal(&mut rng);
        }
        // Redundant features.
        let informative: Vec<f64> = row[..info].to_vec();
        for (r, coeffs) in mix.iter().enumerate() {
            row[info + r] = coeffs
                .iter()
                .zip(informative.iter())
                .map(|(a, b)| a * b)
                .sum::<f64>()
                / (info as f64).sqrt();
        }
        // Noise features.
        for v in row.iter_mut().skip(info + redundant) {
            *v = standard_normal(&mut rng);
        }
        // Label flipping.
        let final_label = if rng.random::<f64>() < spec.flip_y {
            rng.random_range(0..k)
        } else {
            label
        };
        y.push(final_label as f64);
    }
    Dataset::classification(
        format!("synthetic_cls_{seed}"),
        x,
        y,
        vec![FeatureType::Numerical; d],
    )
    .expect("generator produces consistent data")
}

/// Two interleaving half-moons (binary, nonlinear boundary) padded with
/// `extra_noise_features` pure-noise columns.
pub fn make_moons(n: usize, noise: f64, extra_noise_features: usize, seed: u64) -> Dataset {
    let mut rng = rng_from_seed(seed);
    let d = 2 + extra_noise_features;
    let mut x = Matrix::zeros(n, d);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let label = i % 2;
        let t = std::f64::consts::PI * rng.random::<f64>();
        let (mut px, mut py) = if label == 0 {
            (t.cos(), t.sin())
        } else {
            (1.0 - t.cos(), 0.5 - t.sin())
        };
        px += noise * standard_normal(&mut rng);
        py += noise * standard_normal(&mut rng);
        let row = x.row_mut(i);
        row[0] = px;
        row[1] = py;
        for v in row.iter_mut().skip(2) {
            *v = standard_normal(&mut rng);
        }
        y.push(label as f64);
    }
    Dataset::classification(
        format!("moons_{seed}"),
        x,
        y,
        vec![FeatureType::Numerical; d],
    )
    .expect("generator produces consistent data")
}

/// Concentric circles (binary; radial boundary defeats linear models).
pub fn make_circles(n: usize, noise: f64, factor: f64, seed: u64) -> Dataset {
    let mut rng = rng_from_seed(seed);
    let mut x = Matrix::zeros(n, 2);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let label = i % 2;
        let r = if label == 0 { 1.0 } else { factor };
        let theta = 2.0 * std::f64::consts::PI * rng.random::<f64>();
        x.set(i, 0, r * theta.cos() + noise * standard_normal(&mut rng));
        x.set(i, 1, r * theta.sin() + noise * standard_normal(&mut rng));
        y.push(label as f64);
    }
    Dataset::classification(
        format!("circles_{seed}"),
        x,
        y,
        vec![FeatureType::Numerical; 2],
    )
    .expect("generator produces consistent data")
}

/// Axis-aligned XOR / checkerboard pattern over `parity_dims` dimensions —
/// pure feature interaction; trees excel, linear models are at chance.
pub fn make_xor(n: usize, parity_dims: usize, total_dims: usize, noise: f64, seed: u64) -> Dataset {
    let mut rng = rng_from_seed(seed);
    let d = total_dims.max(parity_dims);
    let mut x = Matrix::zeros(n, d);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let mut parity = 0usize;
        let row = x.row_mut(i);
        for (j, v) in row.iter_mut().enumerate() {
            let s = standard_normal(&mut rng);
            *v = s;
            if j < parity_dims && s > 0.0 {
                parity ^= 1;
            }
        }
        let label = if rng.random::<f64>() < noise {
            1 - parity
        } else {
            parity
        };
        y.push(label as f64);
    }
    Dataset::classification(
        format!("xor_{seed}"),
        x,
        y,
        vec![FeatureType::Numerical; d],
    )
    .expect("generator produces consistent data")
}

/// Isotropic Gaussian blobs; near-trivial for distance-based models.
pub fn make_blobs(n: usize, centers: usize, d: usize, cluster_std: f64, seed: u64) -> Dataset {
    let mut rng = rng_from_seed(seed);
    let mut centroids = vec![vec![0.0; d]; centers];
    for c in centroids.iter_mut() {
        for v in c.iter_mut() {
            *v = 6.0 * (rng.random::<f64>() - 0.5);
        }
    }
    let mut x = Matrix::zeros(n, d);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let label = i % centers;
        let row = x.row_mut(i);
        for (j, v) in row.iter_mut().enumerate() {
            *v = centroids[label][j] + cluster_std * standard_normal(&mut rng);
        }
        y.push(label as f64);
    }
    Dataset::classification(
        format!("blobs_{seed}"),
        x,
        y,
        vec![FeatureType::Numerical; d],
    )
    .expect("generator produces consistent data")
}

/// Classification driven by categorical feature interactions: `n_categorical`
/// integer-coded columns, label = hash-parity of two hidden columns.
pub fn make_categorical(
    n: usize,
    n_categorical: usize,
    cardinality: usize,
    n_numeric: usize,
    noise: f64,
    seed: u64,
) -> Dataset {
    let mut rng = rng_from_seed(seed);
    let d = n_categorical + n_numeric;
    let mut x = Matrix::zeros(n, d);
    let mut y = Vec::with_capacity(n);
    let card = cardinality.max(2);
    for i in 0..n {
        let mut cats = Vec::with_capacity(n_categorical);
        {
            let row = x.row_mut(i);
            for (j, v) in row.iter_mut().take(n_categorical).enumerate() {
                let c = rng.random_range(0..card);
                *v = c as f64;
                if j < 2 {
                    cats.push(c);
                }
            }
            for v in row.iter_mut().skip(n_categorical) {
                *v = standard_normal(&mut rng);
            }
        }
        let base = if cats.len() >= 2 {
            ((cats[0] + 2 * cats[1]) % 2) as f64
        } else {
            (cats.first().copied().unwrap_or(0) % 2) as f64
        };
        let label = if rng.random::<f64>() < noise {
            1.0 - base
        } else {
            base
        };
        y.push(label);
    }
    let mut feature_types = vec![FeatureType::Categorical(card); n_categorical];
    feature_types.extend(vec![FeatureType::Numerical; n_numeric]);
    Dataset::classification(format!("categorical_{seed}"), x, y, feature_types)
        .expect("generator produces consistent data")
}

/// Options for [`make_regression`] (linear model with noise and nuisance
/// features).
#[derive(Debug, Clone)]
pub struct RegressionSpec {
    /// Number of samples.
    pub n_samples: usize,
    /// Total feature count.
    pub n_features: usize,
    /// Number of features with non-zero coefficients.
    pub n_informative: usize,
    /// Standard deviation of additive Gaussian noise.
    pub noise: f64,
    /// Adds `tanh` saturation to make the response mildly nonlinear.
    pub nonlinear: bool,
}

impl Default for RegressionSpec {
    fn default() -> Self {
        RegressionSpec {
            n_samples: 400,
            n_features: 10,
            n_informative: 5,
            noise: 0.5,
            nonlinear: false,
        }
    }
}

/// (Mildly non)linear regression with sparse true coefficients.
pub fn make_regression(spec: &RegressionSpec, seed: u64) -> Dataset {
    let mut rng = rng_from_seed(seed);
    let n = spec.n_samples;
    let d = spec.n_features;
    let info = spec.n_informative.min(d).max(1);
    let coef: Vec<f64> = (0..info).map(|_| normal(&mut rng, 0.0, 2.0)).collect();
    let mut x = Matrix::zeros(n, d);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let row = x.row_mut(i);
        for v in row.iter_mut() {
            *v = standard_normal(&mut rng);
        }
        let mut target: f64 = row
            .iter()
            .take(info)
            .zip(coef.iter())
            .map(|(a, b)| a * b)
            .sum();
        if spec.nonlinear {
            target = 3.0 * (target / 3.0).tanh() + 0.3 * target;
        }
        target += spec.noise * standard_normal(&mut rng);
        y.push(target);
    }
    Dataset::regression(
        format!("synthetic_reg_{seed}"),
        x,
        y,
        vec![FeatureType::Numerical; d],
    )
    .expect("generator produces consistent data")
}

/// Friedman #1: y = 10 sin(π x₀ x₁) + 20 (x₂ − 0.5)² + 10 x₃ + 5 x₄ + ε,
/// over 5 informative + `extra` noise features in [0, 1].
pub fn make_friedman1(n: usize, extra: usize, noise: f64, seed: u64) -> Dataset {
    let mut rng = rng_from_seed(seed);
    let d = 5 + extra;
    let mut x = Matrix::zeros(n, d);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let row = x.row_mut(i);
        for v in row.iter_mut() {
            *v = rng.random::<f64>();
        }
        let target = 10.0 * (std::f64::consts::PI * row[0] * row[1]).sin()
            + 20.0 * (row[2] - 0.5).powi(2)
            + 10.0 * row[3]
            + 5.0 * row[4]
            + noise * standard_normal(&mut rng);
        y.push(target);
    }
    Dataset::regression(
        format!("friedman1_{seed}"),
        x,
        y,
        vec![FeatureType::Numerical; d],
    )
    .expect("generator produces consistent data")
}

/// Friedman #2: y = sqrt(x₀² + (x₁ x₂ − 1/(x₁ x₃))²) + ε, heteroscedastic
/// scales across inputs.
pub fn make_friedman2(n: usize, noise: f64, seed: u64) -> Dataset {
    let mut rng = rng_from_seed(seed);
    let mut x = Matrix::zeros(n, 4);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let x0 = 100.0 * rng.random::<f64>();
        let x1 = 40.0 * std::f64::consts::PI * rng.random::<f64>() + 40.0 * std::f64::consts::PI;
        let x2 = rng.random::<f64>();
        let x3 = 10.0 * rng.random::<f64>() + 1.0;
        let row = x.row_mut(i);
        row.copy_from_slice(&[x0, x1, x2, x3]);
        let target = (x0 * x0 + (x1 * x2 - 1.0 / (x1 * x3)).powi(2)).sqrt()
            + noise * standard_normal(&mut rng);
        y.push(target);
    }
    Dataset::regression(
        format!("friedman2_{seed}"),
        x,
        y,
        vec![FeatureType::Numerical; 4],
    )
    .expect("generator produces consistent data")
}

/// Piecewise-constant regression on axis-aligned cells — the regime where
/// tree ensembles beat all linear methods.
pub fn make_piecewise(n: usize, d: usize, cells_per_dim: usize, noise: f64, seed: u64) -> Dataset {
    let mut rng = rng_from_seed(seed);
    let cells = cells_per_dim.max(2);
    // A value table over the first two dims' cells.
    let mut table = vec![vec![0.0; cells]; cells];
    for r in table.iter_mut() {
        for v in r.iter_mut() {
            *v = normal(&mut rng, 0.0, 3.0);
        }
    }
    let mut x = Matrix::zeros(n, d.max(2));
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let row = x.row_mut(i);
        for v in row.iter_mut() {
            *v = rng.random::<f64>();
        }
        let c0 = ((row[0] * cells as f64) as usize).min(cells - 1);
        let c1 = ((row[1] * cells as f64) as usize).min(cells - 1);
        y.push(table[c0][c1] + noise * standard_normal(&mut rng));
    }
    Dataset::regression(
        format!("piecewise_{seed}"),
        x,
        y,
        vec![FeatureType::Numerical; d.max(2)],
    )
    .expect("generator produces consistent data")
}

/// Scale applied inside the tanh rendering of [`make_embedded_images`]; the
/// matched extractor in `volcanoml-fe::embedding` must divide by the same
/// constant when inverting.
pub const RENDER_TANH_SCALE: f64 = 0.15;

/// Vision-like task for the embedding-selection experiment (§5.3 of the
/// paper). The class is a latent-space *third-order interaction* — bit `b`
/// of the label fixes the sign of `z_{3b} · z_{3b+1} · z_{3b+2}` (a
/// third-moment statistic: per-class means *and* covariances of the latents
/// are identical, so linear models, QDA, and distance-based models see
/// nothing in pixel space) — and the latents are
/// pushed through a fixed random rendering `tanh(s (W z + b)) + ε` into
/// `n_pixels` raw features. In pixel space the signal is a second-order
/// surface diffused over all pixels (shallow models on raw pixels struggle,
/// linear models are at chance); after the matched extractor in
/// `volcanoml-fe::embedding` inverts the rendering, the interaction lives in
/// a handful of recovered latents and is easy to learn. Latents beyond the
/// signal pairs are high-variance class-irrelevant "style" factors: they
/// dominate raw-pixel distances (so distance-based models fail on pixels)
/// but are trivially normalized away once the latents are separated.
pub fn make_embedded_images(
    n: usize,
    n_latent: usize,
    n_pixels: usize,
    n_classes: usize,
    noise: f64,
    seed: u64,
) -> Dataset {
    let mut rng = rng_from_seed(seed);
    let k = n_classes.max(2);
    let bits = (usize::BITS - (k - 1).leading_zeros()).max(1) as usize;
    let n_latent = n_latent.max(3 * bits);
    // Rendering parameters fixed by the *dataset* seed so the paired
    // extractor (same seed convention) can invert them.
    let mut render_rng = rng_from_seed(rendering_seed(seed));
    let w: Vec<Vec<f64>> = (0..n_pixels)
        .map(|_| (0..n_latent).map(|_| standard_normal(&mut render_rng)).collect())
        .collect();
    let b: Vec<f64> = (0..n_pixels).map(|_| standard_normal(&mut render_rng)).collect();

    let mut x = Matrix::zeros(n, n_pixels);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let label = i % k;
        // Sample latents with a margin away from zero, then set the triple
        // product's sign from the label bit (1 ⇒ negative product).
        let mut z: Vec<f64> = (0..n_latent)
            .map(|j| {
                if j < 3 * bits {
                    // Signal latents with a margin away from zero.
                    let magnitude = 0.4 + standard_normal(&mut rng).abs();
                    if rng.random::<f64>() < 0.5 {
                        magnitude
                    } else {
                        -magnitude
                    }
                } else {
                    // Style latents: large variance, no class information.
                    3.0 * standard_normal(&mut rng)
                }
            })
            .collect();
        for bit in 0..bits {
            let want_negative = (label >> bit) & 1 == 1;
            let base = 3 * bit;
            let product_negative = z[base] * z[base + 1] * z[base + 2] < 0.0;
            if product_negative != want_negative {
                z[base + 2] = -z[base + 2];
            }
        }
        let row = x.row_mut(i);
        for (p, v) in row.iter_mut().enumerate() {
            let pre: f64 = w[p].iter().zip(z.iter()).map(|(a, b)| a * b).sum::<f64>() + b[p];
            *v = (pre * RENDER_TANH_SCALE).tanh() + noise * standard_normal(&mut rng);
        }
        y.push(label as f64);
    }
    Dataset::classification(
        format!("images_{seed}"),
        x,
        y,
        vec![FeatureType::Numerical; n_pixels],
    )
    .expect("generator produces consistent data")
}

/// Seed convention linking [`make_embedded_images`] with the "pre-trained"
/// extractor that can undo its rendering.
pub fn rendering_seed(dataset_seed: u64) -> u64 {
    dataset_seed ^ 0xABCD_EF01_2345_6789
}

/// Replaces a fraction of feature values with `NaN` (missing), uniformly at
/// random, leaving at least one observed value per column.
pub fn inject_missing(d: &Dataset, fraction: f64, seed: u64) -> Dataset {
    let mut rng = rng_from_seed(seed);
    let mut out = d.clone();
    let (n, cols) = out.x.shape();
    if n == 0 || cols == 0 {
        return out;
    }
    let per_col = ((n as f64 * fraction).round() as usize).min(n.saturating_sub(1));
    for c in 0..cols {
        let rows = permutation(&mut rng, n);
        for &r in rows.iter().take(per_col) {
            out.x.set(r, c, f64::NAN);
        }
    }
    out
}

/// Shuffles the samples of a dataset (useful after generators that interleave
/// classes deterministically).
pub fn shuffle(d: &Dataset, seed: u64) -> Dataset {
    let mut rng: StdRng = rng_from_seed(seed);
    let perm = permutation(&mut rng, d.n_samples());
    d.subset(&perm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Task;

    #[test]
    fn classification_shapes_and_labels() {
        let spec = ClassificationSpec {
            n_samples: 200,
            n_features: 12,
            n_informative: 4,
            n_redundant: 3,
            n_classes: 3,
            ..Default::default()
        };
        let d = make_classification(&spec, 1);
        assert_eq!(d.n_samples(), 200);
        assert_eq!(d.n_features(), 12);
        assert_eq!(d.n_classes, 3);
        assert_eq!(d.task, Task::Classification);
    }

    #[test]
    fn classification_is_deterministic() {
        let spec = ClassificationSpec::default();
        let a = make_classification(&spec, 5);
        let b = make_classification(&spec, 5);
        assert_eq!(a.x.data(), b.x.data());
        assert_eq!(a.y, b.y);
        let c = make_classification(&spec, 6);
        assert_ne!(a.x.data(), c.x.data());
    }

    #[test]
    fn weights_skew_class_distribution() {
        let spec = ClassificationSpec {
            n_samples: 1000,
            weights: vec![0.9, 0.1],
            flip_y: 0.0,
            ..Default::default()
        };
        let d = make_classification(&spec, 2);
        let counts = d.class_counts();
        assert!(counts[0] > 800, "{counts:?}");
        assert!(counts[1] < 200, "{counts:?}");
    }

    #[test]
    fn moons_has_two_balanced_classes() {
        let d = make_moons(100, 0.1, 3, 0);
        assert_eq!(d.n_features(), 5);
        let c = d.class_counts();
        assert_eq!(c[0], 50);
        assert_eq!(c[1], 50);
    }

    #[test]
    fn circles_radius_separation() {
        let d = make_circles(200, 0.0, 0.5, 0);
        for i in 0..d.n_samples() {
            let r = (d.x.get(i, 0).powi(2) + d.x.get(i, 1).powi(2)).sqrt();
            let expected = if d.y[i] == 0.0 { 1.0 } else { 0.5 };
            assert!((r - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn xor_labels_follow_parity() {
        let d = make_xor(300, 2, 6, 0.0, 3);
        for i in 0..d.n_samples() {
            let parity = (d.x.get(i, 0) > 0.0) as usize ^ (d.x.get(i, 1) > 0.0) as usize;
            assert_eq!(d.y[i], parity as f64);
        }
    }

    #[test]
    fn blobs_cover_all_centers() {
        let d = make_blobs(90, 3, 4, 0.3, 7);
        assert_eq!(d.n_classes, 3);
        assert!(d.class_counts().iter().all(|&c| c == 30));
    }

    #[test]
    fn categorical_marks_feature_types() {
        let d = make_categorical(100, 3, 4, 2, 0.0, 0);
        assert_eq!(d.categorical_columns(), vec![0, 1, 2]);
        assert!(d
            .x
            .col(0)
            .iter()
            .all(|&v| v.fract() == 0.0 && (0.0..4.0).contains(&v)));
    }

    #[test]
    fn regression_noise_free_is_linear() {
        let spec = RegressionSpec {
            n_samples: 50,
            noise: 0.0,
            nonlinear: false,
            ..Default::default()
        };
        let d = make_regression(&spec, 1);
        assert_eq!(d.task, Task::Regression);
        assert!(d.y.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn friedman1_dimensions() {
        let d = make_friedman1(80, 5, 0.1, 0);
        assert_eq!(d.n_features(), 10);
        // y range should reflect the known formula bounds (roughly 0..30).
        assert!(d.y.iter().cloned().fold(f64::MIN, f64::max) < 40.0);
    }

    #[test]
    fn friedman2_is_positive() {
        let d = make_friedman2(80, 0.0, 0);
        assert!(d.y.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn piecewise_is_deterministic_per_cell() {
        let d = make_piecewise(200, 3, 3, 0.0, 4);
        // Two points in the same cell must share a target when noise = 0.
        let cell = |i: usize| {
            let c0 = ((d.x.get(i, 0) * 3.0) as usize).min(2);
            let c1 = ((d.x.get(i, 1) * 3.0) as usize).min(2);
            (c0, c1)
        };
        for i in 0..d.n_samples() {
            for j in i + 1..d.n_samples() {
                if cell(i) == cell(j) {
                    assert!((d.y[i] - d.y[j]).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn embedded_images_shapes() {
        let d = make_embedded_images(60, 4, 32, 3, 0.05, 9);
        assert_eq!(d.n_features(), 32);
        assert_eq!(d.n_classes, 3);
        // Pixels are bounded by tanh plus noise.
        assert!(d.x.data().iter().all(|v| v.abs() < 3.0));
    }

    #[test]
    fn inject_missing_leaves_observed_values() {
        let spec = ClassificationSpec::default();
        let d = make_classification(&spec, 0);
        let m = inject_missing(&d, 0.2, 1);
        assert!(m.has_missing());
        for c in 0..m.n_features() {
            assert!(m.x.col(c).iter().any(|v| !v.is_nan()));
        }
        let nan_count = m.x.data().iter().filter(|v| v.is_nan()).count();
        let expected = (0.2 * d.n_samples() as f64).round() as usize * d.n_features();
        assert_eq!(nan_count, expected);
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let d = make_moons(50, 0.1, 0, 0);
        let s = shuffle(&d, 1);
        let mut a = d.y.clone();
        let mut b = s.y.clone();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(a, b);
        assert_ne!(d.y, s.y);
    }
}
