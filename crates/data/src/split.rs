//! Train/test splitting and cross-validation iterators.
//!
//! Every split is defined purely by *row indices*, computed from labels and a
//! seed. The owned-`Dataset` entry points and the zero-copy [`DatasetView`]
//! entry points share the same index-selection helpers, so a view-based split
//! picks bitwise-identical rows to the copy-based one at the same seed.

use crate::dataset::{Dataset, Task};
use crate::rand_util::{permutation, rng_from_seed};
use crate::view::DatasetView;
use crate::{DataError, Result};
use std::sync::Arc;

/// Splits a dataset into train and test parts.
///
/// `test_fraction` ∈ (0, 1). Classification datasets are split with
/// stratification so every class keeps (approximately) its base rate in both
/// parts; regression datasets are split uniformly at random. Deterministic
/// given `seed`.
pub fn train_test_split(d: &Dataset, test_fraction: f64, seed: u64) -> Result<(Dataset, Dataset)> {
    let (train_idx, test_idx) =
        split_positions(&d.y, d.n_classes, d.task, test_fraction, seed)?;
    Ok((d.subset(&train_idx), d.subset(&test_idx)))
}

/// View-returning variant of [`train_test_split`]: both halves share the
/// given storage; no rows are copied. Picks the same rows as
/// [`train_test_split`] at the same seed.
pub fn train_test_split_views(
    storage: &Arc<Dataset>,
    test_fraction: f64,
    seed: u64,
) -> Result<(DatasetView, DatasetView)> {
    let (train_idx, test_idx) =
        split_positions(&storage.y, storage.n_classes, storage.task, test_fraction, seed)?;
    let full = DatasetView::full(Arc::clone(storage));
    Ok((full.select(&train_idx), full.select(&test_idx)))
}

/// The `(train, test)` row positions both split entry points materialize.
fn split_positions(
    labels: &[f64],
    n_classes: usize,
    task: Task,
    test_fraction: f64,
    seed: u64,
) -> Result<(Vec<usize>, Vec<usize>)> {
    if !(0.0..1.0).contains(&test_fraction) || test_fraction == 0.0 {
        return Err(DataError::Inconsistent(format!(
            "test_fraction must be in (0,1), got {test_fraction}"
        )));
    }
    let n = labels.len();
    if n < 2 {
        return Err(DataError::TooSmall("need at least 2 samples".into()));
    }
    Ok(match task {
        Task::Classification => stratified_positions(labels, n_classes, test_fraction, seed),
        Task::Regression => {
            let mut rng = rng_from_seed(seed);
            let perm = permutation(&mut rng, n);
            let n_test = ((n as f64 * test_fraction).round() as usize).clamp(1, n - 1);
            (perm[n_test..].to_vec(), perm[..n_test].to_vec())
        }
    })
}

fn stratified_positions(
    labels: &[f64],
    n_classes: usize,
    test_fraction: f64,
    seed: u64,
) -> (Vec<usize>, Vec<usize>) {
    let mut rng = rng_from_seed(seed);
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); n_classes.max(1)];
    for (i, &label) in labels.iter().enumerate() {
        by_class[label as usize].push(i);
    }
    let mut train = Vec::new();
    let mut test = Vec::new();
    for members in by_class.iter() {
        if members.is_empty() {
            continue;
        }
        let perm = permutation(&mut rng, members.len());
        let n_test = ((members.len() as f64 * test_fraction).round() as usize)
            .min(members.len().saturating_sub(1));
        for (rank, &p) in perm.iter().enumerate() {
            if rank < n_test {
                test.push(members[p]);
            } else {
                train.push(members[p]);
            }
        }
    }
    // Guarantee a non-empty test set even under extreme skew.
    if test.is_empty() {
        if let Some(moved) = train.pop() {
            test.push(moved);
        }
    }
    train.sort_unstable();
    test.sort_unstable();
    (train, test)
}

/// Plain k-fold cross-validation over shuffled indices.
#[derive(Debug, Clone)]
pub struct KFold {
    folds: Vec<Vec<usize>>,
}

impl KFold {
    /// Builds `k` folds over `n` samples, shuffled with `seed`.
    pub fn new(n: usize, k: usize, seed: u64) -> Result<Self> {
        if k < 2 || k > n {
            return Err(DataError::TooSmall(format!("k={k} folds over n={n} samples")));
        }
        let mut rng = rng_from_seed(seed);
        let perm = permutation(&mut rng, n);
        let mut folds: Vec<Vec<usize>> = vec![Vec::with_capacity(n / k + 1); k];
        for (rank, idx) in perm.into_iter().enumerate() {
            folds[rank % k].push(idx);
        }
        Ok(KFold { folds })
    }

    /// Number of folds.
    pub fn k(&self) -> usize {
        self.folds.len()
    }

    /// Iterator over `(train_indices, validation_indices)` pairs.
    pub fn splits(&self) -> impl Iterator<Item = (Vec<usize>, Vec<usize>)> + '_ {
        (0..self.folds.len()).map(move |f| {
            let valid = self.folds[f].clone();
            let train: Vec<usize> = self
                .folds
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != f)
                .flat_map(|(_, fold)| fold.iter().copied())
                .collect();
            (train, valid)
        })
    }
}

/// Stratified k-fold for classification: each fold preserves class
/// proportions as closely as integer arithmetic allows.
#[derive(Debug, Clone)]
pub struct StratifiedKFold {
    folds: Vec<Vec<usize>>,
}

impl StratifiedKFold {
    /// Builds `k` stratified folds over the dataset's labels.
    pub fn new(d: &Dataset, k: usize, seed: u64) -> Result<Self> {
        if d.task != Task::Classification {
            return Err(DataError::Inconsistent(
                "StratifiedKFold requires a classification dataset".into(),
            ));
        }
        Self::from_labels(&d.y, d.n_classes, k, seed)
    }

    /// Builds `k` stratified folds over a [`DatasetView`]'s visible labels.
    /// Fold positions index *into the view*, so `view.select(fold)` yields
    /// the same rows that [`StratifiedKFold::new`] + `Dataset::subset` would
    /// produce on the materialized view.
    pub fn from_view(v: &DatasetView, k: usize, seed: u64) -> Result<Self> {
        if v.task() != Task::Classification {
            return Err(DataError::Inconsistent(
                "StratifiedKFold requires a classification dataset".into(),
            ));
        }
        Self::from_labels(&v.targets(), v.n_classes(), k, seed)
    }

    /// Builds `k` stratified folds from a raw label slice.
    pub fn from_labels(labels: &[f64], n_classes: usize, k: usize, seed: u64) -> Result<Self> {
        let n = labels.len();
        if k < 2 || k > n {
            return Err(DataError::TooSmall(format!("k={k} folds over n={n} samples")));
        }
        let mut rng = rng_from_seed(seed);
        let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
        let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); n_classes.max(1)];
        for (i, &label) in labels.iter().enumerate() {
            by_class[label as usize].push(i);
        }
        let mut next_fold = 0usize;
        for members in by_class.iter() {
            let perm = permutation(&mut rng, members.len());
            for &p in &perm {
                folds[next_fold].push(members[p]);
                next_fold = (next_fold + 1) % k;
            }
        }
        Ok(StratifiedKFold { folds })
    }

    /// Number of folds.
    pub fn k(&self) -> usize {
        self.folds.len()
    }

    /// Iterator over `(train_indices, validation_indices)` pairs.
    pub fn splits(&self) -> impl Iterator<Item = (Vec<usize>, Vec<usize>)> + '_ {
        (0..self.folds.len()).map(move |f| {
            let valid = self.folds[f].clone();
            let train: Vec<usize> = self
                .folds
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != f)
                .flat_map(|(_, fold)| fold.iter().copied())
                .collect();
            (train, valid)
        })
    }
}

/// Subsamples `fraction` of the dataset (at least 2 samples, stratified for
/// classification). This is the *fidelity axis* used by multi-fidelity
/// optimizers and by the building blocks' subsampled evaluations.
pub fn subsample(d: &Dataset, fraction: f64, seed: u64) -> Dataset {
    match subsample_positions(&d.y, d.n_classes, d.task, fraction, seed) {
        None => d.clone(),
        Some(idx) => d.subset(&idx),
    }
}

/// View-returning variant of [`subsample`]: selects the same rows at the same
/// seed, but as an index view — no feature bytes are copied.
pub fn subsample_view(v: &DatasetView, fraction: f64, seed: u64) -> DatasetView {
    let labels = v.targets();
    match subsample_positions(&labels, v.n_classes(), v.task(), fraction, seed) {
        None => v.clone(),
        Some(idx) => v.select(&idx),
    }
}

/// The row positions `subsample` keeps; `None` means "keep everything".
fn subsample_positions(
    labels: &[f64],
    n_classes: usize,
    task: Task,
    fraction: f64,
    seed: u64,
) -> Option<Vec<usize>> {
    let fraction = fraction.clamp(0.0, 1.0);
    let n = labels.len();
    let target = ((n as f64 * fraction).round() as usize).clamp(2.min(n), n);
    if target >= n {
        return None;
    }
    match task {
        Task::Classification => {
            // Keep the *train* side of a split whose train fraction equals
            // the target; fall back to the test side if the train side is
            // degenerate.
            let keep_fraction = target as f64 / n as f64;
            let (train, test) = stratified_positions(labels, n_classes, 1.0 - keep_fraction, seed);
            Some(if train.len() >= 2 { train } else { test })
        }
        Task::Regression => {
            let mut rng = rng_from_seed(seed);
            let mut idx = permutation(&mut rng, n);
            idx.truncate(target);
            idx.sort_unstable();
            Some(idx)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::FeatureType;
    use volcanoml_linalg::Matrix;

    fn dataset(n: usize, classes: usize) -> Dataset {
        let x = Matrix::from_vec(n, 1, (0..n).map(|v| v as f64).collect()).unwrap();
        let y: Vec<f64> = (0..n).map(|i| (i % classes) as f64).collect();
        Dataset::classification("t", x, y, vec![FeatureType::Numerical]).unwrap()
    }

    fn regression(n: usize) -> Dataset {
        let x = Matrix::from_vec(n, 1, (0..n).map(|v| v as f64).collect()).unwrap();
        let y: Vec<f64> = (0..n).map(|v| v as f64 * 2.0).collect();
        Dataset::regression("t", x, y, vec![FeatureType::Numerical]).unwrap()
    }

    #[test]
    fn split_partitions_samples() {
        let d = dataset(100, 2);
        let (train, test) = train_test_split(&d, 0.2, 0).unwrap();
        assert_eq!(train.n_samples() + test.n_samples(), 100);
        assert_eq!(test.n_samples(), 20);
    }

    #[test]
    fn split_is_stratified() {
        let d = dataset(100, 4);
        let (train, test) = train_test_split(&d, 0.2, 0).unwrap();
        for counts in [train.class_counts(), test.class_counts()] {
            let max = *counts.iter().max().unwrap();
            let min = *counts.iter().min().unwrap();
            assert!(max - min <= 1, "stratification broken: {counts:?}");
        }
    }

    #[test]
    fn split_is_deterministic() {
        let d = dataset(50, 2);
        let (a, _) = train_test_split(&d, 0.3, 42).unwrap();
        let (b, _) = train_test_split(&d, 0.3, 42).unwrap();
        assert_eq!(a.y, b.y);
        let (c, _) = train_test_split(&d, 0.3, 43).unwrap();
        assert_ne!(a.x.data(), c.x.data());
    }

    #[test]
    fn split_rejects_bad_fraction() {
        let d = dataset(10, 2);
        assert!(train_test_split(&d, 0.0, 0).is_err());
        assert!(train_test_split(&d, 1.0, 0).is_err());
    }

    #[test]
    fn split_views_match_owned_split() {
        for (d, frac, seed) in [(dataset(80, 3), 0.25, 9u64), (regression(40), 0.3, 5u64)] {
            let (train, test) = train_test_split(&d, frac, seed).unwrap();
            let storage = Arc::new(d);
            let (tv, sv) = train_test_split_views(&storage, frac, seed).unwrap();
            assert_eq!(tv.materialize().x.data(), train.x.data());
            assert_eq!(sv.materialize().x.data(), test.x.data());
            assert_eq!(tv.targets().as_ref(), train.y.as_slice());
            assert_eq!(sv.targets().as_ref(), test.y.as_slice());
        }
    }

    #[test]
    fn regression_split_works() {
        let d = regression(40);
        let (train, test) = train_test_split(&d, 0.25, 1).unwrap();
        assert_eq!(train.n_samples(), 30);
        assert_eq!(test.n_samples(), 10);
    }

    #[test]
    fn kfold_covers_everything_once() {
        let kf = KFold::new(23, 5, 0).unwrap();
        let mut seen = [0usize; 23];
        for (train, valid) in kf.splits() {
            assert_eq!(train.len() + valid.len(), 23);
            for &v in &valid {
                seen[v] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn kfold_rejects_degenerate_k() {
        assert!(KFold::new(10, 1, 0).is_err());
        assert!(KFold::new(3, 5, 0).is_err());
    }

    #[test]
    fn stratified_kfold_preserves_ratios() {
        let d = dataset(60, 3);
        let skf = StratifiedKFold::new(&d, 5, 0).unwrap();
        for (_, valid) in skf.splits() {
            let mut counts = vec![0usize; 3];
            for &i in &valid {
                counts[d.y[i] as usize] += 1;
            }
            let max = *counts.iter().max().unwrap();
            let min = *counts.iter().min().unwrap();
            assert!(max - min <= 1, "{counts:?}");
        }
    }

    #[test]
    fn stratified_kfold_rejects_regression() {
        let d = regression(30);
        assert!(StratifiedKFold::new(&d, 3, 0).is_err());
        let v = DatasetView::of(regression(30));
        assert!(StratifiedKFold::from_view(&v, 3, 0).is_err());
    }

    #[test]
    fn stratified_kfold_from_view_matches_owned() {
        let d = dataset(60, 3);
        let owned: Vec<_> = StratifiedKFold::new(&d, 4, 11).unwrap().splits().collect();
        let v = DatasetView::of(d);
        let viewed: Vec<_> = StratifiedKFold::from_view(&v, 4, 11)
            .unwrap()
            .splits()
            .collect();
        assert_eq!(owned, viewed);
    }

    #[test]
    fn subsample_respects_fraction_and_strata() {
        let d = dataset(100, 2);
        let s = subsample(&d, 0.3, 7);
        assert!((s.n_samples() as i64 - 30).abs() <= 2, "{}", s.n_samples());
        let counts = s.class_counts();
        assert!((counts[0] as i64 - counts[1] as i64).abs() <= 2);
    }

    #[test]
    fn subsample_full_fraction_is_identity() {
        let d = regression(20);
        let s = subsample(&d, 1.0, 0);
        assert_eq!(s.n_samples(), 20);
    }

    #[test]
    fn subsample_view_matches_owned_subsample() {
        for (d, frac) in [(dataset(90, 3), 0.4), (regression(70), 0.25)] {
            for seed in [0u64, 7, 99] {
                let owned = subsample(&d, frac, seed);
                let view = subsample_view(&DatasetView::of(d.clone()), frac, seed);
                assert_eq!(view.n_samples(), owned.n_samples());
                assert_eq!(view.materialize().x.data(), owned.x.data());
                assert_eq!(view.targets().as_ref(), owned.y.as_slice());
            }
        }
    }
}
